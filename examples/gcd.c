/* Euclid's GCD: the classic data-dependent loop.  Every clocked flow
 * compiles it; Cones rejects it (no static bound to unroll), and the
 * untimed flows warn that its latency is input-dependent.  Try:
 *
 *   python -m repro lint examples/gcd.c --all
 *   python -m repro matrix examples/gcd.c --args 48,36 --lint
 */
int main(int a, int b) {
  while (b != 0) {
    int t = b;
    b = a % b;
    a = t;
  }
  return a;
}
