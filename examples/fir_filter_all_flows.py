#!/usr/bin/env python
"""An FIR filter through every surveyed language.

The same source program is compiled by all eleven Table-1 flows (Ocapi
aside — it is a structural API, see ocapi_structural.py); each either
produces working hardware whose simulation matches the golden model, or
rejects the program for the same reason the historical tool would have.

Run:  python examples/fir_filter_all_flows.py
"""

from repro.flows import COMPILABLE, FlowError, REGISTRY, UnsupportedFeature
from repro.interp import run_source
from repro.report import format_table
from repro.workloads import get


def main() -> None:
    workload = get("fir8")
    golden = run_source(workload.source, args=workload.args)
    print(f"fir8: 8-tap FIR over 32 samples; golden checksum = {golden.value}\n")

    rows = []
    for key in COMPILABLE:
        flow = REGISTRY[key]
        try:
            design = flow.compile_source(workload.source)
        except (UnsupportedFeature, FlowError) as rejection:
            rows.append([key, "rejected", "-", "-", "-",
                         str(rejection).split("] ", 1)[-1][:48]])
            continue
        result = design.run(args=workload.args)
        cost = design.cost()
        status = "OK" if result.value == golden.value else "MISMATCH"
        latency = (
            f"{result.cycles * cost.clock_ns:.0f}"
            if cost.clock_ns > 0 else f"{result.time_ns:.0f}"
        )
        rows.append([
            key, status, result.cycles if cost.clock_ns else "-",
            latency, f"{cost.area_ge:.0f}",
            flow.metadata.timing_detail[:48],
        ])
    print(format_table(
        ["flow", "status", "cycles", "latency(ns)", "area(GE)",
         "timing model"],
        rows,
    ))


if __name__ == "__main__":
    main()
