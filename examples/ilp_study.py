#!/usr/bin/env python
"""Reproduce the paper's ILP argument on your own code.

"it seems that ILP beyond about five simultaneous instructions is
unlikely due to fundamental limits [Wall]" — this example runs the
Wall-style limit study on two contrasting kernels and prints the window
curves, so you can see where the plateau comes from.

Run:  python examples/ilp_study.py
"""

from repro.analysis import ilp_profile
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.report import format_series

REGULAR = """
int a[32];
int b[32];
int main() {
    int s = 0;
    for (int i = 0; i < 32; i++) { a[i] = i * 3; b[i] = i ^ 5; }
    for (int i = 0; i < 32; i++) { s += a[i] * b[i]; }
    return s;
}
"""

BRANCHY = """
int main(int seed) {
    int x = seed;
    int steps = 0;
    while (x != 1 && steps < 200) {
        if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
        steps++;
    }
    return steps;
}
"""

WINDOWS = (2, 4, 8, 16, 32, 64, 128, 256)


def study(name, source, args):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    profile = ilp_profile(name, cdfg, args=args, windows=WINDOWS)
    print(format_series(
        f"{name}: ILP vs window (perfect branch prediction)",
        [(w, profile.by_window[w]) for w in WINDOWS],
        x_label="window", y_label="ILP",
    ))
    print(f"  dataflow limit (infinite window): {profile.dataflow_limit:.2f}")
    print(f"  without speculation:              {profile.no_speculation_limit:.2f}")
    print()


def main() -> None:
    study("vector kernel", REGULAR, ())
    study("collatz (branchy)", BRANCHY, (27,))
    print("The branchy kernel's no-speculation number is the paper's point:")
    print("without heroic control speculation, compiler-found ILP sits far")
    print("below what the 'turn C into hardware' pitch needs.")


if __name__ == "__main__":
    main()
