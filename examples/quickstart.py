#!/usr/bin/env python
"""Quickstart: compile one C-like program with three very different flows.

Run:  python examples/quickstart.py
"""

from repro import SynthesisOptions, synthesize
from repro.interp import run_source

SOURCE = """
int main(int n) {
    int sum = 0;
    for (int i = 1; i <= n; i++) {
        sum += i * i;
    }
    return sum;
}
"""

ARGS = (10,)


def main() -> None:
    golden = run_source(SOURCE, args=ARGS)
    print(f"golden model:        sum of squares(10) = {golden.value}")
    print()

    for flow in ("handelc", "c2verilog", "cash"):
        compiled = synthesize(SOURCE, SynthesisOptions(flow=flow))
        result = compiled.run(args=ARGS)
        cost = compiled.cost()
        assert result.value == golden.value
        timing = (
            f"{result.cycles} cycles @ {cost.clock_ns:.1f} ns"
            if cost.clock_ns > 0
            else f"{result.time_ns:.0f} ns (asynchronous, no clock)"
        )
        print(f"{flow:10s}  value={result.value}   {timing}"
              f"   area={cost.area_ge:.0f} GE")

    print()
    print("First 25 lines of the C2Verilog flow's Verilog:")
    verilog = synthesize(SOURCE, SynthesisOptions(flow="c2verilog")).verilog()
    print("\n".join(verilog.splitlines()[:25]))


if __name__ == "__main__":
    main()
