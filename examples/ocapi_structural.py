#!/usr/bin/env python
"""Ocapi-style structural design: the host program *builds* the hardware.

IMEC's Ocapi had no C parser — "the user's C++ program runs to generate a
data structure that represents hardware."  The equivalent here is a Python
API: instantiate registers, memories and FSM states, wire transitions, and
out comes the same simulatable/priceable FSMD artifact the C flows emit.

This module builds a GCD engine by hand and checks it against the golden
model of the equivalent C program.

Run:  python examples/ocapi_structural.py
"""

from repro.flows import OcapiModule
from repro.interp import run_source

GCD_IN_C = """
int main(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
"""


def build_gcd() -> OcapiModule:
    m = OcapiModule("gcd")
    a_in, b_in = m.input("a"), m.input("b")
    a, b = m.register("a_reg"), m.register("b_reg")

    entry = m.entry
    test = m.state("test")
    step = m.state("step")
    done = m.state("done")

    entry.latch(a, entry.read(a_in)).latch(b, entry.read(b_in)).goto(test)
    test.branch(test.ne(b, 0), step, done)
    # One iteration per cycle: t = b; b = a % b; a = t — all on one edge.
    step.latch(a, step.read(b)).latch(b, step.mod(a, b))
    step.goto(test)
    done.done(done.read(a))
    return m


def main() -> None:
    module = build_gcd()
    design = module.build()
    for pair in ((1071, 462), (48, 36), (17, 5), (270, 192)):
        golden = run_source(GCD_IN_C, args=pair).value
        result = design.run(args=pair)
        assert result.value == golden, (pair, result.value, golden)
        print(f"gcd{pair} = {result.value:4d}   in {result.cycles} cycles")
    cost = design.cost()
    print(f"\nhand-built datapath: {design.system.root.n_states} states,"
          f" {cost.area_ge:.0f} GE, clock >= {cost.clock_ns:.1f} ns")


if __name__ == "__main__":
    main()
