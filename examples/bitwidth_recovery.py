#!/usr/bin/env python
"""Recovering the bit widths C's type system throws away.

"Bit vectors are natural in hardware, yet C only supports four sizes" —
the paper's very first technical complaint.  This example compiles a
nibble-arithmetic kernel (everything fits in 4-8 bits, but C says `int`)
with and without the value-range narrowing pass, and prints what the
32-bit types were costing.

Run:  python examples/bitwidth_recovery.py
"""

from repro.analysis.pointer import plan_pointers
from repro.flows import compile_flow
from repro.ir import build_function
from repro.ir.passes import inline_program, narrow_widths, optimize
from repro.lang import parse
from repro.report import format_table

SOURCE = """
int main(int x) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        int lo = (x >> i) & 15;      // a nibble, whatever C says
        int hi = ((x >> i) >> 4) & 15;
        acc += lo * hi;              // 4x4-bit multiply in 'int' clothing
    }
    return acc;
}
"""


def main() -> None:
    program, info = parse(SOURCE)
    inlined, _ = inline_program(program, info)
    fn = inlined.function("main")
    cdfg = build_function(fn, info, plan_pointers(fn))
    optimize(cdfg)
    report = narrow_widths(cdfg)
    print(f"values narrowed    : {report.vregs_narrowed} wires,"
          f" {report.registers_narrowed} registers")
    print(f"bits recovered     : {report.bits_saved}\n")

    wide = compile_flow(SOURCE, flow="c2verilog", narrow=False)
    slim = compile_flow(SOURCE, flow="c2verilog", narrow=True)
    test_inputs = (0x12345678, 0x0F0F0F0F, -1, 42)
    for value in test_inputs:
        assert wide.run(args=(value,)).value == slim.run(args=(value,)).value
    print(f"equivalence checked on {len(test_inputs)} inputs\n")

    rows = []
    for label, design in (("32-bit (C's types)", wide), ("narrowed", slim)):
        cost = design.cost()
        rows.append([label, f"{cost.area_ge:.0f}", f"{cost.clock_ns:.2f}",
                     cost.registers])
    print(format_table(["datapath", "area (GE)", "clock (ns)", "registers"],
                       rows))
    saving = 1 - slim.cost().area_ge / wide.cost().area_ge
    print(f"\narea saved by knowing the real widths: {100 * saving:.1f}%")
    print("(a Verilog designer writes wire [3:0] and never pays this tax)")


if __name__ == "__main__":
    main()
