#!/usr/bin/env python
"""CSP-style concurrency: a three-stage process pipeline with rendezvous
channels, in the languages that can express it.

The program below is the paper's "explicit concurrency" world: three
``process`` functions connected by channels, each synthesized into its own
FSMD; the machines run in lockstep and synchronize on every transfer.
Languages without channels (C2Verilog, CASH, Cones, Transmogrifier C)
cannot even express it — exactly the expressiveness split Table 1 draws.

Run:  python examples/producer_consumer_csp.py
"""

from repro.flows import FlowError, UnsupportedFeature, compile_flow
from repro.interp import run_source
from repro.report import format_table

SOURCE = """
chan<int> raw;
chan<int> cooked;

process void producer() {
    for (int i = 0; i < 8; i++) {
        send(raw, i * i);
    }
}

process void filter() {
    for (int i = 0; i < 8; i++) {
        int v = recv(raw);
        delay(2);               // model a slow processing stage
        send(cooked, v + 100);
    }
}

int main() {
    int total = 0;
    for (int i = 0; i < 8; i++) {
        int v = recv(cooked);
        total += v;
    }
    return total;
}
"""


def main() -> None:
    golden = run_source(SOURCE)
    print(f"golden model: total = {golden.value}")
    print(f"channel traffic: raw={golden.channel_log['raw']}")
    print(f"                 cooked={golden.channel_log['cooked']}\n")

    rows = []
    for flow in ("handelc", "bachc", "hardwarec", "systemc", "cyber",
                 "c2verilog", "cash"):
        try:
            design = compile_flow(SOURCE, flow=flow)
        except (UnsupportedFeature, FlowError) as rejection:
            rows.append([flow, "rejected",
                         str(rejection).split("] ", 1)[-1][:52]])
            continue
        result = design.run()
        assert result.value == golden.value
        assert result.channel_log == golden.channel_log
        rows.append([
            flow, f"{result.cycles} cycles",
            f"{result.stats.get('stall_cycles', 0)} stall cycles"
            " (rendezvous back-pressure)",
        ])
    print(format_table(["flow", "result", "notes"], rows))


if __name__ == "__main__":
    main()
