#!/usr/bin/env python
"""Design-space exploration: the knob the scheduled flows give designers.

The paper contrasts implicit timing rules (recode the program to move on
the latency/clock curve) with scheduled flows, where "such constraints ...
allow easier design-space exploration": the *same source* is resynthesized
under different resource and clock targets.

This example sweeps a DCT kernel across datapath widths and clock targets
under the C2Verilog flow and prints the latency/area frontier.

Run:  python examples/design_space_explorer.py
"""

from repro.flows import compile_flow
from repro.report import format_table
from repro.scheduling import ResourceSet
from repro.workloads import get


def main() -> None:
    workload = get("dct8")
    print(f"exploring {workload.name}: {workload.description}\n")

    points = []
    for label, resources in (
        ("1 ALU, 1 MUL", ResourceSet(alu=1, multiplier=1, shifter=1, divider=1)),
        ("2 ALU, 1 MUL", ResourceSet(alu=2, multiplier=1, shifter=1, divider=1)),
        ("2 ALU, 2 MUL", ResourceSet(alu=2, multiplier=2, shifter=1, divider=1)),
        ("4 ALU, 4 MUL", ResourceSet(alu=4, multiplier=4, shifter=2, divider=1)),
    ):
        for clock_ns in (4.0, 8.0, 16.0):
            design = compile_flow(
                workload.source, flow="c2verilog",
                resources=resources, clock_ns=clock_ns,
            )
            result = design.run(args=workload.args)
            cost = design.cost()
            points.append({
                "datapath": label,
                "target clk": clock_ns,
                "cycles": result.cycles,
                "achieved clk": cost.clock_ns,
                "latency_ns": result.cycles * cost.clock_ns,
                "area": cost.area_ge,
            })

    points.sort(key=lambda p: p["latency_ns"])
    rows = [
        [p["datapath"], f"{p['target clk']:.0f}", p["cycles"],
         f"{p['achieved clk']:.1f}", f"{p['latency_ns']:.0f}",
         f"{p['area']:.0f}"]
        for p in points
    ]
    print(format_table(
        ["datapath", "target clk(ns)", "cycles", "achieved clk(ns)",
         "latency(ns)", "area(GE)"],
        rows,
        title="dct8 design space (sorted by latency)",
    ))

    pareto = []
    best_area = float("inf")
    for p in points:
        if p["area"] < best_area:
            pareto.append(p)
            best_area = p["area"]
    print(f"\nPareto frontier (latency vs area): {len(pareto)} points")
    for p in pareto:
        print(f"  {p['latency_ns']:8.0f} ns   {p['area']:8.0f} GE"
              f"   [{p['datapath']} @ {p['target clk']} ns]")


if __name__ == "__main__":
    main()
