"""FSMD construction and cycle-accurate simulation tests."""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.interp import run_program
from repro.lang import parse
from repro.lang.types import ArrayType
from repro.rtl.fsmd import (
    CondNext,
    Done,
    FSMDSystem,
    NextState,
    fsmd_from_schedule,
)
from repro.scheduling import ResourceSet, list_schedule_function
from repro.sim import SimulationError, simulate


def synthesize(source, function="main", resources=None, clock_ns=5.0):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    fsmds = []
    for fn in inlined.functions:
        plan = plan_pointers(fn)
        cdfg = build_function(fn, info, plan)
        optimize(cdfg)
        schedule = list_schedule_function(
            cdfg, resources or ResourceSet.typical(), clock_ns=clock_ns
        )
        fsmds.append(fsmd_from_schedule(schedule))
    fsmds.sort(key=lambda f: 0 if f.name == function else 1)
    system = FSMDSystem(
        fsmds=fsmds,
        channels=[c.symbol for c in program.channels],
        global_registers=[
            g.symbol for g in program.globals
            if not isinstance(g.var_type, ArrayType)
        ],
        global_arrays=[
            g.symbol for g in program.globals
            if isinstance(g.var_type, ArrayType)
        ],
        global_inits=dict(info.global_inits),
    )
    return system, program, info


def test_states_cover_every_scheduled_step():
    system, _, _ = synthesize(
        "int main(int a) { int x = a * a; wait(); return x + 1; }"
    )
    fsmd = system.root
    assert fsmd.n_states >= 3  # compute, barrier, return
    for state in fsmd.states:
        assert state.transition is not None


def test_every_block_final_state_latches():
    # The accumulator crosses the loop back edge, so its block must latch.
    system, _, _ = synthesize(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    latching = [s for s in system.root.states if s.latches]
    assert latching
    # Latches sit only on the final state of each block.
    for state in latching:
        schedule = system.root.source_schedule
        block_schedule = schedule.blocks[state.block_id]
        assert state.step_index == block_schedule.n_steps - 1


def test_cycle_count_equals_states_visited():
    system, program, info = synthesize(
        "int main() { delay(3); return 7; }"
    )
    result = simulate(system)
    golden = run_program(program, info, "main")
    assert result.value == golden.value
    # The three idle delay states are the whole execution; the constant
    # return rides out on the final state's edge.
    assert result.cycles == 3


def test_wait_adds_exactly_one_cycle():
    base_system, _, _ = synthesize("int main(int a) { int x = a + 1; return x; }")
    wait_system, _, _ = synthesize("int main(int a) { int x = a + 1; wait(); return x; }")
    base = simulate(base_system, args=(1,)).cycles
    with_wait = simulate(wait_system, args=(1,)).cycles
    assert with_wait == base + 1


def test_conditional_next_state():
    system, program, info = synthesize(
        "int main(int a) { if (a > 3) { return 1; } return 2; }"
    )
    assert simulate(system, args=(5,)).value == 1
    assert simulate(system, args=(1,)).value == 2


def test_loop_cycles_scale_with_trip_count():
    system, _, _ = synthesize(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    c4 = simulate(system, args=(4,)).cycles
    c8 = simulate(system, args=(8,)).cycles
    assert c8 > c4
    per_iteration = (c8 - c4) / 4
    assert per_iteration == pytest.approx((c8 - c4) / 4)


def test_globals_shared_and_reported():
    system, program, info = synthesize(
        "int g; int main(int a) { g = a * 2; return g + 1; }"
    )
    result = simulate(system, args=(21,))
    assert result.value == 43
    assert result.globals["g"] == 42


def test_global_arrays_initialized_from_inits():
    system, _, _ = synthesize(
        "int t[3] = {5, 6, 7}; int main(int i) { return t[i]; }"
    )
    assert simulate(system, args=(2,)).value == 7


def test_rendezvous_transfers_and_stalls():
    system, program, info = synthesize(
        """
        chan<int> c;
        process void producer() {
            for (int i = 0; i < 4; i++) { delay(3); send(c, i); }
        }
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) { s += recv(c); }
            return s;
        }
        """
    )
    result = simulate(system)
    assert result.value == 6
    assert result.channel_log["c"] == [0, 1, 2, 3]
    assert result.stall_cycles > 0  # consumer waits on the slow producer


def test_rendezvous_deadlock_detected():
    system, _, _ = synthesize("chan<int> c; int main() { return recv(c); }")
    with pytest.raises(SimulationError) as excinfo:
        simulate(system)
    assert "deadlock" in str(excinfo.value)


def test_cycle_budget_enforced():
    system, _, _ = synthesize("int main() { while (true) { wait(); } return 0; }")
    with pytest.raises(SimulationError):
        simulate(system, max_cycles=500)


def test_same_cycle_global_write_race_detected():
    system, _, _ = synthesize(
        """
        int shared;
        process void a() { shared = 1; }
        process void b() { shared = 2; }
        int main() { delay(5); return shared; }
        """
    )
    with pytest.raises(SimulationError) as excinfo:
        simulate(system)
    assert "same cycle" in str(excinfo.value)


def test_next_state_condition_sees_pre_edge_registers():
    # The loop-exit test is combinational: it must use the registered i,
    # not the incremented value being latched on the same edge.
    system, program, info = synthesize(
        "int main() { int count = 0; for (int i = 0; i < 3; i++) { count++; } return count; }"
    )
    assert simulate(system).value == 3


def test_per_process_cycles_reported():
    system, _, _ = synthesize(
        """
        chan<int> c;
        process void p() { send(c, 9); }
        int main() { return recv(c); }
        """
    )
    result = simulate(system)
    assert set(result.per_process_cycles) == {"main", "p"}


def test_dump_is_readable():
    system, _, _ = synthesize("int main(int a) { return a + 1; }")
    text = system.root.dump()
    assert "fsmd main" in text
    assert "S0" in text
