"""Golden-file regression for ``repro table1``.

The regenerated Table 1 is the paper's centrepiece; its exact rendering —
column order, alignment, per-flow concurrency/timing labels — is pinned
verbatim so a formatting or metadata regression cannot slip through a
sweep of unrelated refactors.  To intentionally change the table, update
``tests/golden/table1.txt`` in the same commit and say why.
"""

import io
from contextlib import redirect_stdout
from pathlib import Path

from repro.__main__ import main

GOLDEN = Path(__file__).parent / "golden" / "table1.txt"


def _render_table1() -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["table1"])
    assert code == 0
    return buffer.getvalue()


def test_table1_matches_golden_file():
    expected = GOLDEN.read_text()
    actual = _render_table1()
    assert actual == expected, (
        "repro table1 output drifted from tests/golden/table1.txt; "
        "if the change is intentional, regenerate the golden file with "
        "`python -m repro table1 > tests/golden/table1.txt`"
    )


def test_golden_file_covers_all_eleven_languages():
    body = GOLDEN.read_text()
    for language in ["Cones", "HardwareC", "Transmogrifier C", "SystemC",
                     "Ocapi", "C2Verilog", "Cyber (BDL)", "Handel-C",
                     "SpecC", "Bach C", "CASH"]:
        assert language in body
