"""Property-based tests on scheduling and allocation invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.binding import allocate_registers, bind_functional_units, left_edge_pack
from repro.binding.register_alloc import Lifetime
from repro.ir import build_function
from repro.ir.ops import VReg
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.lang.types import INT
from repro.scheduling import (
    ResourceSet,
    check_block_schedule,
    list_schedule_block,
    list_schedule_function,
    unit_asap,
)
from repro.workloads import dataflow_source

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def blocks_of(seed):
    source = dataflow_source(seed, statements=10, depth=3)
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return cdfg


resource_sets = st.sampled_from([
    ResourceSet.unlimited(),
    ResourceSet.typical(),
    ResourceSet.minimal(),
    ResourceSet(alu=1, shifter=1, multiplier=2, divider=1),
])

clocks = st.sampled_from([2.5, 5.0, 10.0, 40.0])


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5000), resources=resource_sets,
       clock=clocks)
def test_list_schedules_are_always_valid(seed, resources, clock):
    cdfg = blocks_of(seed)
    for block in cdfg.reachable_blocks():
        schedule = list_schedule_block(block, resources, clock_ns=clock)
        check_block_schedule(schedule, resources)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5000), clock=clocks)
def test_tighter_resources_never_shorten(seed, clock):
    cdfg = blocks_of(seed)
    for block in cdfg.reachable_blocks():
        wide = list_schedule_block(block, ResourceSet.unlimited(), clock_ns=clock)
        narrow = list_schedule_block(block, ResourceSet.minimal(), clock_ns=clock)
        assert narrow.n_steps >= wide.n_steps


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_slower_clock_never_lengthens(seed):
    cdfg = blocks_of(seed)
    for block in cdfg.reachable_blocks():
        fast = list_schedule_block(block, clock_ns=2.5)
        slow = list_schedule_block(block, clock_ns=40.0)
        assert slow.n_steps <= fast.n_steps


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_asap_is_a_lower_bound_for_unit_like_schedules(seed):
    cdfg = blocks_of(seed)
    for block in cdfg.reachable_blocks():
        if not block.ops:
            continue
        asap = unit_asap(block)
        assert asap.n_steps >= 1
        for op in block.ops:
            assert asap.op_step[op.id] >= 0


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5000), resources=resource_sets)
def test_binding_never_double_books_a_unit(seed, resources):
    cdfg = blocks_of(seed)
    schedule = list_schedule_function(cdfg, resources)
    binding = bind_functional_units(schedule)
    for block_schedule in schedule.blocks.values():
        for step_ops in block_schedule.step_ops():
            units = [
                binding.op_unit[op.id]
                for op in step_ops
                if op.id in binding.op_unit
            ]
            assert len(units) == len(set(units))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_register_allocation_covers_all_crossers(seed):
    cdfg = blocks_of(seed)
    schedule = list_schedule_function(cdfg, ResourceSet.minimal())
    allocation = allocate_registers(schedule)
    for lifetime in allocation.lifetimes:
        assert lifetime.vreg.id in allocation.vreg_carrier


# ---------------------------------------------------------------------------
# Left-edge invariants on synthetic interval sets
# ---------------------------------------------------------------------------

intervals = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=1, max_value=10)),
    min_size=1, max_size=40,
)


@given(intervals)
def test_left_edge_never_overlaps_within_a_carrier(spans):
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=0, start=s, end=s + d)
        for s, d in spans
    ]
    carriers = left_edge_pack(lifetimes)
    for carrier in carriers:
        mine = sorted(
            (lt.start, lt.end) for lt in carrier.occupants if lt.block_id == 0
        )
        for (s1, e1), (s2, e2) in zip(mine, mine[1:]):
            assert e1 < s2 or s2 > e1 - 1  # strictly disjoint: end < next start
            assert s2 > e1


@given(intervals)
def test_left_edge_is_optimal(spans):
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=0, start=s, end=s + d)
        for s, d in spans
    ]
    carriers = left_edge_pack(lifetimes)
    # Optimal register count for an interval graph = max clique = max
    # number of intervals alive at one point.  A value is alive on
    # [start+1, end] (it is latched at the end of `start`).
    points = set()
    for lt in lifetimes:
        points.update(range(lt.start, lt.end + 1))
    max_overlap = 0
    for p in points:
        alive = sum(1 for lt in lifetimes if lt.start <= p <= lt.end)
        max_overlap = max(max_overlap, alive)
    assert len(carriers) == max_overlap


@given(intervals)
def test_left_edge_preserves_every_lifetime(spans):
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=0, start=s, end=s + d)
        for s, d in spans
    ]
    carriers = left_edge_pack(lifetimes)
    packed = [lt for c in carriers for lt in c.occupants]
    assert sorted(id(lt) for lt in packed) == sorted(id(lt) for lt in lifetimes)
