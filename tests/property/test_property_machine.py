"""Property-based tests for the shared machine arithmetic.

These invariants tie every backend's numerics to C's: wrap is a ring
homomorphism modulo 2^width, operators agree with unbounded integer
arithmetic after wrapping, and comparison results are always 0/1.
"""

from hypothesis import given, strategies as st

from repro.interp.machine import eval_binary, eval_unary, wrap
from repro.lang.types import BOOL, IntType

widths = st.integers(min_value=1, max_value=64)
signedness = st.booleans()
values = st.integers(min_value=-(2 ** 70), max_value=2 ** 70)


@st.composite
def int_types(draw):
    return IntType(draw(widths), signed=draw(signedness))


@given(int_types(), values)
def test_wrap_is_idempotent(t, v):
    assert wrap(wrap(v, t), t) == wrap(v, t)


@given(int_types(), values)
def test_wrap_lands_in_range(t, v):
    wrapped = wrap(v, t)
    assert t.min_value <= wrapped <= t.max_value


@given(int_types(), values, values)
def test_wrap_congruent_modulo_2_pow_width(t, a, b):
    # Values congruent mod 2^w wrap identically.
    modulus = 1 << t.width
    assert wrap(a, t) == wrap(a + modulus * 3, t)
    assert wrap(a + b, t) == wrap(wrap(a, t) + wrap(b, t), t)


@given(int_types(), values, values)
def test_add_matches_python_mod_arithmetic(t, a, b):
    a, b = wrap(a, t), wrap(b, t)
    assert eval_binary("+", a, b, t) == wrap(a + b, t)
    assert eval_binary("-", a, b, t) == wrap(a - b, t)
    assert eval_binary("*", a, b, t) == wrap(a * b, t)


@given(int_types(), values, values)
def test_bitwise_ops_match_python(t, a, b):
    a, b = wrap(a, t), wrap(b, t)
    assert eval_binary("&", a, b, t) == wrap(a & b, t)
    assert eval_binary("|", a, b, t) == wrap(a | b, t)
    assert eval_binary("^", a, b, t) == wrap(a ^ b, t)


@given(int_types(), values, values)
def test_comparisons_are_boolean_and_consistent(t, a, b):
    a, b = wrap(a, t), wrap(b, t)
    lt = eval_binary("<", a, b, BOOL)
    ge = eval_binary(">=", a, b, BOOL)
    assert lt in (0, 1) and ge in (0, 1)
    assert lt + ge == 1
    eq = eval_binary("==", a, b, BOOL)
    ne = eval_binary("!=", a, b, BOOL)
    assert eq + ne == 1
    assert eq == int(a == b)


@given(int_types(), values, values)
def test_division_identity_holds(t, a, b):
    a, b = wrap(a, t), wrap(b, t)
    if b == 0:
        return
    q = eval_binary("/", a, b, IntType(128, signed=True))
    r = eval_binary("%", a, b, IntType(128, signed=True))
    assert q * b + r == a
    assert abs(r) < abs(b)
    # C: the remainder has the dividend's sign (or is zero).
    assert r == 0 or (r > 0) == (a > 0)


@given(int_types(), values, st.integers(min_value=0, max_value=200))
def test_shift_left_is_multiplication(t, a, k):
    a = wrap(a, t)
    assert eval_binary("<<", a, k, t) == wrap(a * (2 ** min(k, t.width)), t)


@given(int_types(), values)
def test_double_negation_round_trips(t, v):
    v = wrap(v, t)
    assert eval_unary("-", eval_unary("-", v, t), t) == v
    assert eval_unary("~", eval_unary("~", v, t), t) == v


@given(int_types(), values)
def test_logical_not_is_zero_test(t, v):
    v = wrap(v, t)
    assert eval_unary("!", v, BOOL) == int(v == 0)
