"""Property-based end-to-end equivalence: for any generated program, every
synthesis flow that accepts it must compute exactly what the interpreter
computes.  This is the fuzzing harness for the whole stack — frontend,
inliner, CDFG, optimizer, schedulers, binder, and all three simulators."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.flows import COMPILABLE, FlowError, REGISTRY, UnsupportedFeature
from repro.interp import run_program
from repro.lang import parse
from repro.workloads import array_source, control_source, dataflow_source

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# The flows worth fuzzing (cones requires static bounds, which control
# sources have; cash/c2verilog/scheduled/chain/syntax-directed all differ).
FUZZ_FLOWS = ["c2verilog", "bachc", "transmogrifier", "handelc", "cash", "systemc"]


def check_all_flows(source, args):
    program, info = parse(source)
    golden = run_program(program, info, "main", args)
    checked = 0
    for key in FUZZ_FLOWS:
        try:
            design = REGISTRY[key].compile(program, info, "main")
            result = design.run(args=args)
        except (UnsupportedFeature, FlowError):
            continue
        assert result.value == golden.value, (
            f"{key}: {result.value} != golden {golden.value}\n{source}"
        )
        checked += 1
    assert checked >= 3  # the generators stay inside most flows' subsets


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    x=st.integers(min_value=-1000, max_value=1000),
    y=st.integers(min_value=-1000, max_value=1000),
)
def test_dataflow_programs_equivalent_across_flows(seed, x, y):
    check_all_flows(dataflow_source(seed, statements=8, depth=3), (x, y))


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    x=st.integers(min_value=-50, max_value=50),
    y=st.integers(min_value=-50, max_value=50),
)
def test_control_programs_equivalent_across_flows(seed, x, y):
    check_all_flows(control_source(seed, blocks=3, depth=2), (x, y))


@settings(**_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    x=st.integers(min_value=-100, max_value=100),
)
def test_array_programs_equivalent_across_flows(seed, x):
    check_all_flows(array_source(seed, size=8, passes=2), (x,))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cones_flattening_matches_interpreter(seed):
    # Control sources have literal loop bounds, so Cones can flatten them.
    source = control_source(seed, blocks=2, depth=2)
    program, info = parse(source)
    golden = run_program(program, info, "main", (3, 4))
    try:
        design = REGISTRY["cones"].compile(program, info, "main")
    except (UnsupportedFeature, FlowError):
        return
    assert design.run(args=(3, 4)).value == golden.value


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_optimizer_is_semantics_preserving(seed):
    # Compare unoptimized vs optimized CDFG execution directly.
    from repro.ir import build_function
    from repro.ir.executor import execute
    from repro.ir.passes import inline_program, optimize

    source = dataflow_source(seed, statements=10, depth=3)
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    raw = build_function(inlined.function("main"), info)
    raw_value = execute(raw, args=(5, 9)).value
    optimized = build_function(inlined.function("main"), info)
    optimize(optimized)
    assert execute(optimized, args=(5, 9)).value == raw_value
