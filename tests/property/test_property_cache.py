"""Property-based contract for the content-addressed artifact cache.

Two halves of one promise:

* **Hits are bit-identical.**  Any layout-only perturbation of a source —
  inserted comments, extra blank lines, reindentation — normalizes to the
  same token stream, so it must replay the original compile from the
  cache, and the replayed result must equal the cold one on every
  semantic field (same RTL hash, same cycle count, same diagnostics).
* **Token changes miss.**  Perturbing an actual token (a literal, an
  identifier) must produce a different cache key, so a stale artifact can
  never be served for changed code.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runner import ArtifactCache, MatrixEngine, CellTask, cell_key
from repro.runner.cache import normalized_source

_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BASE_SOURCE = (
    "int main(int n) {\n"
    "  int acc = 1;\n"
    "  int i;\n"
    "  for (i = 0; i < n; i++) {\n"
    "    acc = acc * 3 + i;\n"
    "  }\n"
    "  return acc;\n"
    "}\n"
)

_comments = st.sampled_from([
    "// touched\n", "/* reviewed */\n", "\n", "\n\n", "  \t\n",
    "// TODO: nothing\n", "/* multi\n   line */\n",
])


@st.composite
def layout_perturbations(draw):
    """Insert comments/blank lines at random line boundaries and pad
    random lines with trailing whitespace — token stream unchanged."""
    lines = BASE_SOURCE.splitlines(keepends=True)
    out = []
    for line in lines:
        if draw(st.booleans()):
            out.append(draw(_comments))
        if draw(st.booleans()):
            line = line.rstrip("\n") + draw(st.sampled_from(["  \n", "\t\n", " \n"]))
        out.append(line)
    if draw(st.booleans()):
        out.append(draw(_comments))
    return "".join(out)


def _task(source, flow="handelc"):
    return CellTask(workload="prop", source=source, flow=flow, args=(6,))


@given(perturbed=layout_perturbations())
@settings(**_SETTINGS)
def test_layout_perturbation_hits_bit_identical(tmp_path_factory, perturbed):
    root = tmp_path_factory.mktemp("cache")
    cold_cache = ArtifactCache(root)
    [cold] = MatrixEngine(cache=cold_cache).run_cells([_task(BASE_SOURCE)])
    assert cold.ok and not cold.cached

    warm_cache = ArtifactCache(root)
    [warm] = MatrixEngine(cache=warm_cache).run_cells([_task(perturbed)])

    assert normalized_source(perturbed) == normalized_source(BASE_SOURCE)
    assert warm.cached, "layout-only change must replay from the cache"
    assert warm_cache.hits == 1 and warm_cache.misses == 0
    assert warm.rtl_hash == cold.rtl_hash
    assert warm.cycles == cold.cycles
    assert warm.diagnostics == cold.diagnostics
    assert warm.identity() == cold.identity()


_token_edits = st.sampled_from([
    ("acc * 3", "acc * 4"),        # literal
    ("acc = 1", "acc = 2"),        # initial value
    ("i < n", "i <= n"),           # operator
    ("int acc", "int total"),      # identifier (declaration + uses differ)
    ("return acc;", "return acc + 1;"),
])


@given(edit=_token_edits)
@settings(**_SETTINGS)
def test_token_change_misses(tmp_path_factory, edit):
    old, new = edit
    changed = BASE_SOURCE.replace(old, new)
    assert changed != BASE_SOURCE
    assert normalized_source(changed) != normalized_source(BASE_SOURCE)
    assert cell_key(_task(changed)) != cell_key(_task(BASE_SOURCE))

    root = tmp_path_factory.mktemp("cache")
    [cold] = MatrixEngine(cache=ArtifactCache(root)).run_cells(
        [_task(BASE_SOURCE)]
    )
    probe_cache = ArtifactCache(root)
    [fresh] = MatrixEngine(cache=probe_cache).run_cells([_task(changed)])
    assert not fresh.cached, "token change must not be served a stale artifact"
    assert probe_cache.hits == 0


@given(perturbed=layout_perturbations())
@settings(**_SETTINGS)
def test_key_is_stable_under_layout(perturbed):
    assert cell_key(_task(perturbed)) == cell_key(_task(BASE_SOURCE))
