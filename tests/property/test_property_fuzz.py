"""Property-based contracts for the fuzzing subsystem.

Over random (seed, flow) pairs:

* every generated non-boundary program parses, lints clean for its target
  flow, and terminates in the reference interpreter within the fuel bound
  — the generator never wastes engine time on frontend rejects;
* every boundary program is flagged by the linter with an ERROR for the
  injected forbidden feature — the generator really does straddle the
  accept/reject line, and the linter sees it coming;
* every metamorphic mutant is a valid program with the *same* interpreter
  observable as its original — so any flow-side divergence between the
  two is a flow bug, never a fuzzer bug.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.flows import COMPILABLE
from repro.fuzz import feature_mask, generate_program, mutants
from repro.interp import run_source
from repro.lang import parse
from repro.analysis.lint import lint

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FLOWS = sorted(COMPILABLE)

seeds = st.integers(min_value=0, max_value=5000)
flow_keys = st.sampled_from(_FLOWS)


@given(seed=seeds, flow=flow_keys)
@settings(**_SETTINGS)
def test_generated_programs_parse_lint_clean_and_terminate(seed, flow):
    mask = feature_mask(flow)
    program = generate_program(seed, mask)
    parse(program.source)                      # valid frontend input
    report = lint(program.source, flow=flow)
    assert report.is_clean(flow), (
        f"seed {seed} for {flow} is not lint-clean: "
        f"{[str(d) for d in report.errors(flow)]}"
    )
    result = run_source(program.source, args=program.args)
    assert result is not None                  # terminated within fuel


@given(seed=seeds, flow=flow_keys)
@settings(**_SETTINGS)
def test_boundary_programs_are_lint_flagged(seed, flow):
    mask = feature_mask(flow)
    if not mask.boundary_features:
        return
    program = generate_program(seed, mask, boundary=True)
    assert program.is_boundary
    report = lint(program.source, flow=flow)
    assert report.errors(flow), (
        f"boundary seed {seed} injected {program.boundary_feature!r} "
        f"but lint sees {flow} as clean"
    )


@given(seed=seeds, flow=flow_keys)
@settings(**_SETTINGS)
def test_mutants_preserve_interpreter_observables(seed, flow):
    mask = feature_mask(flow)
    program = generate_program(seed, mask)
    reference = run_source(program.source, args=program.args).observable()
    for mutant in mutants(program.source, seed=seed, count=3, mask=mask):
        parse(mutant.source)
        mutated = run_source(mutant.source, args=program.args).observable()
        assert mutated == reference, (
            f"{mutant.name} changed semantics on seed {seed} ({flow}): "
            f"{reference} -> {mutated}"
        )


@given(seed=seeds, flow=flow_keys)
@settings(**_SETTINGS)
def test_generation_is_deterministic(seed, flow):
    mask = feature_mask(flow)
    first = generate_program(seed, mask)
    second = generate_program(seed, mask)
    assert first.source == second.source
    assert first.args == second.args
    assert [m.source for m in mutants(first.source, seed=seed, mask=mask)] \
        == [m.source for m in mutants(second.source, seed=seed, mask=mask)]
