"""Property-based soundness check for the linter: over randomly generated
programs, a flow the linter calls clean must compile that program without
raising UnsupportedFeature or FlowError.  (The converse — errors imply a
rejection — is exercised exhaustively over the workload suite in
tests/test_lint.py; the generators here rarely produce rejected programs,
so asserting it per-example would mostly test nothing.)"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.lint import Severity, lint
from repro.flows import COMPILABLE, FlowError, REGISTRY, UnsupportedFeature

from repro.workloads import array_source, control_source, dataflow_source

_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def check_lint_sound(source):
    report = lint(source, flows=list(COMPILABLE))
    for key in COMPILABLE:
        if not report.is_clean(key):
            continue
        try:
            REGISTRY[key].compile_source(source)
        except (UnsupportedFeature, FlowError) as error:
            raise AssertionError(
                f"linter passed {key} but compile raised: {error}\n{source}"
            ) from error


def check_lint_complete(source):
    """Every UnsupportedFeature that carries a rule id must have been
    predicted as an error by that flow's lint rule set."""
    report = lint(source, flows=list(COMPILABLE))
    for key in COMPILABLE:
        try:
            REGISTRY[key].compile_source(source)
        except UnsupportedFeature as error:
            if error.rule:
                assert error.rule in report.rules(key, Severity.ERROR), (
                    f"{key} raised {error.rule}, linter predicted "
                    f"{report.rules(key, Severity.ERROR)}\n{source}"
                )
        except FlowError:
            assert not report.is_clean(key), (
                f"{key} raised FlowError but linter was clean\n{source}"
            )


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lint_clean_implies_compiles_dataflow(seed):
    check_lint_sound(dataflow_source(seed, statements=8, depth=3))


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lint_clean_implies_compiles_control(seed):
    source = control_source(seed, blocks=3, depth=2)
    check_lint_sound(source)
    check_lint_complete(source)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lint_clean_implies_compiles_arrays(seed):
    source = array_source(seed, size=6, passes=2)
    check_lint_sound(source)
    check_lint_complete(source)
