"""Unit tests for the tracing subsystem and the SynthesisOptions facade.

The contract under test: every flow's traced synthesis produces a span
tree whose phase skeleton matches what that flow actually does; disabled
tracing produces *zero* spans through the exact same code paths; the
Chrome export is loadable trace_event JSON; the matrix summary is the sum
of its per-cell traces; and a warm cache hit replays the same phase
structure the cold run recorded.
"""

import json
import warnings

import pytest

from repro.api import (
    SynthesisOptions,
    SynthesisResult,
    _reset_legacy_warnings,
    synthesize,
)
from repro.trace import (
    CAT_PHASE,
    NO_TRACE,
    PHASE_ORDER,
    TraceContext,
    counters_of,
    merge_phase_totals,
    phase_totals_of,
    structure_of,
)

SOURCE = (
    "int main(int n) { int s = 0;"
    " for (int i = 0; i < n; i++) { s += i; } return s; }"
)
# cones needs statically bounded loops and no arguments.
CONES_SOURCE = (
    "int main() { int s = 0;"
    " for (int i = 0; i < 8; i++) { s += i; } return s; }"
)

# Every compilable flow with the phase skeleton its compile() must record.
FLOW_PHASES = {
    "c2verilog": ["parse", "semantic", "check", "inline", "cdfg",
                  "passes", "schedule"],
    "hardwarec": ["parse", "semantic", "check", "inline", "cdfg",
                  "passes", "schedule"],
    "transmogrifier": ["parse", "semantic", "check", "inline", "cdfg",
                       "passes", "schedule"],
    "systemc": ["parse", "semantic", "check", "inline", "cdfg",
                "passes", "schedule"],
    "cyber": ["parse", "semantic", "check", "inline", "cdfg",
              "passes", "schedule"],
    "specc": ["parse", "semantic", "check", "inline", "cdfg",
              "passes", "schedule"],
    "bachc": ["parse", "semantic", "check", "inline", "cdfg",
              "passes", "schedule"],
    "handelc": ["parse", "semantic", "check", "inline", "cdfg"],
    "cones": ["parse", "semantic", "check", "inline", "cdfg",
              "passes", "flatten"],
    "cash": ["parse", "semantic", "check", "inline", "cdfg", "passes"],
}


def phase_names(trace):
    return [s.name for _, s in trace.spans() if s.cat == CAT_PHASE]


# ---------------------------------------------------------------------------
# Core span mechanics
# ---------------------------------------------------------------------------


def test_span_tree_nesting_and_counters():
    trace = TraceContext(name="t")
    with trace.span("outer", cat="phase"):
        with trace.span("inner"):
            trace.count(ops=3, kind="x")
        trace.count(ops=2)
    assert trace.structure() == [["outer", ["inner"]]]
    [outer] = trace.roots
    assert outer.args["ops"] == 2
    assert outer.children[0].args == {"ops": 3, "kind": "x"}
    assert outer.dur_us >= outer.children[0].dur_us


def test_counters_accumulate_numeric_values():
    trace = TraceContext()
    with trace.span("s"):
        trace.count(n=1)
        trace.count(n=2, tag="a")
    [span] = trace.roots
    assert span.args["n"] == 3
    assert span.args["tag"] == "a"


def test_leaf_records_premeasured_span():
    trace = TraceContext()
    with trace.span("sim", cat="phase"):
        trace.leaf("sim.execute", 0.25, cat="sim", cycles=100)
    [sim] = trace.roots
    [leaf] = sim.children
    assert leaf.name == "sim.execute"
    assert leaf.dur_us == pytest.approx(250_000.0)
    assert leaf.args == {"cycles": 100}


def test_span_exception_still_closes():
    trace = TraceContext()
    with pytest.raises(ValueError):
        with trace.span("boom"):
            raise ValueError("x")
    assert trace.structure() == ["boom"]
    assert not trace._stack


def test_serialization_roundtrip():
    trace = TraceContext(name="rt")
    with trace.span("a", cat="phase"):
        with trace.span("b"):
            trace.count(k=1)
    clone = TraceContext.from_dict(trace.to_dict())
    assert clone.to_dict() == trace.to_dict()
    assert structure_of(trace.to_dict()) == trace.structure()


def test_disabled_tracer_is_inert_singleton():
    # NO_TRACE must allocate nothing per call: same object back each time.
    handle_a = NO_TRACE.span("anything", cat="phase")
    handle_b = NO_TRACE.span("else")
    assert handle_a is handle_b
    with handle_a as span:
        NO_TRACE.count(n=1)
        NO_TRACE.leaf("x", 1.0)
    assert span is handle_a
    assert NO_TRACE.enabled is False


# ---------------------------------------------------------------------------
# Span tree shape per flow
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("flow", sorted(FLOW_PHASES))
def test_flow_span_tree_shape(flow):
    source = CONES_SOURCE if flow in ("cones", "cash") else SOURCE
    args = () if flow in ("cones", "cash") else (5,)
    result = synthesize(source, SynthesisOptions(flow=flow, trace=True))
    assert isinstance(result, SynthesisResult)
    trace = result.trace
    assert trace is not None and trace.enabled
    assert phase_names(trace) == FLOW_PHASES[flow]
    # Post-compile stages append their phases to the same trace.
    result.run(args=args)
    result.cost()
    names = phase_names(trace)
    assert "sim" in names
    assert "bind" in names
    try:
        result.verilog()
    except NotImplementedError:
        pass
    # Every phase is canonical (the summary can place each column).
    assert set(phase_names(trace)) <= set(PHASE_ORDER)
    # Every phase closed: durations are recorded, tree has no open spans.
    assert not trace._stack
    assert all(s.dur_us >= 0 for _, s in trace.spans())


def test_disabled_mode_records_zero_spans():
    result = synthesize(SOURCE, SynthesisOptions(flow="c2verilog"))
    assert result.trace is None
    run = result.run(args=(5,))
    assert run.value == 10
    result.cost()
    result.verilog()


def test_trace_covers_full_pipeline_with_counters():
    result = synthesize(SOURCE, SynthesisOptions(flow="c2verilog", trace=True))
    result.run(args=(5,))
    result.cost()
    result.verilog()
    counters = counters_of(result.trace.to_dict())
    assert counters["parse.functions"] >= 1
    assert "cdfg.ops" in counters
    assert "schedule.states" in counters
    assert "bind.registers" in counters
    assert "emit.lines" in counters
    assert "sim.cycles" in counters


def test_opt_level_changes_pass_structure():
    o0 = synthesize(SOURCE, SynthesisOptions(trace=True, opt_level=0))
    o2 = synthesize(SOURCE, SynthesisOptions(trace=True, opt_level=2))
    passes0 = o0.trace.find("passes")
    passes2 = o2.trace.find("passes")
    names0 = {c.name for c in passes0.children}
    names2 = {c.name for c in passes2.children}
    assert "pass.constfold" not in names0          # opt_level=0: validate only
    assert "pass.constfold" in names2
    # Identity ignores trace but not opt_level.
    assert (SynthesisOptions(opt_level=0).identity()
            != SynthesisOptions(opt_level=2).identity())
    assert (SynthesisOptions(trace=True).identity()
            == SynthesisOptions(trace=False).identity())


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


def test_chrome_export_required_keys(tmp_path):
    result = synthesize(SOURCE, SynthesisOptions(flow="c2verilog", trace=True))
    result.run(args=(5,))
    result.cost()
    result.verilog()
    path = tmp_path / "out.json"
    result.trace.write_chrome(path)
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "no complete events"
    for event in complete:
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            assert key in event
    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 1
    assert meta[0]["name"] == "process_name"
    names = {e["name"] for e in complete}
    for phase in ("parse", "semantic", "cdfg", "passes", "schedule",
                  "bind", "emit", "sim"):
        assert phase in names


def test_jsonl_export_one_object_per_span():
    trace = TraceContext(name="j")
    with trace.span("a", cat="phase"):
        with trace.span("b"):
            pass
    lines = trace.to_jsonl().strip().splitlines()
    rows = [json.loads(line) for line in lines]
    assert {r["name"] for r in rows} == {"a", "b"}
    assert all("dur_us" in r for r in rows)


# ---------------------------------------------------------------------------
# Matrix summary and cache interplay
# ---------------------------------------------------------------------------


def engine_tasks():
    from repro.runner import file_tasks

    return file_tasks(SOURCE, name="trace-test",
                      flows=["c2verilog", "handelc"], args=(5,))


def test_matrix_summary_agrees_with_cell_traces():
    from repro.report import format_trace_summary
    from repro.runner import MatrixEngine

    results = MatrixEngine(trace=True).run_cells(engine_tasks())
    assert all(r.trace is not None for r in results)
    merged = merge_phase_totals([r.trace for r in results])
    # The rendered table reports exactly the merged totals, per flow here
    # (one cell per flow, so per-flow == per-cell).
    text = format_trace_summary(results)
    for cell in results:
        totals = phase_totals_of(cell.trace)
        row = next(line for line in text.splitlines()
                   if line.startswith(cell.flow))
        assert f"{sum(totals.values()) / 1000:.2f}" in row
    assert sum(merged.values()) == pytest.approx(
        sum(sum(phase_totals_of(r.trace).values()) for r in results))


def test_untraced_engine_attaches_no_traces():
    from repro.runner import MatrixEngine

    results = MatrixEngine().run_cells(engine_tasks())
    assert all(r.trace is None for r in results)


def test_cached_and_uncached_trace_structure_identical(tmp_path):
    from repro.runner import ArtifactCache, MatrixEngine

    tasks = engine_tasks()
    cold = MatrixEngine(cache=ArtifactCache(tmp_path), trace=True).run_cells(tasks)
    warm = MatrixEngine(cache=ArtifactCache(tmp_path), trace=True).run_cells(tasks)
    assert all(not r.cached for r in cold)
    assert all(r.cached for r in warm)
    for before, after in zip(cold, warm):
        assert structure_of(before.trace) == structure_of(after.trace)
        assert counters_of(before.trace) == counters_of(after.trace)


def test_traced_engine_upgrades_untraced_cache_entries(tmp_path):
    from repro.runner import ArtifactCache, MatrixEngine

    tasks = engine_tasks()
    MatrixEngine(cache=ArtifactCache(tmp_path)).run_cells(tasks)
    # The untraced entries carry no traces; a traced engine must treat
    # them as misses and re-store, not report phase-less cells.
    traced = MatrixEngine(cache=ArtifactCache(tmp_path), trace=True)
    results = traced.run_cells(tasks)
    assert all(not r.cached for r in results)
    assert all(r.trace is not None for r in results)
    warm = MatrixEngine(cache=ArtifactCache(tmp_path), trace=True).run_cells(tasks)
    assert all(r.cached for r in warm)
    assert all(r.trace is not None for r in warm)


# ---------------------------------------------------------------------------
# The facade and its legacy shims
# ---------------------------------------------------------------------------


def test_synthesis_options_identity_and_flow_options():
    options = SynthesisOptions.make(flow="specc", refine="rtl")
    assert options.flow_options == (("refine", "rtl"),)
    assert options.flow_kwargs()["refine"] == "rtl"
    again = options.with_(opt_level=3)
    assert again.opt_level == 3
    assert again.flow_options == options.flow_options
    assert options.identity() != again.identity()


def test_cell_task_identity_derives_from_options():
    from repro.runner import CellTask

    task = CellTask(workload="w", source=SOURCE, flow="handelc", args=(5,))
    identity = task.identity()
    options = task.synthesis_options()
    expected = options.identity()
    expected["args"] = [5]
    assert identity == expected


def test_legacy_compile_flow_warns_once():
    from repro.flows import compile_flow

    _reset_legacy_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        compile_flow(SOURCE, flow="handelc")
        compile_flow(SOURCE, flow="handelc")
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    _reset_legacy_warnings()


def test_compile_flow_accepts_options_without_warning():
    from repro.flows import compile_flow

    _reset_legacy_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        design = compile_flow(SOURCE, SynthesisOptions(flow="handelc"))
    assert design.run(args=(5,)).value == 10
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_fuzz_divergence_trace_is_deterministic():
    from repro.fuzz.campaign import attach_trace
    from repro.fuzz.corpus import CorpusEntry, entry_from_divergence
    from repro.fuzz.signature import Divergence

    src = "int main() { int a = 3; int b = 4; return a * b + 1; }"
    first = attach_trace(Divergence(flow="c2verilog", kind="mismatch",
                                    source=src))
    second = attach_trace(Divergence(flow="c2verilog", kind="mismatch",
                                     source=src))
    assert first.trace and first.trace == second.trace
    assert set(first.trace) == {"structure", "counters"}
    assert json.dumps(first.trace, sort_keys=True)  # JSON-stable, no durations
    entry = entry_from_divergence(first)
    assert CorpusEntry.from_json(entry.to_json()).trace == first.trace
