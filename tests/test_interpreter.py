"""Golden-model interpreter tests: the language's reference semantics."""

import pytest

from repro.lang import InterpError
from repro.interp import run_source


def value_of(source, args=(), **kwargs):
    return run_source(source, args=args, **kwargs).value


def test_return_constant():
    assert value_of("int main() { return 42; }") == 42


def test_arguments_bound_in_order():
    assert value_of("int main(int a, int b) { return a * 100 + b; }", (3, 4)) == 304


def test_argument_wrapping_on_entry():
    assert value_of("int main(uint8 v) { return v; }", (300,)) == 44


def test_arithmetic_with_precedence():
    assert value_of("int main() { return 2 + 3 * 4 - 1; }") == 13


def test_fixed_width_locals_wrap_on_store():
    assert value_of("int main() { int4 x = 7; x = x + 1; return x; }") == -8


def test_if_else():
    src = "int main(int n) { if (n > 10) { return 1; } else { return 2; } }"
    assert value_of(src, (11,)) == 1
    assert value_of(src, (10,)) == 2


def test_while_loop():
    assert value_of(
        "int main() { int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s; }"
    ) == 10


def test_do_while_runs_at_least_once():
    assert value_of(
        "int main() { int n = 0; do { n++; } while (false); return n; }"
    ) == 1


def test_for_with_break_and_continue():
    src = """
    int main() {
        int s = 0;
        for (int i = 0; i < 100; i++) {
            if (i == 7) { break; }
            if (i % 2 == 0) { continue; }
            s += i;
        }
        return s;
    }
    """
    assert value_of(src) == 1 + 3 + 5


def test_nested_loop_break_binds_inner():
    src = """
    int main() {
        int count = 0;
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 10; j++) {
                if (j == 2) { break; }
                count++;
            }
        }
        return count;
    }
    """
    assert value_of(src) == 6


def test_short_circuit_and_skips_rhs():
    src = "int main(int a) { int d = 0; if (a != 0 && 10 / a > 1) { d = 1; } return d; }"
    assert value_of(src, (0,)) == 0  # would trap without short circuit
    assert value_of(src, (4,)) == 1


def test_short_circuit_or_skips_rhs():
    src = "int main(int a) { return (a == 0 || 10 / a > 0) ? 7 : 8; }"
    assert value_of(src, (0,)) == 7


def test_ternary_is_lazy():
    assert value_of("int main(int a) { return a != 0 ? 100 / a : 0 - 1; }", (0,)) == -1


def test_division_by_zero_traps():
    with pytest.raises(InterpError):
        value_of("int main(int a) { return 1 / a; }", (0,))


def test_array_out_of_bounds_traps():
    with pytest.raises(InterpError):
        value_of("int main() { int a[4]; return a[4]; }")
    with pytest.raises(InterpError):
        value_of("int main(int i) { int a[4]; a[i] = 1; return 0; }", (-1,))


def test_local_arrays_zero_initialized():
    assert value_of("int main() { int a[8]; return a[5]; }") == 0


def test_partial_array_initializer_zeroes_tail():
    assert value_of("int main() { int a[4] = {7}; return a[0] * 10 + a[3]; }") == 70


def test_global_state_survives_calls_and_is_reported():
    result = run_source(
        """
        int counter;
        void bump() { counter = counter + 1; }
        int main() { bump(); bump(); bump(); return counter; }
        """
    )
    assert result.value == 3
    assert result.globals["counter"] == 3


def test_global_array_reported():
    result = run_source(
        """
        int table[3];
        int main() { for (int i = 0; i < 3; i++) { table[i] = i * i; } return 0; }
        """
    )
    assert result.globals["table"] == [0, 1, 4]


def test_array_arguments_pass_by_reference():
    assert value_of(
        """
        void fill(int a[4]) { for (int i = 0; i < 4; i++) { a[i] = i + 1; } }
        int main() { int buf[4]; fill(buf); return buf[3]; }
        """
    ) == 4


def test_recursion():
    assert value_of(
        "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }"
        " int main() { return f(5); }"
    ) == 120


def test_mutual_recursion():
    assert value_of(
        """
        int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
        int main() { return even(10) * 10 + odd(10); }
        """
    ) == 10


def test_pointers_alias_locals():
    assert value_of(
        """
        int main() {
            int x = 5;
            int *p = &x;
            *p = 9;
            return x;
        }
        """
    ) == 9


def test_pointer_arithmetic_walks_arrays():
    assert value_of(
        """
        int main() {
            int a[4] = {10, 20, 30, 40};
            int *p = &a[1];
            p = p + 2;
            return *p + *(p - 1);
        }
        """
    ) == 70


def test_step_budget_stops_infinite_loops():
    with pytest.raises(InterpError):
        value_of("int main() { while (true) { } return 0; }", max_steps=10_000)


def test_par_joins_before_continuing():
    assert value_of(
        "int main() { int x = 0; int y = 0; par { x = 2; y = 3; } return x * y; }"
    ) == 6


def test_channels_rendezvous_and_log():
    result = run_source(
        """
        chan<int> c;
        process void producer() { for (int i = 0; i < 3; i++) { send(c, i + 1); } }
        int main() { return recv(c) + recv(c) + recv(c); }
        """
    )
    assert result.value == 6
    assert result.channel_log["c"] == [1, 2, 3]


def test_channel_deadlock_detected():
    with pytest.raises(InterpError) as excinfo:
        run_source("chan<int> c; int main() { return recv(c); }")
    assert "deadlock" in str(excinfo.value)


def test_channel_wraps_to_element_type():
    result = run_source(
        """
        chan<int8> c;
        process void p() { send(c, 200); }
        int main() { return recv(c); }
        """
    )
    assert result.value == -56


def test_par_with_channels_between_branch_and_process():
    result = run_source(
        """
        chan<int> c;
        process void sink() { int a = recv(c); int b = recv(c); send(c, a + b); }
        int main() {
            int out = 0;
            par {
                seq { send(c, 4); send(c, 5); }
            }
            out = recv(c);
            return out;
        }
        """
    )
    assert result.value == 9


def test_observable_tuple_is_stable():
    r1 = run_source("int g; int main() { g = 3; return 1; }")
    r2 = run_source("int g; int main() { g = 3; return 1; }")
    assert r1.observable() == r2.observable()


def test_wait_and_delay_are_functionally_inert():
    assert value_of(
        "int main() { int x = 1; wait(); delay(5); x = x + 1; return x; }"
    ) == 2


def test_uninitialized_locals_are_zero_each_declaration():
    assert value_of(
        """
        int main() {
            int acc = 0;
            for (int i = 0; i < 3; i++) {
                int fresh;
                acc += fresh;
                fresh = 99;
            }
            return acc;
        }
        """
    ) == 0
