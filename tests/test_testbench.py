"""Self-checking testbench generation tests."""

import pytest

from repro.flows import compile_flow
from repro.interp import run_source
from repro.rtl.verilog import emit_fsmd_testbench


def test_testbench_embeds_golden_value():
    source = "int main(int a, int b) { return a * b + 1; }"
    design = compile_flow(source, flow="c2verilog")
    golden = run_source(source, args=(6, 7)).value
    run = design.run(args=(6, 7))
    tb = emit_fsmd_testbench(
        design.system.root, [6, 7], golden, expected_cycles=run.cycles
    )
    assert "module tb_main" in tb
    assert f"32'd{golden}" in tb
    assert "wait (done);" in tb
    assert '$display("PASS");' in tb
    assert "arg_a" in tb and "arg_b" in tb


def test_testbench_masks_arguments_to_port_width():
    source = "int main(uint8 v) { return v; }"
    design = compile_flow(source, flow="c2verilog")
    tb = emit_fsmd_testbench(design.system.root, [300], 44)
    assert "8'd44" in tb  # 300 wraps to 44 in 8 bits


def test_testbench_rejects_wrong_arity():
    design = compile_flow("int main(int a) { return a; }", flow="c2verilog")
    with pytest.raises(ValueError):
        emit_fsmd_testbench(design.system.root, [], 0)


def test_testbench_rejects_channel_designs():
    design = compile_flow(
        """
        chan<int> c;
        process void p() { send(c, 1); }
        int main() { return recv(c); }
        """,
        flow="bachc",
    )
    with pytest.raises(ValueError):
        emit_fsmd_testbench(design.system.root, [], 1)


def test_testbench_pairs_with_module_for_handelc():
    source = "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    design = compile_flow(source, flow="handelc")
    golden = run_source(source, args=(6,)).value
    module = design.verilog()
    tb = emit_fsmd_testbench(design.system.root, [6], golden)
    assert "module fsmd_main" in module
    assert "fsmd_main dut (" in tb
