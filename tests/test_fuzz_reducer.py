"""Reducer contracts: 1-minimality, termination, and budget discipline.

The predicates here are synthetic (string/AST properties rather than flow
runs) so the contracts are checked exactly and fast; the integration path
— reducing a real divergence under a real engine predicate — is covered
by the corpus entries themselves, which were produced by that pipeline
and are asserted minimal in test_corpus_replay.py.
"""

import pytest

from repro.fuzz import is_statement_minimal, reduce_source
from repro.fuzz.reduce import _statement_paths
from repro.lang import parse


BIG_PROGRAM = """
int junk1[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int helper(int a, int b) {
    int h = a + b;
    return h * 2;
}
int main(int x, int y) {
    int a = x + 1;
    int b = y - 2;
    int trigger = a ^ b;
    for (int i = 0; i < 4; i++) {
        a = a + i;
    }
    if (a > b) {
        b = helper(a, b);
    } else {
        b = 0;
    }
    return a + b + trigger;
}
"""


def has_xor(source: str) -> bool:
    try:
        parse(source)
    except Exception:
        return False
    return "^" in source


class TestReduction:
    def test_shrinks_while_preserving_the_predicate(self):
        result = reduce_source(BIG_PROGRAM, has_xor)
        assert result.reproduced
        assert has_xor(result.reduced)
        assert len(result.reduced) < len(BIG_PROGRAM) / 2
        assert result.shrink_ratio < 0.5

    def test_result_is_one_minimal_at_statement_granularity(self):
        result = reduce_source(BIG_PROGRAM, has_xor)
        assert is_statement_minimal(result.reduced, has_xor)

    def test_unrelated_statements_are_gone(self):
        result = reduce_source(BIG_PROGRAM, has_xor)
        assert "junk1" not in result.reduced
        assert "helper" not in result.reduced
        assert "for" not in result.reduced

    def test_reduction_is_deterministic(self):
        first = reduce_source(BIG_PROGRAM, has_xor)
        second = reduce_source(BIG_PROGRAM, has_xor)
        assert first.reduced == second.reduced
        assert first.predicate_calls == second.predicate_calls


class TestTermination:
    def test_non_reproducing_input_returns_after_one_call(self):
        calls = []

        def never(source):
            calls.append(source)
            return False

        result = reduce_source(BIG_PROGRAM, never)
        assert not result.reproduced
        assert result.reduced == BIG_PROGRAM
        assert len(calls) == 1
        assert result.predicate_calls == 1

    def test_unparseable_input_never_reaches_the_predicate(self):
        calls = []

        def count(source):
            calls.append(source)
            return True

        result = reduce_source("int main( {", count)
        assert not result.reproduced
        assert calls == []

    def test_always_true_predicate_still_terminates(self):
        # Everything reproduces, so reduction bottoms out at the empty-ish
        # fixpoint instead of looping.
        result = reduce_source(BIG_PROGRAM, lambda s: has_xor(s) or True)
        assert result.reproduced
        parse(result.reduced)

    def test_budget_bounds_predicate_calls(self):
        result = reduce_source(BIG_PROGRAM, has_xor, max_predicate_calls=5)
        assert result.predicate_calls <= 5
        assert any("budget" in note for note in result.notes)

    def test_raising_predicate_is_treated_as_non_reproducing(self):
        def explode(source):
            raise RuntimeError("flow crashed")

        result = reduce_source(BIG_PROGRAM, explode)
        assert not result.reproduced
        assert result.reduced == BIG_PROGRAM


class TestCandidates:
    def test_statement_paths_cover_nested_blocks_and_globals(self):
        program, _ = parse(BIG_PROGRAM)
        paths = _statement_paths(program)
        kinds = {p[0] for p in paths}
        assert kinds == {"global", "function", "stmt"}
        # main's top level has 6 statements; nested bodies add more.
        stmt_paths = [p for p in paths if p[0] == "stmt"]
        assert len(stmt_paths) > 10

    def test_main_is_never_a_deletion_candidate(self):
        program, _ = parse(BIG_PROGRAM)
        function_paths = [p for p in _statement_paths(program)
                          if p[0] == "function"]
        names = {program.functions[p[1]].name for p in function_paths}
        assert "main" not in names

    def test_token_pass_shrinks_below_statement_level(self):
        source = (
            "int main(int x, int y) {\n"
            "    int t = (x + 77) ^ (y + 1000);\n"
            "    return t;\n"
            "}\n"
        )
        result = reduce_source(source, has_xor)
        assert result.reproduced
        # The additions around the XOR are not statements; only the token
        # pass can remove them.
        assert "77" not in result.reduced
        assert "1000" not in result.reduced


@pytest.mark.parametrize("needle", ["junk1", "helper", "trigger"])
def test_minimality_checker_rejects_padded_programs(needle):
    # BIG_PROGRAM itself is far from minimal for has_xor, and the checker
    # must say so (each named artifact is singly deletable).
    assert needle in BIG_PROGRAM
    assert not is_statement_minimal(BIG_PROGRAM, has_xor)
