"""The opt-level differential test tier.

The optimizing mid-end (liveness, dead-variable elimination, chain
load/store elimination, copy propagation, the fixpoint driver) is only
trustworthy if every transformation is backed by machine-checked
semantic equivalence.  This suite provides that backing in layers:

1. unit tests for the liveness analysis and each new pass's safety
   rules (aliasing, fences, global arrays, raw load values);
2. a **per-pass differential harness**: the CDFG executor — the
   interpreter golden model at IR level — runs each fuzz-grammar
   program before and after *each individual pass*, and after the full
   fixpoint pipeline, asserting bit-identical observables (return
   value, global registers, memories, channel traffic);
3. the fixpoint-convergence properties: bounded iterations on every
   generated program, and idempotence (a second run from the converged
   CDFG is a no-op);
4. the opt_level plumbing: level selection through SynthesisOptions /
   CellTask identity, and cross-level agreement of full flow runs.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.pointer import plan_pointers
from repro.api import DEFAULT_OPT_LEVEL, SynthesisOptions, synthesize
from repro.flows import COMPILABLE
from repro.fuzz import feature_mask, generate_program
from repro.ir import build_function, compute_liveness, validate
from repro.ir.cdfg import FunctionCDFG
from repro.ir.executor import execute
from repro.ir.liveness import block_use_def, op_var_uses, op_vreg_uses
from repro.ir.ops import OpKind
from repro.ir.passes import (
    DEFAULT_MAX_ITERATIONS,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    eliminate_dead_variables,
    eliminate_load_store_chains,
    fold_constants,
    inline_program,
    optimize_cdfg,
    propagate_copies,
    run_fixpoint,
    simplify_cfg,
)
from repro.lang import InterpError, parse
from repro.lang.symtab import SymbolKind
from repro.runner import CellTask
from repro.runner.engine import suite_tasks
from repro.trace import TraceContext

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FLOWS = sorted(COMPILABLE)

#: Every pass the fixpoint driver runs, individually harnessed.
_PASSES = [
    ("constfold", fold_constants),
    ("simplify_cfg", simplify_cfg),
    ("cse", eliminate_common_subexpressions),
    ("copyprop", propagate_copies),
    ("memchain", eliminate_load_store_chains),
    ("deadvar", eliminate_dead_variables),
    ("dce", eliminate_dead_code),
]


def build(source, function="main"):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    fn = inlined.function(function)
    plan = plan_pointers(fn)
    return build_function(fn, info, plan), plan, program, info


def _initial_state(cdfg: FunctionCDFG, plan, info):
    register_init = {}
    memory_init = {}
    for symbol in cdfg.registers:
        if symbol.kind is SymbolKind.GLOBAL:
            init = info.global_inits.get(symbol.name)
            if isinstance(init, int):
                register_init[symbol] = init
    for array in cdfg.arrays:
        if array.kind is SymbolKind.GLOBAL:
            init = info.global_inits.get(array.name)
            if isinstance(init, list):
                memory_init[array] = list(init)
    if plan.memory_symbol is not None:
        memory_init[plan.memory_symbol] = plan.initial_memory(
            info.global_inits
        )
    return register_init, memory_init


def observe(cdfg, plan, info, args, global_names, max_blocks=100_000):
    """Run the CDFG executor and collect every observable: return value,
    global registers, all memories, and scripted channel traffic."""
    register_init, memory_init = _initial_state(cdfg, plan, info)
    sends = []
    recv_script = itertools.count(1)
    result = execute(
        cdfg,
        args=args,
        register_init=register_init,
        memory_init={k: list(v) for k, v in memory_init.items()},
        on_send=lambda ch, v: sends.append((ch.unique_name, v)),
        on_recv=lambda ch: next(recv_script) % 97,
        max_blocks=max_blocks,
    )
    return {
        "value": result.value,
        "globals": {
            name: result.registers[name]
            for name in global_names
            if name in result.registers
        },
        "memories": {k: list(v) for k, v in result.memories.items()},
        "sends": sends,
    }


def _global_names(cdfg):
    return sorted(
        s.unique_name
        for s in cdfg.registers
        if s.kind is SymbolKind.GLOBAL
    )


def assert_pass_preserves(cdfg, plan, info, args, pass_fn, label=""):
    """The differential core: observables before == observables after.

    If the baseline run traps, the pass may legitimately remove the
    trapping operation (dead traps are not observable, matching DCE's
    long-standing stance) — the optimized run must then either trap the
    same way or complete; either way ``validate`` must still hold.
    """
    names = _global_names(cdfg)
    try:
        before = observe(cdfg, plan, info, args, names)
    except InterpError:
        pass_fn(cdfg)
        validate(cdfg)
        try:
            observe(cdfg, plan, info, args, names)
        except InterpError:
            pass
        return None
    pass_fn(cdfg)
    validate(cdfg)
    after = observe(cdfg, plan, info, args, names)
    assert after == before, f"{label}: observables drifted"
    return before


# ---------------------------------------------------------------------------
# Liveness analysis
# ---------------------------------------------------------------------------


def test_liveness_loop_variable_is_live_around_the_loop():
    cdfg, _, _, _ = build(
        "int main(int n) { int s = 0;"
        " for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    liveness = compute_liveness(cdfg)
    # The loop header reads i and s, so both are live-out of the body
    # block that latches them.
    latch_blocks = [
        b for b in cdfg.reachable_blocks()
        if any(v.name == "i" for v in b.var_writes)
    ]
    assert latch_blocks
    for block in latch_blocks:
        assert any(
            v.name == "i" for v in liveness.live_out[block.id]
        )
    assert liveness.iterations >= 2  # the back edge forces a second sweep


def test_liveness_dead_tail_write_is_not_live_out():
    cdfg, _, _, _ = build(
        "int main(int a) { int t = a + 1; int r = t * 2; t = 99;"
        " return r; }"
    )
    liveness = compute_liveness(cdfg)
    for block in cdfg.reachable_blocks():
        for var in liveness.live_out[block.id]:
            assert var.name != "t"


def test_liveness_use_def_and_op_helpers():
    cdfg, _, _, _ = build("int main(int a) { int b = a + 1; return b; }")
    (block,) = cdfg.reachable_blocks()
    use, defs = block_use_def(block)
    assert {s.name for s in use} >= {"a"}
    assert {s.name for s in defs} == {"b"}
    add = next(op for op in block.ops if op.kind is OpKind.BINARY)
    assert {s.name for s in op_var_uses(add)} == {"a"}
    assert op_vreg_uses(add) == set()
    assert add.dest is not None


def test_liveness_branch_condition_counts_as_use():
    cdfg, _, _, _ = build(
        "int main(int a) { int c = a > 0; if (c) { return 1; } return 2; }"
    )
    liveness = compute_liveness(cdfg)
    entry = cdfg.entry
    use = liveness.use[entry.id]
    assert {s.name for s in use} >= {"a"}


# ---------------------------------------------------------------------------
# Dead-variable elimination
# ---------------------------------------------------------------------------


def _latches_of(cdfg, name):
    return sum(
        1 for b in cdfg.blocks for v in b.var_writes if v.name == name
    )


def test_deadvar_removes_overwritten_latch():
    # t's final write is never read on any path: the latch is dead.
    cdfg, _, _, _ = build(
        "int main(int a) { int t = a + 1; int r = t * 2; t = a * 7;"
        " return r; }"
    )
    removed = eliminate_dead_variables(cdfg)
    assert removed >= 1
    assert _latches_of(cdfg, "t") == 0
    assert execute(cdfg, args=(4,)).value == 10


def test_deadvar_keeps_live_and_global_latches():
    # The branch forces t's later reads through its register (cross-block
    # reads are upward-exposed), so the latch is genuinely live; g is
    # global and always kept.
    cdfg, _, _, _ = build(
        "int g; int main(int a) { g = a + 1; int t = a * 2;"
        " if (a > 0) { g = g + t; } return t; }"
    )
    removed = eliminate_dead_variables(cdfg)
    assert removed == 0
    assert _latches_of(cdfg, "t") == 1
    assert _latches_of(cdfg, "g") == 2


def test_deadvar_beats_dce_on_partially_dead_variables():
    # x IS read (in the then-branch), so register-level DCE must keep
    # every latch; liveness sees the tail write is dead on all paths.
    source = (
        "int main(int a) { int x = a + 1; int r = 0;"
        " if (a > 0) { r = x * 2; }"
        " x = a * 99; return r; }"
    )
    cdfg_dce, _, _, _ = build(source)
    eliminate_dead_code(cdfg_dce)
    cdfg_dve, _, _, _ = build(source)
    eliminate_dead_variables(cdfg_dve)
    assert _latches_of(cdfg_dve, "x") < _latches_of(cdfg_dce, "x")
    assert execute(cdfg_dve, args=(4,)).value == 10


# ---------------------------------------------------------------------------
# Chain load/store elimination
# ---------------------------------------------------------------------------


def _loads(cdfg):
    return [op for op in cdfg.iter_ops() if op.kind is OpKind.LOAD]


def _stores(cdfg):
    return [op for op in cdfg.iter_ops() if op.kind is OpKind.STORE]


def test_memchain_forwards_store_to_load():
    cdfg, plan, _, info = build(
        "int main(int i) { int a[4]; a[i] = i * 3; return a[i] + 1; }"
    )
    removed = eliminate_load_store_chains(cdfg)
    assert removed >= 1
    assert len(_loads(cdfg)) == 0  # the load was forwarded
    assert len(_stores(cdfg)) == 1  # memory is still written
    assert execute(cdfg, args=(2,)).value == 7


def test_memchain_removes_superseded_local_store():
    cdfg, _, _, _ = build(
        "int main(int i) { int a[4]; a[i] = 1; a[i] = 2; return a[i]; }"
    )
    eliminate_load_store_chains(cdfg)
    assert len(_stores(cdfg)) == 1
    assert execute(cdfg, args=(3,)).value == 2


def test_memchain_never_removes_global_array_stores():
    # A concurrent process may observe the intermediate state.
    cdfg, _, _, _ = build(
        "int g[4]; int main(int i) { g[i] = 1; g[i] = 2; return g[i]; }"
    )
    eliminate_load_store_chains(cdfg)
    assert len(_stores(cdfg)) == 2
    # ...but forwarding from the latest store is still sound per-machine.
    assert len(_loads(cdfg)) == 0


def test_memchain_any_load_pins_the_pending_store():
    # The load g[j] may alias g[i]; the first store must survive.
    cdfg, _, _, _ = build(
        "int main(int i, int j) { int g[4]; g[i] = 5; int o = g[j];"
        " g[i] = 6; return o + g[i]; }"
    )
    eliminate_load_store_chains(cdfg)
    assert len(_stores(cdfg)) == 2
    assert execute(cdfg, args=(1, 1)).value == 11


def test_memchain_different_index_blocks_forwarding():
    cdfg, _, _, _ = build(
        "int main(int i, int j) { int a[4]; a[i] = 9; return a[j]; }"
    )
    eliminate_load_store_chains(cdfg)
    assert len(_loads(cdfg)) == 1  # i == j is not provable
    assert execute(cdfg, args=(2, 2)).value == 9


def test_memchain_fence_clobbers_tracking():
    cdfg, _, _, _ = build(
        "int main(int i) { int a[4]; a[i] = 3; wait(); return a[i]; }"
    )
    before_blocks = len(cdfg.reachable_blocks())
    eliminate_load_store_chains(cdfg)
    # wait() splits the block (and is a fence regardless): the store and
    # the load must not pair up.
    assert len(_loads(cdfg)) == 1
    assert before_blocks == len(cdfg.reachable_blocks())


def test_memchain_intervening_store_to_other_array_is_independent():
    cdfg, _, _, _ = build(
        "int main(int i) { int a[4]; int b[4]; a[i] = 1; b[i] = 2;"
        " a[i] = 3; return a[i] + b[i]; }"
    )
    eliminate_load_store_chains(cdfg)
    # b's store does not pin a's chain: a[i]=1 dies, both loads forward.
    assert len(_stores(cdfg)) == 2
    assert len(_loads(cdfg)) == 0
    assert execute(cdfg, args=(0,)).value == 5


# ---------------------------------------------------------------------------
# Copy propagation
# ---------------------------------------------------------------------------


def _plant_identity_cast(cdfg, source_operand):
    """Append an identity CAST of ``source_operand`` and return it from
    the single block (the builder itself skips identity casts, but other
    IR producers — and future passes — may not)."""
    from repro.ir.ops import Operation, Ret, VReg

    (block,) = cdfg.reachable_blocks()
    dest = VReg(source_operand.type)
    block.ops.append(
        Operation(kind=OpKind.CAST, dest=dest, operands=[source_operand])
    )
    block.terminator = Ret(dest)
    validate(cdfg)
    return block


def test_copyprop_removes_identity_cast():
    from repro.ir.ops import VarRead

    cdfg, _, _, _ = build("int main(int a) { return a; }")
    block = _plant_identity_cast(cdfg, VarRead(cdfg.params[0]))
    removed = propagate_copies(cdfg)
    assert removed == 1
    assert not any(op.kind is OpKind.CAST for op in cdfg.iter_ops())
    assert isinstance(block.terminator.value, VarRead)
    assert execute(cdfg, args=(5,)).value == 5


def test_copyprop_keeps_narrowing_cast():
    cdfg, _, _, _ = build(
        "int main(int a) { uint8 b = a; return b; }"
    )
    propagate_copies(cdfg)
    assert any(op.kind is OpKind.CAST for op in cdfg.iter_ops())
    assert execute(cdfg, args=(300,)).value == 44


def test_copyprop_keeps_identity_cast_of_raw_load():
    # Loads return the raw memory word; the cast's wrap is load-bearing
    # when the stored value might exceed the static type.
    cdfg, _, _, _ = build("int a[2]; int main(int i) { return a[i]; }")
    (block,) = cdfg.reachable_blocks()
    load = next(op for op in block.ops if op.kind is OpKind.LOAD)
    _plant_identity_cast(cdfg, load.dest)
    propagate_copies(cdfg)
    assert any(op.kind is OpKind.CAST for op in cdfg.iter_ops())


def test_copyprop_collapses_select_with_equal_arms():
    cdfg, _, _, _ = build(
        "int main(int a, int b) { return a > 0 ? b : b; }"
    )
    removed = propagate_copies(cdfg)
    assert removed >= 1
    assert not any(op.kind is OpKind.SELECT for op in cdfg.iter_ops())
    assert execute(cdfg, args=(-3, 9)).value == 9


def test_copyprop_deletes_local_self_latch_keeps_global():
    # Inside the branch `t = t;` is the first write of t in that block, so
    # the builder latches the register with its own entry value — a true
    # self-latch.  g's must survive (same-cycle write-conflict resolution
    # in multi-process designs).
    cdfg, _, _, _ = build(
        "int g; int main(int a) { int t = a;"
        " if (a > 0) { t = t; g = g; } return t; }"
    )
    self_latches_before = sum(
        1
        for b in cdfg.blocks
        for v, value in b.var_writes.items()
        if hasattr(value, "var") and value.var is v
    )
    assert self_latches_before >= 2
    propagate_copies(cdfg)
    for block in cdfg.blocks:
        for var, value in block.var_writes.items():
            if hasattr(value, "var") and value.var is var:
                assert var.kind is SymbolKind.GLOBAL
    assert _latches_of(cdfg, "g") == 1
    assert execute(cdfg, args=(8,)).value == 8


# ---------------------------------------------------------------------------
# Per-pass differential harness over the fuzz grammar
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("flow", ["c2verilog", "handelc", "cones", "specc"])
@pytest.mark.parametrize("seed", range(8))
def test_each_pass_preserves_observables(flow, seed):
    program = generate_program(seed, feature_mask(flow))
    for label, pass_fn in _PASSES:
        cdfg, plan, _, info = build(program.source)
        assert_pass_preserves(
            cdfg, plan, info, program.args, pass_fn,
            label=f"{program.name}/{label}",
        )


@given(seed=st.integers(min_value=0, max_value=5000),
       flow=st.sampled_from(_FLOWS))
@settings(**_SETTINGS)
def test_property_each_pass_preserves_observables(seed, flow):
    """Property form: any grammar program, any flow mask, every pass."""
    program = generate_program(seed, feature_mask(flow))
    for label, pass_fn in _PASSES:
        cdfg, plan, _, info = build(program.source)
        assert_pass_preserves(
            cdfg, plan, info, program.args, pass_fn,
            label=f"{program.name}/{label}",
        )


@given(seed=st.integers(min_value=0, max_value=5000),
       flow=st.sampled_from(_FLOWS))
@settings(**_SETTINGS)
def test_property_full_fixpoint_preserves_observables(seed, flow):
    """The composed pipeline is as trustworthy as its parts, and it
    converges within the bounded budget with an idempotent result."""
    program = generate_program(seed, feature_mask(flow))
    cdfg, plan, _, info = build(program.source)
    before = assert_pass_preserves(
        cdfg, plan, info, program.args,
        lambda c: run_fixpoint(c), label=program.name,
    )
    # Convergence: the budget was never the binding constraint...
    report = run_fixpoint(cdfg)
    assert report.converged
    assert report.iterations <= DEFAULT_MAX_ITERATIONS
    # ...and idempotence: a second run from the converged CDFG is a no-op.
    second = run_fixpoint(cdfg)
    assert second.converged
    assert second.iterations == 1
    assert second.total() == 0
    if before is not None:
        names = _global_names(cdfg)
        assert observe(cdfg, plan, info, program.args, names) == before


def test_fixpoint_interpreter_golden_value_matches():
    """For channel-free programs the executor's post-fixpoint value must
    equal the reference C interpreter's."""
    from repro.interp import run_program

    checked = 0
    for seed in range(12):
        program = generate_program(seed, feature_mask("c2verilog"))
        cdfg, plan, parsed, info = build(program.source)
        if any(op.is_fence() for op in cdfg.iter_ops()):
            continue
        golden = run_program(parsed, info, "main", program.args)
        run_fixpoint(cdfg)
        register_init, memory_init = _initial_state(cdfg, plan, info)
        result = execute(cdfg, args=program.args,
                         register_init=register_init,
                         memory_init=memory_init)
        assert result.value == golden.value, program.name
        checked += 1
    assert checked >= 8  # the sample is not vacuous


def test_fixpoint_trace_spans_and_counters():
    source = (
        "int main(int i) { int a[4]; a[i] = i + 2; int t = a[i]; wait();"
        " t = t; int r = t * 1; t = 99; return r; }"
    )
    cdfg, _, _, _ = build(source)
    trace = TraceContext()
    with trace.span("passes", cat="phase"):
        report = run_fixpoint(cdfg, trace=trace)
    assert report.total() > 0
    passes_span = trace.find("passes")
    names = {c.name for c in passes_span.children}
    assert {"pass.constfold", "pass.liveness", "pass.deadvar",
            "pass.memchain", "pass.copyprop",
            "fixpoint.iteration"} <= names
    iteration_leaves = [
        c for c in passes_span.children if c.name == "fixpoint.iteration"
    ]
    assert len(iteration_leaves) == report.iterations
    assert report.liveness_recomputes >= 1


def test_fixpoint_recomputes_liveness_only_on_invalidation():
    # Already-optimal CDFG: one liveness computation, one iteration.
    cdfg, _, _, _ = build("int main(int a) { return a; }")
    run_fixpoint(cdfg)
    report = run_fixpoint(cdfg)
    assert report.iterations == 1
    assert report.liveness_recomputes == 1


# ---------------------------------------------------------------------------
# opt_level plumbing
# ---------------------------------------------------------------------------


def test_optimize_cdfg_level_dispatch():
    source = "int main(int i) { int a[4]; a[i] = 7; return a[i]; }"
    c0, _, _, _ = build(source)
    optimize_cdfg(c0, opt_level=0)
    assert len(_loads(c0)) == 1  # level 0: untouched
    c2, _, _, _ = build(source)
    optimize_cdfg(c2, opt_level=2)
    assert len(_loads(c2)) == 0  # level 2: forwarded


def test_suite_tasks_carry_opt_level():
    default_tasks = suite_tasks(flows=["c2verilog"])
    lvl2 = suite_tasks(flows=["c2verilog"], opt_level=2)
    assert all(t.options == () for t in default_tasks)
    assert all(dict(t.options) == {"opt_level": 2} for t in lvl2)
    # The default level spelled explicitly keeps the default identity
    # (cache entries are shared).
    explicit = suite_tasks(flows=["c2verilog"], opt_level=DEFAULT_OPT_LEVEL)
    assert [t.identity() for t in explicit] == [
        t.identity() for t in default_tasks
    ]


def test_cell_identity_reflects_opt_level():
    base = CellTask(workload="w", source="int main() { return 1; }",
                    flow="c2verilog")
    lvl2 = CellTask(workload="w", source="int main() { return 1; }",
                    flow="c2verilog",
                    options=CellTask.make_options({"opt_level": 2}))
    assert base.identity()["opt_level"] == DEFAULT_OPT_LEVEL
    assert lvl2.identity()["opt_level"] == 2
    assert base.identity() != lvl2.identity()
    # opt_level rides in its proper SynthesisOptions field, not in
    # flow_options.
    assert lvl2.synthesis_options().opt_level == 2
    assert dict(lvl2.synthesis_options().flow_options) == {}


def test_synthesize_levels_agree_and_level2_is_never_slower():
    source = (
        "int g; int main(int n) { int a[8]; int s = 0;"
        " for (int i = 0; i < 8; i++) { a[i] = i * n; s += a[i]; }"
        " g = s; int t = s + 0; t = 99; return s; }"
    )
    runs = {}
    for level in (0, 1, 2):
        result = synthesize(source, SynthesisOptions(opt_level=level))
        runs[level] = result.run(args=(3,))
    assert runs[0].value == runs[1].value == runs[2].value
    assert runs[0].globals == runs[1].globals == runs[2].globals
    assert runs[2].cycles <= runs[1].cycles <= runs[0].cycles
