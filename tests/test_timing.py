"""The time-sensitive checking tier (TIM rules).

Three layers of evidence, mirroring docs/timing.md:

* unit tests — each TIM rule fires on its minimal trigger, with the
  right severity and a real source location, and stays quiet on clean
  programs;
* the cross-validation sweep — the checker's verdict over the full
  workload x flow matrix agrees 100% with what the flows actually did
  (and every rule prediction is validated against the compiled
  artifact: schedule refusal, simulation deadlock, or measured
  occupancy);
* probe replay — every generated timing-boundary probe is rejected with
  its predicted rule id at a real location, and the predicted failure
  reproduces on the artifact; pinned corpus entries guard both the
  checker and the generator against drift.
"""

import json
import pathlib
import pickle

import pytest

from repro.analysis.lint import Severity, TIM_RULES, TIM_VALIDATES, lint
from repro.analysis.lint.diagnostics import (
    RULE_TIM_CYCLE_BUDGET,
    RULE_TIM_II_CONFLICT,
    RULE_TIM_PAR_SHARED_CYCLE,
    RULE_TIM_PORT_OVERSUBSCRIBED,
    RULE_TIM_RENDEZVOUS,
    RULE_TIM_UNBOUNDED_IN_WITHIN,
    RULE_TIM_WITHIN_INFEASIBLE,
)
from repro.analysis.timing import (
    CheckOptions,
    CheckRejected,
    check,
    enforce,
    obligations_for,
)
from repro.analysis.timing.harness import (
    cross_validate_matrix,
    validate_probe,
)
from repro.analysis.timing.obligations import CHAIN_FLOWS, LIST_FLOWS
from repro.flows import COMPILABLE, FlowError, SynthesisOptions, synthesize
from repro.flows.registry import timing_rules
from repro.fuzz.timing import (
    PROBE_RULES,
    generate_timing_probe,
    probe_plan,
)
from repro.runner import MatrixEngine, suite_tasks
from repro.scheduling.base import ConstraintInfeasible

CORPUS_DIR = pathlib.Path(__file__).parent / "timing_corpus"

SELF_RENDEZVOUS = """
chan<int> c;
int main(int a) {
  send(c, a);
  int x = recv(c);
  return x;
}
"""

ORPHAN_SEND = """
chan<int> c;
int main(int a) {
  send(c, a + 1);
  return a;
}
"""

RECV_IN_WITHIN = """
chan<int> c;
process void prod() { send(c, 5); }
int main(int a) {
  int x;
  within (2) {
    x = recv(c);
  }
  return x + a;
}
"""

WITHIN_TOO_TIGHT = """
int main(int a) {
  int x;
  within (2) {
    x = a + 1;
    delay(3);
    x = x + 2;
  }
  return x;
}
"""

PAR_SHARED_MEMORY = """
int arr[8];
int main(int i) {
  int x;
  par {
    arr[i & 7] = 7;
    x = arr[(i + 1) & 7];
  }
  return x;
}
"""

PORT_OVERSUBSCRIBED = """
int arr[8];
int main(int i) {
  arr[i & 7] = arr[(i + 1) & 7] + arr[(i + 2) & 7];
  return arr[i & 7];
}
"""

RECURRENCE_LOOP = """
int arr[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main(int a) {
  int acc = a;
  for (int i = 0; i < 8; i = i + 1) {
    arr[i & 7] = arr[(i + 1) & 7] + acc;
    acc = acc + arr[(i + 2) & 7];
  }
  return acc;
}
"""

FAT_EXPRESSION = """
int main(int a) {
  int x = ((a * a) * (a * a)) * ((a + 1) * (a + 2)) * ((a * 3) * (a * 5)) % (a + 7);
  return x;
}
"""

CLEAN = """
int main(int a) {
  int acc = 0;
  for (int i = 0; i < 4; i = i + 1) {
    acc = acc + i * a;
  }
  return acc;
}
"""


# ---------------------------------------------------------------- rules


def _rules(report, flow):
    return report.rules(flow)


def test_tim201_self_rendezvous_fires_on_every_channel_flow():
    report = check(SELF_RENDEZVOUS)
    for flow in ("handelc", "systemc", "hardwarec", "cyber", "specc", "bachc"):
        hits = [d for d in report.errors(flow) if d.rule == RULE_TIM_RENDEZVOUS]
        assert hits, flow
        assert hits[0].location.line > 0
        assert "rendezvous" in hits[0].message


def test_tim201_orphan_endpoint():
    report = check(ORPHAN_SEND, flow="systemc")
    hits = [d for d in report.errors("systemc") if d.rule == RULE_TIM_RENDEZVOUS]
    assert hits and "blocks forever" in hits[0].message


def test_tim101_rendezvous_inside_within():
    report = check(RECV_IN_WITHIN)
    for flow in ("hardwarec", "cyber", "specc", "bachc"):
        assert RULE_TIM_UNBOUNDED_IN_WITHIN in _rules(report, flow), flow
    # The within-less chain flows have no within obligation to break.
    for flow in CHAIN_FLOWS:
        assert RULE_TIM_UNBOUNDED_IN_WITHIN not in _rules(report, flow)


def test_tim102_infeasible_within_budget():
    report = check(WITHIN_TOO_TIGHT)
    for flow in ("hardwarec", "cyber", "specc", "bachc"):
        hits = [d for d in report.errors(flow)
                if d.rule == RULE_TIM_WITHIN_INFEASIBLE]
        assert hits, flow
        assert hits[0].location.line > 0


def test_tim102_compile_raises_timing_infeasible():
    from repro.flows.base import TimingInfeasible

    with pytest.raises(TimingInfeasible) as caught:
        synthesize(WITHIN_TOO_TIGHT, flow="hardwarec")
    error = caught.value
    assert isinstance(error, FlowError)
    assert isinstance(error, ConstraintInfeasible)
    assert error.rule == RULE_TIM_WITHIN_INFEASIBLE
    clone = pickle.loads(pickle.dumps(error))
    assert clone.rule == error.rule


def test_tim103_budget_warning_never_rejects():
    report = check(FAT_EXPRESSION)
    hits = [d for d in report.diagnostics if d.rule == RULE_TIM_CYCLE_BUDGET]
    assert hits
    assert all(d.severity is Severity.WARNING for d in hits)
    assert {d.flow for d in hits} <= {"handelc", "systemc", "transmogrifier"}
    # A warning must never turn a verdict into a rejection.
    for flow in ("handelc", "systemc", "transmogrifier"):
        enforce(FAT_EXPRESSION, flow)


def test_tim202_par_shared_cycle_is_handelc_only():
    report = check(PAR_SHARED_MEMORY, flow="handelc")
    hits = [d for d in report.errors("handelc")
            if d.rule == RULE_TIM_PAR_SHARED_CYCLE]
    assert hits
    assert hits[0].location.line > 0


def test_tim302_port_oversubscription_measured():
    report = check(PORT_OVERSUBSCRIBED, flow="handelc")
    hits = [d for d in report.errors("handelc")
            if d.rule == RULE_TIM_PORT_OVERSUBSCRIBED]
    assert hits
    # Enough ports (the statement makes four accesses) make it feasible.
    relaxed = check(PORT_OVERSUBSCRIBED, flow="handelc", memory_ports=4)
    assert RULE_TIM_PORT_OVERSUBSCRIBED not in _rules(relaxed, "handelc")


def test_tim301_ii_below_mii_floor():
    report = check(RECURRENCE_LOOP, options=CheckOptions(pipeline_ii=2))
    for flow in LIST_FLOWS:
        hits = [d for d in report.errors(flow)
                if d.rule == RULE_TIM_II_CONFLICT]
        assert hits, flow
        assert "II" in hits[0].message
    # Without an II request the rule does not exist.
    silent = check(RECURRENCE_LOOP)
    assert not [d for d in silent.diagnostics
                if d.rule == RULE_TIM_II_CONFLICT]
    # A feasible II passes.
    feasible = check(RECURRENCE_LOOP, options=CheckOptions(pipeline_ii=8))
    assert not [d for d in feasible.diagnostics
                if d.rule == RULE_TIM_II_CONFLICT]


def test_clean_program_is_clean_everywhere():
    report = check(CLEAN)
    assert not report.diagnostics


def test_par_memory_conflict_counter_in_design_stats():
    design = synthesize(PAR_SHARED_MEMORY, flow="handelc").design
    assert design.stats.get("par_memory_conflicts", 0) >= 1
    clean = synthesize(CLEAN, flow="handelc").design
    assert clean.stats.get("par_memory_conflicts", 0) == 0


# ----------------------------------------------- obligations & registry


def test_obligations_derived_from_registry():
    handelc = obligations_for("handelc")
    assert handelc.rendezvous and handelc.lockstep_par
    assert handelc.implicit_cycle and not handelc.list_scheduled
    hardwarec = obligations_for("hardwarec")
    assert hardwarec.enforces_within and hardwarec.pipelined
    c2v = obligations_for("c2verilog")
    assert not c2v.rendezvous and c2v.list_scheduled
    # Bach C packs against an unlimited functional-unit set (memories
    # keep their physical single port).
    bachc = obligations_for("bachc").resources
    assert bachc.alu is None and bachc.memory_ports == 1
    assert obligations_for("hardwarec").resources.alu == 2


def test_registry_timing_rules_fresh_and_flow_scoped():
    first = timing_rules("handelc")
    second = timing_rules("handelc")
    assert [type(r) for r in first] == [type(r) for r in second]
    assert all(a is not b for a, b in zip(first, second))
    assert timing_rules("cones") == ()
    ii = timing_rules("hardwarec", CheckOptions(pipeline_ii=2))
    assert any(type(r).__name__ == "IIConflictRule" for r in ii)


def test_rule_catalogue_is_documented_and_validated():
    from repro.analysis.lint.diagnostics import RULE_DOCS

    assert len(TIM_RULES) == 7
    for rule in TIM_RULES:
        assert rule in RULE_DOCS
        assert rule in TIM_VALIDATES


# ------------------------------------------------- facade and reports


def test_synthesize_check_gate():
    with pytest.raises(CheckRejected) as caught:
        synthesize(SELF_RENDEZVOUS, SynthesisOptions(flow="handelc", check=True))
    error = caught.value
    assert isinstance(error, FlowError)
    assert error.rule == RULE_TIM_RENDEZVOUS
    assert error.diagnostics and error.report.errors("handelc")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.rule == error.rule and clone.diagnostics
    # The gate is part of the synthesis identity (cache key).
    options = SynthesisOptions(flow="handelc", check=True)
    assert options.identity()["check"] is True
    # Clean programs pass straight through the gate.
    assert synthesize(CLEAN, options).design is not None


def test_report_order_is_deterministic():
    one = check(SELF_RENDEZVOUS)
    two = check(SELF_RENDEZVOUS)
    assert one.to_json() == two.to_json()
    ordered = one.sorted()
    keys = [d.sort_key() for d in ordered]
    assert keys == sorted(keys)
    # sorted() is a permutation of the raw diagnostics.
    assert sorted(ordered, key=id) != [] and len(ordered) == len(one.diagnostics)


def test_machine_readable_report_schema():
    report = check(SELF_RENDEZVOUS, filename="probe.c")
    payload = json.loads(report.to_json())
    assert payload["filename"] == "probe.c"
    assert set(payload["verdicts"]) == set(payload["flows"])
    assert payload["verdicts"]["handelc"] == "reject"
    for entry in payload["diagnostics"]:
        assert set(entry) == {
            "rule", "severity", "flow", "message",
            "file", "line", "column", "hint",
        }
        assert entry["severity"] in ("error", "warning")
        assert entry["line"] >= 1
    # The lint report shares the same schema (machine-readable satellite).
    lint_payload = json.loads(lint(SELF_RENDEZVOUS).to_json())
    assert "verdicts" in lint_payload and "diagnostics" in lint_payload


# ------------------------------------------------- matrix cross-check


@pytest.fixture(scope="module")
def sweep_verdicts():
    """One parallel sweep of the full matrix, shared by the tests here."""
    engine = MatrixEngine(jobs=4)
    results = engine.run_cells(suite_tasks())
    return {(r.workload, r.flow): r.verdict for r in results}


def test_matrix_cross_validation_agrees_everywhere(sweep_verdicts):
    validation = cross_validate_matrix(sweep_verdicts)
    assert validation.cells == len(sweep_verdicts)
    bad = [
        (c.workload, c.flow, c.checker_verdict, c.runner_verdict)
        for c in validation.disagreements()
    ]
    assert not bad, bad
    assert validation.agreement_rate == 1.0


def test_matrix_has_no_false_accepts(sweep_verdicts):
    validation = cross_validate_matrix(sweep_verdicts)
    accepts = [
        (c.workload, c.flow, c.runner_verdict)
        for c in validation.false_accepts()
    ]
    assert not accepts, accepts


def test_matrix_rule_predictions_all_validated(sweep_verdicts):
    validation = cross_validate_matrix(sweep_verdicts)
    unvalidated = [
        (c.workload, c.flow, v.rule, v.detail)
        for c in validation.checks
        for v in c.validations
        if not v.validated
    ]
    assert not unvalidated, unvalidated


# ------------------------------------------------------- probe replay


def test_probe_plan_shape():
    plan = probe_plan()
    assert len(plan) >= 200
    pairs = {(p.kind, p.flow) for p in plan}
    assert len(pairs) == 27
    assert {p.kind for p in plan} == set(PROBE_RULES)
    for probe in plan:
        assert probe.rule == PROBE_RULES[probe.kind]
        assert probe.flow in COMPILABLE


def test_probe_generation_is_pure():
    a = generate_timing_probe("rv-self", "handelc", 7)
    b = generate_timing_probe("rv-self", "handelc", 7)
    c = generate_timing_probe("rv-self", "handelc", 8)
    assert a == b
    assert a.source == b.source
    assert c.source != a.source or c.args != a.args


def test_every_probe_rejected_with_predicted_rule_and_outcome():
    plan = probe_plan()
    failures = []
    for probe in plan:
        outcome = validate_probe(probe)
        if not outcome.ok:
            failures.append((probe.kind, probe.flow, probe.seed,
                             outcome.rejected, outcome.located,
                             outcome.outcome_validated, outcome.detail))
    assert not failures, failures[:5]


def _corpus_entries():
    return sorted(CORPUS_DIR.glob("*.json"))


@pytest.mark.parametrize("path", _corpus_entries(),
                         ids=[p.stem for p in _corpus_entries()])
def test_corpus_entry_replays(path):
    entry = json.loads(path.read_text())
    # 1. The stored source still trips the stored rule for the stored flow.
    options = CheckOptions(pipeline_ii=entry["pipeline_ii"])
    report = check(entry["source"], flow=entry["flow"], options=options)
    assert entry["rule"] in report.rules(entry["flow"]), path.name
    # 2. The generator still reproduces the pinned source byte for byte.
    probe = generate_timing_probe(entry["kind"], entry["flow"], entry["seed"])
    assert probe.source == entry["source"], path.name
    assert probe.rule == entry["rule"]
    assert list(probe.args) == entry["args"]


@pytest.fixture(scope="module")
def corpus_level_sweep():
    """Every timing-corpus source through its flow at opt levels 0/1/2."""
    from repro.runner.cells import CellTask

    tasks, keys = [], []
    for path in _corpus_entries():
        entry = json.loads(path.read_text())
        for level in (0, 1, 2):
            tasks.append(CellTask(
                workload=f"{path.stem}-L{level}",
                source=entry["source"],
                flow=entry["flow"],
                args=tuple(entry["args"]),
                options=CellTask.make_options({"opt_level": level}),
            ))
            keys.append((path.stem, level))
    engine = MatrixEngine(jobs=4, cache=None, timeout_s=30.0,
                          max_cycles=200_000)
    results = engine.run_cells(tasks)
    sweep = {}
    for (stem, level), result in zip(keys, results):
        sweep.setdefault(stem, {})[level] = result
    return sweep


@pytest.mark.parametrize("path", _corpus_entries(),
                         ids=[p.stem for p in _corpus_entries()])
def test_corpus_entry_flow_verdict_is_opt_level_invariant(
        path, corpus_level_sweep):
    """Timing verdicts must not depend on mid-end effort.

    A schedule-aware rejection (TIM102) that holds on the unoptimized
    CDFG must still hold after the fixpoint pipeline, and an accepted
    probe must not start failing: per entry, the (verdict, rule) pair is
    identical at opt levels 0, 1, and 2."""
    levels = corpus_level_sweep[path.stem]
    baseline = levels[1]
    assert baseline.verdict != "mismatch", path.stem
    for level in (0, 2):
        result = levels[level]
        assert result.verdict == baseline.verdict, (
            f"{path.stem}: verdict {baseline.verdict!r} at the default "
            f"level became {result.verdict!r} at opt_level={level}"
        )
        assert result.rule == baseline.rule, (
            f"{path.stem}: rule {baseline.rule!r} became {result.rule!r} "
            f"at opt_level={level}"
        )


def test_corpus_is_populated():
    entries = _corpus_entries()
    assert len(entries) >= 8
    rules = {json.loads(p.read_text())["rule"] for p in entries}
    # Every rejecting rule family is pinned (TIM103 warns, never rejects).
    assert {r.split("-")[0] for r in rules} == {
        "TIM101", "TIM102", "TIM201", "TIM202", "TIM301", "TIM302",
    }
