"""Three-way backend equivalence: interp vs compiled vs batched.

The batched engine (:mod:`repro.sim.batched`) steps N simulations in
lockstep over vectorized storage and must be a pure throughput
transformation — every lane bit-identical to what the scalar backends
produce for the same arguments, *including* lanes that trap, deadlock,
exhaust the cycle budget, or pass the wrong number of arguments.  This
suite pins that contract four ways:

* handwritten kernels that force the divergence machinery (per-lane trip
  counts, early returns, div/mod/shift traps, lane-dependent stores);
* property-based generation over the fuzz grammar, asserting
  interpreter == compiled == batched on return values, cycle counts,
  globals, and memories for every lane;
* the profiler and trace surface — lane counts, per-lane cycles, and
  state-visit histograms must reconcile exactly with scalar runs;
* the runner integration — cache identity, lane coalescing, and replay
  from the artifact cache must be byte-identical to cold execution.

Both engines are covered: ``lanes`` (pure python, always available) and
``vector`` (NumPy), plus the ``REPRO_NO_NUMPY`` degradation path.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import SynthesisOptions, synthesize
from repro.flows import COMPILABLE, FlowError, compile_flow, run_flow
from repro.fuzz import feature_mask, generate_program
from repro.lang import InterpError
from repro.runner import ArtifactCache, CellTask, MatrixEngine
from repro.runner.cache import cell_key
from repro.sim import (
    HAVE_NUMPY,
    SimProfile,
    SimulationError,
    simulate,
    simulate_batched,
)

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FLOWS = sorted(COMPILABLE)


# ---------------------------------------------------------------------------
# Lane-by-lane comparison helpers
# ---------------------------------------------------------------------------


def _scalar_outcome(design, args, backend, max_cycles=2_000_000):
    """What one scalar run produced, flattened for equality checks."""
    try:
        r = design.run(args=args, sim_backend=backend, max_cycles=max_cycles)
        return ("ok", r.value, r.cycles, r.observable(), dict(r.globals))
    except InterpError as failure:
        return ("error", type(failure).__name__, str(failure))


def _lane_outcome(outcome):
    """A batch LaneOutcome flattened into the same shape."""
    if not outcome.ok:
        return ("error", outcome.error_kind, outcome.error)
    r = outcome.result
    return ("ok", r.value, r.cycles, r.observable(), dict(r.globals))


def _assert_three_way(design, arg_sets, max_cycles=2_000_000):
    """Every lane of a batch matches both scalar backends bit for bit."""
    lanes = design.run_batch(arg_sets, max_cycles=max_cycles,
                             sim_backend="batched")
    assert len(lanes) == len(arg_sets)
    for args, lane in zip(arg_sets, lanes):
        assert tuple(lane.args) == tuple(args)
        batched = _lane_outcome(lane)
        compiled = _scalar_outcome(design, args, "compiled", max_cycles)
        interp = _scalar_outcome(design, args, "interp", max_cycles)
        assert batched == compiled == interp, (
            f"args {args}: batched={batched}, compiled={compiled}, "
            f"interp={interp}"
        )
    return lanes


def _spread(args, lane):
    """Deterministic per-lane argument perturbation in [-100, 100]."""
    if lane == 0:
        return tuple(args)
    return tuple(
        (value + 37 * lane * (position + 1) + 100) % 201 - 100
        for position, value in enumerate(args)
    )


# ---------------------------------------------------------------------------
# Handwritten divergence kernels
# ---------------------------------------------------------------------------

# Per-lane trip counts, parity-dependent branches, a division that traps
# on d == 0, a shift whose amount depends on the lane, lane-dependent
# array stores, an early negative-path return, and a final mod that traps
# on d == -1.  One batch over this kernel exercises every piece of the
# trap-and-replay machinery at once.
_DIVERGE = """
int tab[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int main(int n, int d) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) {
            acc = acc + tab[i & 7] / d;
        } else {
            acc = acc - (i << (d & 3));
        }
        tab[(i + d) & 7] = acc;
    }
    if (acc < 0) {
        return 0 - acc;
    }
    return acc % (d + 1);
}
"""

_DIVERGE_LANES = [
    (0, 1),     # zero trips: loop body never runs
    (1, 1), (2, 1), (7, 2), (8, 3),
    (5, 0),     # division by zero inside the loop
    (3, -1),    # negative shift amount / trapping final mod
    (6, -5),
    (4, 7), (12, 2),
]

_SPIN = """
int main(int n) {
    while (n != 0) {
        n = n + 0;
    }
    return 1;
}
"""

_DEADLOCK = """
chan<int> c;
int main() {
    return recv(c);
}
"""


@pytest.mark.parametrize("flow", ["c2verilog", "handelc"])
def test_divergence_kernel_three_way(flow):
    design = compile_flow(_DIVERGE, flow=flow)
    lanes = _assert_three_way(design, _DIVERGE_LANES)
    kinds = {_lane_outcome(l)[0] for l in lanes}
    assert kinds == {"ok", "error"}  # the batch really mixed both


def test_trap_lane_does_not_poison_neighbours():
    design = compile_flow(_DIVERGE, flow="c2verilog")
    clean = design.run_batch([(7, 2), (8, 3)], sim_backend="batched")
    mixed = design.run_batch([(7, 2), (5, 0), (8, 3)],
                             sim_backend="batched")
    assert _lane_outcome(mixed[0]) == _lane_outcome(clean[0])
    assert _lane_outcome(mixed[2]) == _lane_outcome(clean[1])
    assert not mixed[1].ok and "divi" in mixed[1].error.lower()


def test_budget_lane_matches_scalar_error():
    design = compile_flow(_SPIN, flow="c2verilog")
    lanes = _assert_three_way(design, [(0,), (1,), (0,)], max_cycles=500)
    assert lanes[0].ok and lanes[2].ok
    assert not lanes[1].ok
    assert lanes[1].error == "cycle budget of 500 exhausted"
    assert lanes[1].error_kind == "SimulationError"


def test_deadlock_lanes_match_scalar_error():
    design = compile_flow(_DEADLOCK, flow="specc")
    lanes = _assert_three_way(design, [(), ()])
    assert all(not lane.ok for lane in lanes)
    assert "rendezvous deadlock" in lanes[0].error
    assert lanes[0].error_kind == "SimulationError"


def test_arity_error_lane_matches_scalar_message():
    system = compile_flow(_SPIN, flow="c2verilog").system
    batch = simulate_batched(system, [(0,), (1, 2)], max_cycles=500)
    good, bad = batch.lanes
    assert good.ok and good.result.value == 1
    assert not bad.ok
    with pytest.raises(SimulationError) as failure:
        simulate(system, args=(1, 2), max_cycles=500)
    assert bad.error == str(failure.value)
    assert isinstance(bad.error_class()(""), SimulationError)
    with pytest.raises(SimulationError):
        bad.raise_error()


# ---------------------------------------------------------------------------
# Property-based: the fuzz grammar, all three backends
# ---------------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=5000),
       flow=st.sampled_from(_FLOWS))
@settings(**_SETTINGS)
def test_grammar_three_way_equivalence(seed, flow):
    """Any generated program, any flow: every batch lane is bit-identical
    to the scalar backends on value, cycles, observable, and globals."""
    program = generate_program(seed, feature_mask(flow))
    try:
        design = compile_flow(program.source, flow=flow)
    except FlowError:
        return  # a historical restriction rejected it; nothing to batch
    arg_sets = [_spread(program.args, lane) for lane in range(4)]
    _assert_three_way(design, arg_sets, max_cycles=200_000)


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(**_SETTINGS)
def test_grammar_vector_and_lanes_engines_agree(seed):
    """Forcing the two batch engines on the same generated program yields
    identical per-lane results and errors."""
    program = generate_program(seed, feature_mask("c2verilog"))
    try:
        system = compile_flow(program.source, flow="c2verilog").system
    except FlowError:
        return
    arg_sets = [_spread(program.args, lane) for lane in range(3)]
    lanes_run = simulate_batched(system, arg_sets, max_cycles=200_000,
                                 engine="lanes")
    engines = [lanes_run]
    if HAVE_NUMPY:
        engines.append(simulate_batched(system, arg_sets,
                                        max_cycles=200_000, engine="vector"))
    for batch in engines:
        for reference, lane in zip(lanes_run.lanes, batch.lanes):
            assert (lane.error, lane.error_kind) == (
                reference.error, reference.error_kind)
            if lane.ok:
                assert lane.result.value == reference.result.value
                assert lane.result.cycles == reference.result.cycles
                assert lane.result.globals == reference.result.globals


def test_unknown_engine_rejected():
    system = compile_flow(_SPIN, flow="c2verilog").system
    with pytest.raises(ValueError, match="unknown batch engine"):
        simulate_batched(system, [(0,)], engine="jit")


# ---------------------------------------------------------------------------
# Profiler: per-lane and aggregate accounting
# ---------------------------------------------------------------------------


def test_batch_profile_reconciles_with_scalar_histograms():
    design = compile_flow(_DIVERGE, flow="c2verilog")
    arg_sets = [(2, 1), (7, 2), (0, 1), (5, 0)]
    profile = SimProfile()
    design.run_batch(arg_sets, sim_backend="batched", sim_profile=profile)

    assert profile.backend == "batched"
    assert profile.lanes == len(arg_sets)
    assert len(profile.lane_cycles) == len(arg_sets)
    assert profile.cycles == sum(profile.lane_cycles)

    summed = {}
    for args in arg_sets:
        scalar = SimProfile()
        try:
            design.run(args=args, sim_backend="interp", sim_profile=scalar)
        except InterpError:
            continue  # error lanes contribute no retired scalar cycles
        for name, hist in scalar.state_visits.items():
            bucket = summed.setdefault(name, {})
            for label, count in hist.items():
                bucket[label] = bucket.get(label, 0) + count
    # OK lanes' per-lane cycle counts equal their scalar runs exactly.
    for args, lane_cycles in zip(arg_sets, profile.lane_cycles):
        outcome = _scalar_outcome(design, args, "interp")
        if outcome[0] == "ok":
            assert lane_cycles == outcome[2]
        else:
            assert lane_cycles == 0
    # And every retired visit is accounted for at least up to the scalar
    # totals (trapped lanes may be profiled through their trap cycle).
    for name, hist in summed.items():
        for label, count in hist.items():
            assert profile.state_visits[name][label] >= count


def test_batch_profile_render_mentions_lanes():
    design = compile_flow(_DIVERGE, flow="c2verilog")
    profile = SimProfile()
    design.run_batch([(2, 1), (7, 2)], sim_backend="batched",
                     sim_profile=profile)
    text = profile.render()
    assert "lanes:" in text and "2" in text
    assert "cycles/lane" in text


def test_all_ok_batch_profile_visits_equal_scalar_sum():
    """With no trapping lanes the histogram reconciliation is exact."""
    design = compile_flow(_DIVERGE, flow="c2verilog")
    arg_sets = [(2, 1), (7, 2), (4, 7)]
    profile = SimProfile()
    design.run_batch(arg_sets, sim_backend="batched", sim_profile=profile)
    summed = {}
    for args in arg_sets:
        scalar = SimProfile()
        design.run(args=args, sim_backend="interp", sim_profile=scalar)
        for name, hist in scalar.state_visits.items():
            bucket = summed.setdefault(name, {})
            for label, count in hist.items():
                bucket[label] = bucket.get(label, 0) + count
    assert {n: dict(h) for n, h in profile.state_visits.items()} == summed


def test_scalar_run_profile_reports_one_lane():
    profile = SimProfile()
    run_flow(_SPIN, flow="c2verilog", args=(0,), sim_backend="compiled",
             sim_profile=profile)
    assert profile.lanes == 1
    assert "lanes:" not in profile.render()


# ---------------------------------------------------------------------------
# Trace spans: --trace-summary stays comparable with scalar runs
# ---------------------------------------------------------------------------


def test_batch_trace_has_sim_spans_with_lane_counter():
    result = synthesize(_DIVERGE, SynthesisOptions(
        flow="c2verilog", sim_backend="batched", trace=True))
    outcomes = result.run_batch([(2, 1), (7, 2), (5, 0)])
    assert len(outcomes) == 3
    execute = result.trace.find("sim.execute")
    assert execute is not None
    assert execute.args["lanes"] == 3
    assert execute.args["cycles"] == sum(
        _lane_outcome(o)[2] for o in outcomes if o.ok)
    assert result.trace.find("sim.compile") is not None
    assert result.trace.find("sim") is not None


def test_scalar_and_batch_traces_share_span_names():
    scalar = synthesize(_DIVERGE, SynthesisOptions(
        flow="c2verilog", sim_backend="compiled", trace=True))
    scalar.run(args=(2, 1))
    batch = synthesize(_DIVERGE, SynthesisOptions(
        flow="c2verilog", sim_backend="batched", trace=True))
    batch.run_batch([(2, 1)])
    for name in ("sim", "sim.compile", "sim.execute"):
        assert scalar.trace.find(name) is not None, name
        assert batch.trace.find(name) is not None, name


# ---------------------------------------------------------------------------
# The scalar surface of the batched backend
# ---------------------------------------------------------------------------


def test_scalar_batched_backend_matches_compiled():
    compiled = run_flow(_DIVERGE, flow="c2verilog", args=(7, 2),
                        sim_backend="compiled")
    batched = run_flow(_DIVERGE, flow="c2verilog", args=(7, 2),
                       sim_backend="batched")
    assert batched.observable() == compiled.observable()
    assert batched.cycles == compiled.cycles


def test_scalar_batched_backend_reraises_lane_error():
    design = compile_flow(_DIVERGE, flow="c2verilog")
    with pytest.raises(InterpError) as batched:
        design.run(args=(5, 0), sim_backend="batched")
    with pytest.raises(InterpError) as compiled:
        design.run(args=(5, 0), sim_backend="compiled")
    assert str(batched.value) == str(compiled.value)
    assert type(batched.value) is type(compiled.value)


# ---------------------------------------------------------------------------
# Cache identity and runner coalescing
# ---------------------------------------------------------------------------

# The pinned identity of one batched cell.  If this changes, the cache
# key changes with it and every cached batched artifact is invalidated —
# bump this golden only alongside a deliberate schema change.  (opt_level
# moved 2 -> 1 with SCHEMA_VERSION 3: the default is now the classic
# pipeline and level 2 selects the liveness-driven fixpoint mid-end.)
_PINNED_IDENTITY = {
    "flow": "c2verilog",
    "function": "main",
    "sim_backend": "batched",
    "opt_level": 1,
    "tech": "",
    "check": False,
    "options": [],
    "args": [7, 2],
}


def test_batched_identity_schema_pin():
    task = CellTask(workload="w", source=_DIVERGE, flow="c2verilog",
                    args=(7, 2), sim_backend="batched")
    assert task.identity() == _PINNED_IDENTITY
    # The pin is JSON-stable (the cache serializes it verbatim).
    assert json.loads(json.dumps(task.identity())) == _PINNED_IDENTITY


def test_cache_keys_distinguish_all_three_backends():
    keys = {
        cell_key(CellTask(workload="w", source=_DIVERGE, flow="c2verilog",
                          args=(7, 2), sim_backend=backend))
        for backend in ("interp", "compiled", "batched")
    }
    assert len(keys) == 3


def _batched_tasks(arg_sets, source=_DIVERGE, flow="c2verilog"):
    return [
        CellTask(workload=f"lane{i}", source=source, flow=flow,
                 args=tuple(args), sim_backend="batched")
        for i, args in enumerate(arg_sets)
    ]


def _neutral(result):
    identity = result.identity()
    identity.pop("sim_backend")
    identity.pop("workload")
    return identity


def test_coalesced_batch_matches_per_cell_interp():
    """Cells sharing (source, flow, options) run as one batch, yet their
    results are indistinguishable from scalar per-cell execution.  ERROR
    cells are never cached, so their free-form diagnostics only need to
    agree on the error message, not on traceback formatting."""
    engine = MatrixEngine(jobs=1, cache=None, timeout_s=60.0)
    arg_sets = [(2, 1), (7, 2), (5, 0), (0, 1)]
    batched = engine.run_cells(_batched_tasks(arg_sets))
    interp = engine.run_cells([
        CellTask(workload=f"lane{i}", source=_DIVERGE, flow="c2verilog",
                 args=tuple(args), sim_backend="interp")
        for i, args in enumerate(arg_sets)
    ])
    for a, b in zip(batched, interp):
        left, right = _neutral(a), _neutral(b)
        if a.verdict == "error":
            assert b.verdict == "error"
            assert "division by zero" in " ".join(a.diagnostics)
            assert "division by zero" in " ".join(b.diagnostics)
            left.pop("diagnostics")
            right.pop("diagnostics")
        assert left == right, a.args
    assert {r.sim_backend for r in batched} == {"batched"}


def test_batch_of_one_and_parallel_pool_agree():
    engine = MatrixEngine(jobs=1, cache=None, timeout_s=60.0)
    pool = MatrixEngine(jobs=2, cache=None, timeout_s=60.0)
    tasks = _batched_tasks([(7, 2)]) + _batched_tasks([(3, -1)], flow="handelc")
    serial = engine.run_cells(tasks)
    parallel = pool.run_cells(tasks)
    assert [r.identity() for r in serial] == [r.identity() for r in parallel]


def test_batch_cache_replay_is_byte_identical(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    arg_sets = [(2, 1), (7, 2), (4, 7)]
    cold_engine = MatrixEngine(jobs=1, cache=cache, timeout_s=60.0)
    cold = cold_engine.run_cells(_batched_tasks(arg_sets))
    warm = MatrixEngine(jobs=1, cache=cache, timeout_s=60.0).run_cells(
        _batched_tasks(arg_sets))
    assert [r.cached for r in cold] == [False] * len(arg_sets)
    assert [r.cached for r in warm] == [True] * len(arg_sets)
    assert [r.identity() for r in cold] == [r.identity() for r in warm]
    # Byte-level: the serialized identity dicts round-trip identically.
    assert (json.dumps([r.identity() for r in cold], sort_keys=True)
            == json.dumps([r.identity() for r in warm], sort_keys=True))


def test_error_lanes_are_not_cached(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    engine = MatrixEngine(jobs=1, cache=cache, timeout_s=60.0)
    tasks = _batched_tasks([(7, 2), (5, 0)])
    first = engine.run_cells(tasks)
    second = MatrixEngine(jobs=1, cache=cache, timeout_s=60.0).run_cells(tasks)
    assert first[1].verdict == "error"
    assert second[0].cached and not second[1].cached
    assert first[1].identity() == second[1].identity()


# ---------------------------------------------------------------------------
# NumPy-optional degradation
# ---------------------------------------------------------------------------

_NO_NUMPY_SNIPPET = r"""
import repro.sim.batched as batched
assert not batched.HAVE_NUMPY, "REPRO_NO_NUMPY must disable the vector engine"
from repro.flows import compile_flow
from repro.sim import simulate_batched
design = compile_flow(
    "int main(int n, int d) { if (d == 0) { return n / d; }"
    " return n * d + 1; }",
    flow="c2verilog")
batch = simulate_batched(design.system, [(6, 7), (5, 0)])
lane_ok, lane_err = batch.lanes
assert lane_ok.ok and lane_ok.result.value == 43
assert not lane_err.ok and lane_err.error_kind == "InterpError"
try:
    simulate_batched(design.system, [(1, 1)], engine="vector")
except ValueError as err:
    assert "numpy" in str(err).lower()
else:
    raise AssertionError("vector engine must refuse without numpy")
print("OK")
"""


def test_no_numpy_fallback_subprocess():
    """With REPRO_NO_NUMPY set, batches run on the pure-python lanes
    engine with the same API and the vector engine refuses loudly."""
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _NO_NUMPY_SNIPPET],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
