"""CDFG optimization-pass tests."""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.ir import build_function, validate
from repro.ir.executor import execute
from repro.ir.ops import Branch, Const, Jump, OpKind, Ret
from repro.ir.passes import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    inline_program,
    optimize,
    simplify_cfg,
)
from repro.interp import run_program
from repro.lang import parse


def build(source, function="main"):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    return build_function(inlined.function(function), info), program, info


def check_equivalent(source, args=(), passes=None):
    cdfg, program, info = build(source)
    golden = run_program(program, info, "main", args)
    if passes is None:
        optimize(cdfg)
    else:
        for p in passes:
            p(cdfg)
    validate(cdfg)
    assert execute(cdfg, args=args).value == golden.value
    return cdfg


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def test_fold_constant_expression_tree():
    cdfg, _, _ = build("int main() { return (2 + 3) * 4 - 1; }")
    folded = fold_constants(cdfg)
    assert folded >= 3
    (block,) = cdfg.reachable_blocks()
    assert isinstance(block.terminator, Ret)
    assert isinstance(block.terminator.value, Const)
    assert block.terminator.value.value == 19


def test_fold_respects_machine_wrapping():
    cdfg = check_equivalent(
        "int main() { uint8 v = 200; v = v + 100; return v; }",
        passes=[fold_constants],
    )
    assert execute(cdfg).value == 44


def test_fold_algebraic_identities():
    cdfg, _, _ = build(
        "int main(int x) { return (x + 0) * 1 + (x & 0) + (x << 0); }"
    )
    fold_constants(cdfg)
    binaries = [op for op in cdfg.iter_ops() if op.kind is OpKind.BINARY]
    # Only the structural adds remain; identity ops vanished.
    assert all(op.op in ("+",) for op in binaries)
    assert execute(cdfg, args=(7,)).value == 14


def test_fold_multiply_by_zero():
    cdfg, _, _ = build("int main(int x) { return x * 0 + 5; }")
    fold_constants(cdfg)
    (block,) = cdfg.reachable_blocks()
    assert isinstance(block.terminator.value, Const)
    assert block.terminator.value.value == 5


def test_fold_never_folds_trapping_division():
    cdfg, _, _ = build("int main() { return 1 / 0; }")
    fold_constants(cdfg)  # must not raise, must keep the op
    assert any(
        op.kind is OpKind.BINARY and op.op == "/" for op in cdfg.iter_ops()
    )


def test_fold_constant_branch_to_jump():
    cdfg, _, _ = build("int main() { if (1 < 2) { return 7; } return 8; }")
    fold_constants(cdfg)
    assert not any(
        isinstance(b.terminator, Branch) for b in cdfg.reachable_blocks()
    )


def test_fold_constant_select():
    cdfg, _, _ = build("int main(int x) { return true ? x : x + 5; }")
    folded = fold_constants(cdfg)
    assert folded >= 1
    assert not any(op.kind is OpKind.SELECT for op in cdfg.iter_ops())


# ---------------------------------------------------------------------------
# CSE
# ---------------------------------------------------------------------------


def test_cse_merges_identical_expressions():
    cdfg, _, _ = build(
        "int main(int a, int b) { return (a * b + 1) + (a * b + 1); }"
    )
    removed = eliminate_common_subexpressions(cdfg)
    assert removed == 2  # the duplicated * and +1
    assert execute(cdfg, args=(3, 4)).value == 26


def test_cse_merges_repeated_loads_without_store():
    cdfg, _, _ = build(
        "int g[4]; int main(int i) { return g[i] + g[i]; }"
    )
    removed = eliminate_common_subexpressions(cdfg)
    assert removed == 1
    loads = [op for op in cdfg.iter_ops() if op.kind is OpKind.LOAD]
    assert len(loads) == 1


def test_cse_respects_intervening_store():
    cdfg = check_equivalent(
        """
        int g[4];
        int main(int i) {
            int before = g[1];
            g[1] = before + 5;
            int after = g[1];
            return before * 100 + after;
        }
        """,
        args=(0,),
        passes=[eliminate_common_subexpressions],
    )
    loads = [op for op in cdfg.iter_ops() if op.kind is OpKind.LOAD]
    assert len(loads) == 2  # must NOT merge across the store


def test_cse_distinguishes_types():
    cdfg, _, _ = build(
        "int main(int a) { uint8 small = a + 1; int wide = a + 1; return small + wide; }"
    )
    eliminate_common_subexpressions(cdfg)
    assert execute(cdfg, args=(254,)).value == 255 + 255


# ---------------------------------------------------------------------------
# DCE
# ---------------------------------------------------------------------------


def test_dce_removes_unused_computation():
    cdfg, _, _ = build(
        "int main(int a) { int unused = a * 37 + 5; return a; }"
    )
    removed = eliminate_dead_code(cdfg)
    assert removed >= 2
    assert cdfg.op_count() == 0


def test_dce_keeps_side_effects():
    cdfg, _, _ = build(
        "int g[2]; int main(int a) { g[0] = a * 3; return a; }"
    )
    eliminate_dead_code(cdfg)
    assert any(op.kind is OpKind.STORE for op in cdfg.iter_ops())


def test_dce_keeps_global_latches():
    cdfg, _, _ = build("int g; int main(int a) { g = a + 1; return a; }")
    eliminate_dead_code(cdfg)
    assert any("g" == var.name for b in cdfg.blocks for var in b.var_writes)


def test_dce_removes_dead_register_chain():
    # b depends on a; neither is returned, so both latches must die.
    cdfg, _, _ = build(
        "int main(int x) { int a = x * 2; int b = a + 3; return x; }"
    )
    eliminate_dead_code(cdfg)
    assert cdfg.op_count() == 0
    assert all(not b.var_writes for b in cdfg.blocks)


# ---------------------------------------------------------------------------
# CFG simplification
# ---------------------------------------------------------------------------


def test_simplify_merges_straight_line_blocks():
    cdfg = check_equivalent(
        """
        int main(int a) {
            int x = 0;
            if (a > 0) { x = 1; } else { x = 2; }
            int y = x + 1;
            int z = y * 2;
            return z;
        }
        """,
        args=(5,),
    )
    # The straight-line tail (y, z, return) collapses into the join block,
    # leaving just the diamond: entry, then, else, join.
    assert len(cdfg.reachable_blocks()) <= 4


def test_simplify_threads_empty_blocks():
    cdfg, program, info = build(
        "int main(int a) { if (a > 0) { } else { } return a; }"
    )
    optimize(cdfg)
    assert len(cdfg.reachable_blocks()) == 1


def test_merge_rewrites_varreads_to_latched_values():
    # After merging `x = a + 1` with `return x * 2`, the multiply must see
    # the new x, not the stale register.
    cdfg = check_equivalent(
        "int main(int a) { int x = a + 1; wait(); return x; }",
        args=(4,),
    )
    assert execute(cdfg, args=(4,)).value == 5


# ---------------------------------------------------------------------------
# The full pipeline
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source,args,expected",
    [
        ("int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }", (), 45),
        ("int main(int a) { return a != 0 && 100 / a > 3 ? 1 : 0; }", (9,), 1),
        ("int g[8]; int main() { for (int i = 0; i < 8; i++) { g[i] = i; } int s = 0; for (int i = 0; i < 8; i++) { s += g[i]; } return s; }", (), 28),
    ],
)
def test_optimize_preserves_semantics(source, args, expected):
    cdfg = check_equivalent(source, args=args)
    assert execute(cdfg, args=args).value == expected


def test_optimize_reaches_fixed_point_and_reports():
    cdfg, _, _ = build(
        "int main() { int a = 2 * 3; int b = a + a; if (b > 100) { return 0; } return b; }"
    )
    report = optimize(cdfg)
    assert report.total() > 0
    assert report.iterations >= 2  # last iteration confirms quiescence
    second = optimize(cdfg)
    assert second.total() == 0
