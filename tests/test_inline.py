"""Function-inliner tests."""

import pytest

from repro.interp import run_program
from repro.lang import parse
from repro.lang import ast_nodes as ast
from repro.ir.passes import inline_program
from repro.ir.passes.inline import InlineBudgetExceeded


def inline_and_compare(source, args=(), **kwargs):
    """Inlined program must behave exactly like the original."""
    program, info = parse(source)
    golden = run_program(program, info, "main", args)
    inlined, stats = inline_program(program, info, **kwargs)
    result = run_program(inlined, info, "main", args)
    assert result.observable() == golden.observable()
    return inlined, stats


def has_calls(fn):
    return any(
        isinstance(e, ast.Call)
        for s in ast.walk_stmts(fn.body)
        for root in ast.stmt_expressions(s)
        for e in ast.walk_expr(root)
    )


def test_simple_call_inlined():
    inlined, stats = inline_and_compare(
        "int sq(int x) { return x * x; } int main(int v) { return sq(v); }", (6,)
    )
    assert stats.calls_inlined == 1
    assert not has_calls(inlined.function("main"))


def test_nested_calls_inlined():
    inlined, stats = inline_and_compare(
        """
        int add(int a, int b) { return a + b; }
        int quad(int x) { return add(x, x) + add(x, x); }
        int main(int v) { return quad(add(v, 1)); }
        """,
        (5,),
    )
    # add(v,1), quad, and the two add calls inside quad's body.
    assert stats.calls_inlined == 4
    assert not has_calls(inlined.function("main"))


def test_call_in_loop_condition():
    inline_and_compare(
        """
        int limit(int n) { return n * 2; }
        int main(int n) {
            int i = 0;
            int s = 0;
            while (i < limit(n)) { s += i; i++; }
            return s;
        }
        """,
        (4,),
    )


def test_call_in_for_condition_and_step():
    inline_and_compare(
        """
        int bump(int i) { return i + 2; }
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i = bump(i)) { s += i; }
            return s;
        }
        """,
        (10,),
    )


def test_early_return_paths_preserved():
    for arg in (3, 17, 40):
        inline_and_compare(
            """
            int classify(int n) {
                if (n < 10) { return 1; }
                if (n < 30) { return 2; }
                return 3;
            }
            int main(int v) { return classify(v) * 100 + classify(v + 15); }
            """,
            (arg,),
        )


def test_return_inside_loop_preserved():
    for arg in (5, 26, 200):
        inline_and_compare(
            """
            int sqrt_floor(int x) {
                for (int i = 0; i < 100; i++) {
                    if (i * i > x) { return i - 1; }
                }
                return 100;
            }
            int main(int v) { return sqrt_floor(v); }
            """,
            (arg,),
        )


def test_lazy_and_with_call_on_rhs():
    # The call must NOT run when the left side is false.
    inline_and_compare(
        """
        int check(int d) { return 100 / d; }
        int main(int a) {
            int hit = 0;
            if (a != 0 && check(a) > 10) { hit = 1; }
            return hit;
        }
        """,
        (0,),
    )


def test_lazy_ternary_with_calls_in_arms():
    inline_and_compare(
        """
        int f(int d) { return 10 / d; }
        int main(int a) { return a != 0 ? f(a) : 0 - 1; }
        """,
        (0,),
    )


def test_array_parameters_alias_caller_storage():
    inlined, _ = inline_and_compare(
        """
        void clear(int buf[4]) { for (int i = 0; i < 4; i++) { buf[i] = 0; } }
        int main() {
            int a[4] = {1, 2, 3, 4};
            clear(a);
            return a[0] + a[3];
        }
        """
    )


def test_pointer_arguments_substituted():
    inline_and_compare(
        """
        void inc(int *p) { *p = *p + 1; }
        int main() { int x = 5; inc(&x); inc(&x); return x; }
        """
    )


def test_scalar_arguments_evaluated_once():
    # g() has a side effect; passing g() to a two-use parameter must not
    # run it twice.
    inline_and_compare(
        """
        int counter;
        int g() { counter = counter + 1; return counter; }
        int twice(int v) { return v + v; }
        int main() { int r = twice(g()); return r * 10 + counter; }
        """
    )


def test_linear_recursion_unrolls_within_depth():
    inlined, stats = inline_and_compare(
        "int f(int n) { if (n <= 0) { return 0; } return n + f(n - 1); }"
        " int main() { return f(8); }",
        max_depth=16,
    )
    assert stats.truncated_calls >= 1  # the depth-16 fallback remains
    assert stats.max_depth_used == 16


def test_exponential_recursion_hits_call_budget():
    program, info = parse(
        "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
        " int main() { return fib(30); }"
    )
    with pytest.raises(InlineBudgetExceeded):
        inline_program(program, info, max_depth=40, max_calls=500)


def test_processes_inlined_too():
    inlined, _ = inline_and_compare(
        """
        chan<int> c;
        int twice(int v) { return v * 2; }
        process void p() { send(c, twice(21)); }
        int main() { return recv(c); }
        """
    )
    assert not has_calls(inlined.function("p"))


def test_call_boundary_inserts_wait_markers():
    program, info = parse(
        "int f(int x) { return x + 1; } int main() { return f(f(1)); }"
    )
    inlined, _ = inline_program(program, info, call_boundary=True)
    waits = [
        s for s in ast.walk_stmts(inlined.function("main").body)
        if isinstance(s, ast.Wait)
    ]
    assert len(waits) == 2


def test_original_program_is_untouched():
    program, info = parse(
        "int f(int x) { return x * 3; } int main() { return f(2); }"
    )
    inline_program(program, info)
    assert has_calls(program.function("main"))
