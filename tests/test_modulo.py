"""Modulo-scheduling (loop pipelining) tests — the E3 substrate."""

import pytest

from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.scheduling import (
    ResourceSet,
    find_pipelineable_loops,
    loop_carried_dependences,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)


def loops_of(source):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return find_pipelineable_loops(cdfg)


REGULAR_LOOP = """
int a[64];
int b[64];
int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + a[i & 63] * b[i & 63];
    }
    return acc;
}
"""

GCD_LOOP = "int main(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }"

HISTOGRAM_LOOP = """
int bins[16];
int data[64];
int main(int n) {
    for (int i = 0; i < n; i++) {
        bins[data[i & 63] & 15] = bins[data[i & 63] & 15] + 1;
    }
    return bins[0];
}
"""


def test_two_block_loops_are_fused_and_found():
    loops = loops_of(REGULAR_LOOP)
    assert len(loops) == 1
    assert loops[0].ops  # fused head+body has real work


def test_regular_loop_has_trivial_recurrence():
    (loop,) = loops_of(REGULAR_LOOP)
    # The accumulator is a single add: RecMII is the add's latency (1).
    assert recurrence_mii(loop) == 1


def test_gcd_recurrence_includes_division_latency():
    (loop,) = loops_of(GCD_LOOP)
    assert recurrence_mii(loop) >= 4  # the divider sits on the cycle


def test_histogram_memory_recurrence():
    (loop,) = loops_of(HISTOGRAM_LOOP)
    carried = loop_carried_dependences(loop)
    memory_carried = [d for d in carried if d.src.is_memory() or d.dst.is_memory()]
    assert memory_carried
    assert recurrence_mii(loop) >= 3  # load -> add -> store around the edge


def test_resource_mii_scales_with_limits():
    (loop,) = loops_of(REGULAR_LOOP)
    tight = resource_mii(loop, ResourceSet(alu=1, multiplier=1))
    loose = resource_mii(loop, ResourceSet(alu=8, multiplier=4))
    assert tight >= loose
    assert loose >= 1


def test_regular_loop_pipelines_well_with_resources():
    (loop,) = loops_of(REGULAR_LOOP)
    result = modulo_schedule(loop, ResourceSet(alu=4, multiplier=2))
    assert result.achieved_ii is not None
    assert result.achieved_ii <= 2
    assert result.speedup() > 1.5


def test_gcd_does_not_pipeline():
    (loop,) = loops_of(GCD_LOOP)
    result = modulo_schedule(loop, ResourceSet.typical())
    assert result.achieved_ii is None or result.achieved_ii >= result.sequential_steps
    assert result.speedup() <= 1.05


def test_achieved_ii_at_least_mii():
    for source in (REGULAR_LOOP, HISTOGRAM_LOOP):
        (loop,) = loops_of(source)
        result = modulo_schedule(loop, ResourceSet.typical())
        if result.achieved_ii is not None:
            assert result.achieved_ii >= result.mii


def test_modulo_placement_respects_mrt():
    (loop,) = loops_of(REGULAR_LOOP)
    resources = ResourceSet(alu=2, multiplier=1)
    result = modulo_schedule(loop, resources)
    assert result.achieved_ii is not None
    from repro.scheduling.resources import FREE, classify

    slots = {}
    by_id = {op.id: op for op in loop.ops}
    for op_id, step in result.op_step.items():
        resource = classify(by_id[op_id])
        if resource == FREE:
            continue
        key = (resource, step % result.achieved_ii)
        slots[key] = slots.get(key, 0) + 1
    for (resource, _), used in slots.items():
        limit = resources.limit(resource)
        if limit is not None:
            assert used <= limit


def test_speedup_accounts_for_prologue():
    (loop,) = loops_of(REGULAR_LOOP)
    result = modulo_schedule(loop, ResourceSet(alu=4, multiplier=2))
    few = result.speedup(iterations=2)
    many = result.speedup(iterations=10_000)
    assert many >= few  # pipeline fill cost amortizes


def test_self_loop_block_found_directly():
    # do-while bodies fuse into single self-looping blocks after optimize.
    loops = loops_of(
        "int main(int n) { int s = 0; int i = 0; do { s += i; i++; } while (i < n); return s; }"
    )
    assert len(loops) == 1
