"""The serving tier: validation, dedup, rate limits, backpressure, drain.

The end-to-end tests boot a real :class:`SynthesisServer` on an ephemeral
port inside ``asyncio.run`` and talk to it over actual sockets with the
load generator's :class:`HttpClient` — the same transport production
clients use.  Workers are swapped for module-level stand-ins where the
test needs to control compile latency (the coalescing and backpressure
proofs); everything else exercises the runner's real cell worker.
"""

import asyncio
import time

import pytest

from repro.api import SynthesisOptions
from repro.runner import OK, CellResult
from repro.serve import (
    HttpClient,
    LatencyHistogram,
    RateLimiter,
    ServeConfig,
    ServeLimits,
    SynthesisServer,
    ValidationError,
    parse_analysis,
    parse_synthesize,
    zipfian_schedule,
)

LIMITS = ServeLimits(max_source_bytes=4096)

SRC = (
    "int main(int n) { int s = 0;"
    " for (int i = 0; i < n; i++) { s += i * i; } return s; }"
)


# --------------------------------------------------------------- protocol


def test_parse_synthesize_full_request():
    request = parse_synthesize(
        {
            "source": SRC,
            "flow": "handelc",
            "function": "main",
            "args": [5],
            "opt_level": 2,
            "sim_backend": "compiled",
            "check": True,
            "options": {"unroll": 2},
        },
        LIMITS,
    )
    assert request.options == SynthesisOptions(
        flow="handelc", function="main", sim_backend="compiled",
        opt_level=2, check=True, flow_options=(("unroll", 2),),
    )
    assert request.args == (5,)
    assert request.source == SRC


def test_parse_synthesize_defaults():
    request = parse_synthesize({"source": SRC}, LIMITS)
    assert request.options.flow == "c2verilog"
    assert request.options.opt_level == SynthesisOptions().opt_level
    assert request.args == ()


@pytest.mark.parametrize(
    "body, code, status",
    [
        ([1, 2], "bad_request", 400),
        ({}, "bad_field", 400),
        ({"source": ""}, "bad_field", 400),
        ({"source": SRC, "flow": "vhdl"}, "unknown_flow", 400),
        ({"source": SRC, "opt_level": 9}, "bad_field", 400),
        ({"source": SRC, "opt_level": "two"}, "bad_field", 400),
        ({"source": SRC, "sim_backend": "turbo"}, "bad_field", 400),
        ({"source": SRC, "function": "1bad"}, "bad_field", 400),
        ({"source": SRC, "args": "5"}, "bad_field", 400),
        ({"source": SRC, "args": [1.5]}, "bad_field", 400),
        ({"source": SRC, "args": list(range(99))}, "bad_field", 400),
        ({"source": SRC, "check": "yes"}, "bad_field", 400),
        ({"source": SRC, "options": {"bad key": 1}}, "bad_field", 400),
        ({"source": SRC, "options": {"unroll": [1]}}, "bad_field", 400),
        ({"source": SRC, "options": {"flow": "cash"}}, "bad_field", 400),
        ({"source": "x" * 5000}, "source_too_large", 413),
    ],
)
def test_parse_synthesize_refusals(body, code, status):
    with pytest.raises(ValidationError) as caught:
        parse_synthesize(body, LIMITS)
    assert caught.value.code == code
    assert caught.value.status == status
    assert caught.value.body()["error"]["code"] == code


def test_parse_analysis_flows_and_check_knobs():
    request = parse_analysis(
        {"source": SRC, "flows": ["handelc", "cash"], "pipeline_ii": 2},
        LIMITS, kind="check",
    )
    assert request.flows == ("handelc", "cash")
    assert request.check_options == (("pipeline_ii", 2),)

    with pytest.raises(ValidationError) as caught:
        parse_analysis({"source": SRC, "flows": ["nope"]}, LIMITS, "lint")
    assert caught.value.code == "unknown_flow"
    with pytest.raises(ValidationError):
        parse_analysis({"source": SRC, "pipeline_ii": 0}, LIMITS, "check")


# ------------------------------------------------------------- rate limit


def test_token_bucket_burst_then_refill():
    clock = [100.0]
    limiter = RateLimiter(rate=1.0, burst=2.0, clock=lambda: clock[0])
    assert limiter.allow("a") == (True, 0.0)
    assert limiter.allow("a") == (True, 0.0)
    allowed, retry = limiter.allow("a")
    assert not allowed and 0 < retry <= 1.0
    clock[0] += 1.0  # one token refilled
    assert limiter.allow("a")[0]
    # Other clients have their own bucket.
    assert limiter.allow("b")[0]


def test_rate_limiter_disabled_and_lru_bound():
    limiter = RateLimiter(rate=0.0, burst=1.0)
    assert all(limiter.allow(f"c{i}")[0] for i in range(100))
    assert len(limiter) == 0  # disabled: no buckets kept

    bounded = RateLimiter(rate=5.0, burst=1.0, max_clients=4)
    for i in range(10):
        bounded.allow(f"c{i}")
    assert len(bounded) == 4


# ------------------------------------------------------------------ stats


def test_latency_histogram_percentiles():
    histogram = LatencyHistogram()
    for ms in range(1, 101):
        histogram.observe(ms / 1000.0)
    assert histogram.count == 100
    p50 = histogram.percentile(50)
    p99 = histogram.percentile(99)
    assert 0.040 <= p50 <= 0.070
    assert 0.085 <= p99 <= 0.105
    assert histogram.to_dict()["count"] == 100


def test_zipfian_schedule_is_deterministic_and_head_heavy():
    distinct = [{"id": i} for i in range(10)]
    first = zipfian_schedule(distinct, 500, s=1.2, seed=7)
    again = zipfian_schedule(distinct, 500, s=1.2, seed=7)
    assert first == again
    head = sum(1 for item in first if item["id"] == 0)
    tail = sum(1 for item in first if item["id"] == 9)
    assert head > 5 * max(tail, 1)


# ----------------------------------------------------- server end-to-end


def make_server_config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        port=0, jobs=2, queue_limit=8,
        cache_dir=str(tmp_path / "serve-cache"),
        drain_grace_s=5.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def serve_test(config, body, worker=None):
    """Boot a server, run ``body(server, client)``, always drain."""

    async def main():
        kwargs = {"worker": worker} if worker is not None else {}
        server = SynthesisServer(config, **kwargs)
        await server.start()
        client = HttpClient(server.host, server.port)
        try:
            return await body(server, client)
        finally:
            await client.close()
            await server.drain()

    return asyncio.run(main())


def slow_ok_worker(payload):
    """A worker with a controlled 250 ms compile, for concurrency tests."""
    time.sleep(0.25)
    return CellResult(
        workload=payload["workload"], flow=payload["flow"],
        args=tuple(payload.get("args", ())), verdict=OK, value=42,
        cache_key=str(payload.get("cache_key", "")),
    ).to_dict()


def test_validation_refused_before_dispatch(tmp_path):
    async def body(server, client):
        status, data = await client.request(
            "POST", "/synthesize", {"source": SRC, "flow": "vhdl"}
        )
        assert status == 400
        assert data["error"]["code"] == "unknown_flow"
        status, data = await client.request(
            "POST", "/synthesize", {"source": "y" * (1 << 17)}
        )
        assert status == 413
        assert data["error"]["code"] == "source_too_large"
        status, data = await client.request("POST", "/synthesize", None)
        assert status == 400
        # None of these ever reached the pool or the dedup tiers.
        assert server.stats.compiles == 0
        assert server.stats.invalid == 3
        assert server.pool.inflight == 0

    serve_test(make_server_config(tmp_path), body)


def test_bad_json_body_is_400(tmp_path):
    async def body(server, client):
        await client._connect()
        raw = b"{not json"
        client._writer.write(
            b"POST /synthesize HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(raw)}\r\n\r\n".encode() + raw
        )
        await client._writer.drain()
        line = await client._reader.readline()
        assert b"400" in line
        assert server.stats.compiles == 0

    serve_test(make_server_config(tmp_path), body)


def test_coalescing_n_identical_requests_one_compile(tmp_path):
    """The acceptance-criteria proof: N identical concurrent requests
    produce exactly one underlying compile, asserted via stats counters."""
    n = 8

    async def body(server, client):
        async def one():
            own = HttpClient(server.host, server.port)
            try:
                return await own.request(
                    "POST", "/synthesize",
                    {"source": SRC, "flow": "handelc", "args": [5]},
                )
            finally:
                await own.close()

        outcomes = await asyncio.gather(*(one() for _ in range(n)))
        assert [status for status, _ in outcomes] == [200] * n
        assert all(data["value"] == 42 for _, data in outcomes)
        # Exactly one underlying compile; everyone else joined it (or, if
        # scheduling delayed them past completion, hit the fresh artifact).
        assert server.stats.compiles == 1
        assert server.stats.coalesced >= 1
        assert server.stats.coalesced + server.stats.hits == n - 1
        tiers = {data["served_by"] for _, data in outcomes}
        assert "compile" in tiers and "coalesced" in tiers

    serve_test(make_server_config(tmp_path), body, worker=slow_ok_worker)


def test_warm_hit_skips_the_pool(tmp_path):
    async def body(server, client):
        request = {"source": SRC, "flow": "handelc", "args": [5]}
        status, first = await client.request("POST", "/synthesize", request)
        assert status == 200 and first["served_by"] == "compile"
        assert first["verdict"] == "ok" and first["value"] == 30
        status, second = await client.request("POST", "/synthesize", request)
        assert status == 200 and second["served_by"] == "cache"
        assert second["value"] == first["value"]
        assert second["key"] == first["key"]
        assert server.stats.compiles == 1 and server.stats.hits == 1
        # Whitespace-only edits normalize to the same artifact.
        spaced = dict(request, source=SRC.replace(" int s", "   int s"))
        status, third = await client.request("POST", "/synthesize", spaced)
        assert status == 200 and third["served_by"] == "cache"

    serve_test(make_server_config(tmp_path), body)


def test_rejection_is_a_domain_result_not_an_http_error(tmp_path):
    async def body(server, client):
        status, data = await client.request(
            "POST", "/synthesize",
            {"source": SRC, "flow": "cones", "args": [5]},
        )
        assert status == 200
        assert data["verdict"] == "rejected"
        assert data["rule"]
        return None

    serve_test(make_server_config(tmp_path), body)


def test_rate_limit_answers_429_with_retry_after(tmp_path):
    async def body(server, client):
        headers = {"X-Client-Id": "hammer"}
        request = {"source": SRC, "flow": "handelc"}
        outcomes = []
        for _ in range(4):
            status, data = await client.request(
                "POST", "/synthesize", request, headers
            )
            outcomes.append((status, data))
        statuses = [status for status, _ in outcomes]
        assert statuses[:2] == [200, 200]
        assert 429 in statuses[2:]
        refused = next(d for s, d in outcomes if s == 429)
        assert refused["error"]["code"] == "rate_limited"
        assert int(client.last_headers.get("retry-after", "0")) >= 1
        assert server.stats.rate_limited >= 1
        # A different client id is a different bucket.
        status, _ = await client.request(
            "POST", "/synthesize", request, {"X-Client-Id": "other"}
        )
        assert status == 200

    serve_test(
        make_server_config(tmp_path, rate=0.001, burst=2.0),
        body, worker=slow_ok_worker,
    )


def test_backpressure_sheds_with_503(tmp_path):
    async def body(server, client):
        async def one(index):
            own = HttpClient(server.host, server.port)
            try:
                # Distinct sources: no coalescing, so each wants a worker.
                return await own.request(
                    "POST", "/synthesize",
                    {"source": SRC.replace("i * i", f"i * {index}"),
                     "flow": "handelc", "args": [4]},
                )
            finally:
                await own.close()

        outcomes = await asyncio.gather(*(one(i + 2) for i in range(4)))
        statuses = sorted(status for status, _ in outcomes)
        assert 503 in statuses
        assert 200 in statuses
        shed = next(d for s, d in outcomes if s == 503)
        assert shed["error"]["code"] == "overloaded"
        assert server.stats.shed >= 1

    serve_test(
        make_server_config(tmp_path, jobs=1, queue_limit=0),
        body, worker=slow_ok_worker,
    )


def test_stats_healthz_and_routing(tmp_path):
    async def body(server, client):
        status, health = await client.request("GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, data = await client.request("GET", "/nope")
        assert status == 404 and data["error"]["code"] == "not_found"
        status, data = await client.request("GET", "/synthesize")
        assert status == 405
        status, data = await client.request(
            "POST", "/synthesize", {"source": SRC, "flow": "handelc"}
        )
        assert status == 200
        status, stats = await client.request("GET", "/stats")
        assert status == 200
        assert stats["dedup"]["compiles"] == 1
        assert stats["responses"]["200"] >= 2
        assert "synthesize" in stats["latency"]
        # Both the 405 probe and the real POST land in the histogram.
        assert stats["latency"]["synthesize"]["count"] >= 1

    serve_test(make_server_config(tmp_path), body)


def test_lint_and_check_endpoints_with_memo(tmp_path):
    async def body(server, client):
        request = {"source": SRC, "flows": ["handelc", "cones"]}
        status, first = await client.request("POST", "/lint", request)
        assert status == 200
        assert first["served_by"] == "fresh"
        assert first["verdicts"]["handelc"] in ("clean", "warn")
        assert first["verdicts"]["cones"] == "reject"
        status, second = await client.request("POST", "/lint", request)
        assert second["served_by"] == "memo"
        assert server.stats.analysis_runs == 1
        assert server.stats.analysis_memo_hits == 1

        status, checked = await client.request(
            "POST", "/check", {"source": SRC, "flows": ["handelc"],
                               "pipeline_ii": 1}
        )
        assert status == 200
        assert "verdicts" in checked
        assert server.stats.analysis_runs == 2

    serve_test(make_server_config(tmp_path), body)


def test_draining_server_refuses_new_work(tmp_path):
    async def body(server, client):
        server._draining = True
        status, data = await client.request(
            "POST", "/synthesize", {"source": SRC, "flow": "handelc"}
        )
        assert status == 503
        assert data["error"]["code"] == "draining"
        status, health = await client.request("GET", "/healthz")
        assert status == 200 and health["status"] == "draining"

    serve_test(make_server_config(tmp_path), body)


def test_drain_finishes_inflight_work(tmp_path):
    async def body(server, client):
        task = asyncio.ensure_future(client.request(
            "POST", "/synthesize", {"source": SRC, "flow": "handelc"}
        ))
        await asyncio.sleep(0.05)  # let the request reach the pool
        await server.drain()
        status, data = await task
        assert status == 200 and data["value"] == 42
        assert server.pool.queue_depth == 0
        assert len(server.inflight) == 0

    serve_test(make_server_config(tmp_path), body, worker=slow_ok_worker)


def test_check_flag_is_part_of_the_cache_key(tmp_path):
    async def body(server, client):
        plain = {"source": SRC, "flow": "handelc", "args": [5]}
        status, first = await client.request("POST", "/synthesize", plain)
        status, checked = await client.request(
            "POST", "/synthesize", dict(plain, check=True)
        )
        assert first["key"] != checked["key"]
        assert server.stats.compiles == 2  # distinct identities, no reuse

    serve_test(make_server_config(tmp_path), body)
