"""AST utility tests: cloning, substitution, return elimination."""

import pytest

from repro.interp import run_program
from repro.lang import parse
from repro.lang import ast_nodes as ast
from repro.lang.types import BOOL, INT
from repro.ir.astutils import (
    Cloner,
    contains_return,
    eliminate_returns,
    fresh_symbol,
    make_identifier,
    make_int_literal,
)


def parsed_main(source):
    program, info = parse(source)
    return program, info, program.function("main")


def test_fresh_symbols_are_unique():
    a = fresh_symbol("x", INT)
    b = fresh_symbol("x", INT)
    assert a is not b
    assert a.unique_name != b.unique_name


def test_clone_declarations_get_fresh_symbols():
    _, _, fn = parsed_main("int main() { int x = 1; x = x + 1; return x; }")
    clone = Cloner().stmt(fn.body)
    original_decl = next(
        s for s in ast.walk_stmts(fn.body) if isinstance(s, ast.VarDecl)
    )
    cloned_decl = next(
        s for s in ast.walk_stmts(clone) if isinstance(s, ast.VarDecl)
    )
    assert cloned_decl.symbol is not original_decl.symbol  # type: ignore[attr-defined]
    # Identifiers inside the clone reference the fresh symbol.
    cloned_reads = [
        e for s in ast.walk_stmts(clone)
        for root in ast.stmt_expressions(s)
        for e in ast.walk_expr(root)
        if isinstance(e, ast.Identifier)
    ]
    assert all(
        e.symbol is cloned_decl.symbol for e in cloned_reads  # type: ignore[attr-defined]
    )


def test_clone_shares_undeclared_symbols():
    _, _, fn = parsed_main("int g; int main() { g = 5; return g; }")
    clone = Cloner().stmt(fn.body)
    read = next(
        e for s in ast.walk_stmts(clone)
        for root in ast.stmt_expressions(s)
        for e in ast.walk_expr(root)
        if isinstance(e, ast.Identifier)
    )
    original = next(
        e for s in ast.walk_stmts(fn.body)
        for root in ast.stmt_expressions(s)
        for e in ast.walk_expr(root)
        if isinstance(e, ast.Identifier)
    )
    assert read.symbol is original.symbol  # type: ignore[attr-defined]


def test_substitution_replaces_identifiers_with_expressions():
    _, _, fn = parsed_main("int main(int a) { return a + a; }")
    param = fn.params[0].symbol  # type: ignore[attr-defined]
    replacement = make_int_literal(21, INT)
    clone = Cloner(substitutions={param: replacement}).stmt(fn.body)
    literals = [
        e.value for s in ast.walk_stmts(clone)
        for root in ast.stmt_expressions(s)
        for e in ast.walk_expr(root)
        if isinstance(e, ast.IntLiteral)
    ]
    assert literals == [21, 21]


def test_substituted_expressions_are_not_shared():
    _, _, fn = parsed_main("int main(int a) { return a + a; }")
    param = fn.params[0].symbol  # type: ignore[attr-defined]
    replacement = make_int_literal(3, INT)
    clone = Cloner(substitutions={param: replacement}).stmt(fn.body)
    nodes = [
        e for s in ast.walk_stmts(clone)
        for root in ast.stmt_expressions(s)
        for e in ast.walk_expr(root)
        if isinstance(e, ast.IntLiteral)
    ]
    assert nodes[0] is not nodes[1]


def test_contains_return():
    _, _, with_return = parsed_main("int main() { if (true) { return 1; } return 2; }")
    assert contains_return(with_return.body)
    program, _ = parse("void main2() { int x = 1; } int main() { return 0; }")
    assert not contains_return(program.function("main2").body)


def _run_returnified(source, args=()):
    """Returnify main's body, wrap it so the result var is returned, and
    check behavior is unchanged."""
    program, info = parse(source)
    fn = program.function("main")
    golden = run_program(program, info, "main", args)

    result_symbol = fresh_symbol("result", INT)
    done_symbol = fresh_symbol("done", BOOL)
    body = eliminate_returns(Cloner().stmt(fn.body), result_symbol, done_symbol)
    assert not contains_return(body)

    decls = []
    for symbol in (result_symbol, done_symbol):
        decl = ast.VarDecl(name=symbol.name, var_type=symbol.type)
        decl.symbol = symbol  # type: ignore[attr-defined]
        decls.append(decl)
    tail = ast.Return(value=make_identifier(result_symbol))
    new_fn = ast.FunctionDef(
        name="main", return_type=fn.return_type, params=fn.params,
        body=ast.Block(statements=decls + [body, tail]),
    )
    new_program = ast.Program(
        functions=[new_fn], globals=program.globals, channels=program.channels
    )
    rerun = run_program(new_program, info, "main", args)
    assert rerun.value == golden.value
    return body


def test_returnify_straight_line():
    _run_returnified("int main() { return 41 + 1; }")


def test_returnify_early_return_in_if():
    for arg in (1, 20):
        _run_returnified(
            "int main(int a) { if (a < 10) { return 1; } int x = a * 2; return x; }",
            (arg,),
        )


def test_returnify_return_inside_loop():
    for arg in (3, 100):
        _run_returnified(
            """
            int main(int a) {
                for (int i = 0; i < 10; i++) {
                    if (i * i >= a) { return i; }
                }
                return 0 - 1;
            }
            """,
            (arg,),
        )


def test_returnify_return_inside_do_while():
    _run_returnified(
        """
        int main(int a) {
            int i = 0;
            do {
                if (i == a) { return i * 100; }
                i++;
            } while (i < 5);
            return 7;
        }
        """,
        (3,),
    )


def test_returnify_guards_statements_after_return_site():
    # The statements after the early-returning if must be skipped once
    # done is set — the counter must show exactly one bump.
    _run_returnified(
        """
        int count;
        int main(int a) {
            count = count + 1;
            if (a > 0) { return 1; }
            count = count + 1;
            return 2;
        }
        """,
        (5,),
    )


def test_returnify_rejects_return_in_par():
    program, info = parse(
        "int main() { par { seq { return 1; } } return 0; }"
    )
    from repro.lang.errors import SemanticError

    fn = program.function("main")
    with pytest.raises(SemanticError):
        eliminate_returns(
            Cloner().stmt(fn.body), fresh_symbol("r", INT), fresh_symbol("d", BOOL)
        )
