"""Artifact-cache capacity tools and concurrent-write safety."""

import json
import os
import threading

import pytest

from repro.__main__ import main
from repro.runner import OK, ArtifactCache, CellResult


def make_result(value: int = 7, pad: int = 0) -> CellResult:
    diagnostics = [f"pad-{'x' * pad}"] if pad else []
    return CellResult(
        workload="w", flow="handelc", verdict=OK, value=value,
        diagnostics=diagnostics,
    )


def key_for(index: int) -> str:
    return f"{index:02x}" + "ab" * 31


def test_stats_counts_entries_and_bytes(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache.stats().entries == 0
    for index in range(3):
        assert cache.store(key_for(index), make_result(index))
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.total_bytes > 0
    assert stats.newest_mtime >= stats.oldest_mtime
    assert stats.orphan_tmp_files == 0
    assert stats.to_dict()["entries"] == 3


def test_prune_evicts_oldest_first(tmp_path):
    cache = ArtifactCache(tmp_path)
    paths = []
    for index in range(4):
        key = key_for(index)
        cache.store(key, make_result(index, pad=64))
        path = cache._path(key)
        # Deterministic LRU order: entry 0 oldest, entry 3 newest.
        os.utime(path, (1000.0 + index, 1000.0 + index))
        paths.append(path)
    sizes = [path.stat().st_size for path in paths]
    keep_budget = sizes[2] + sizes[3]

    report = cache.prune(max_bytes=keep_budget)
    assert report.removed == 2
    assert report.kept == 2
    assert report.freed_bytes == sizes[0] + sizes[1]
    assert not paths[0].exists() and not paths[1].exists()
    assert paths[2].exists() and paths[3].exists()
    # The survivors still load.
    assert cache.load(key_for(3)).value == 3


def test_prune_noop_when_under_budget(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store(key_for(0), make_result())
    report = cache.prune(max_bytes=10 << 20)
    assert report.removed == 0 and report.kept == 1


def test_prune_sweeps_stale_tmp_orphans(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store(key_for(0), make_result())
    bucket = cache._path(key_for(0)).parent
    stale = bucket / ".deadbeef.tmp"
    stale.write_text("torn half-write from a dead worker")
    os.utime(stale, (1.0, 1.0))
    fresh = bucket / ".cafe.tmp"
    fresh.write_text("a writer mid-flight right now")

    assert cache.stats().orphan_tmp_files == 2
    report = cache.prune(max_bytes=10 << 20)
    assert report.tmp_swept == 1
    assert not stale.exists()
    assert fresh.exists()  # younger than an hour: left alone


def test_concurrent_stores_never_expose_a_torn_entry(tmp_path):
    """Two writers racing on one key: every read sees a complete entry."""
    cache = ArtifactCache(tmp_path)
    key = key_for(0)
    result = make_result(pad=512)
    cache.store(key, result)
    path = cache._path(key)
    stop = threading.Event()
    failures = []

    def writer():
        while not stop.is_set():
            cache.store(key, result)

    def reader():
        while not stop.is_set():
            try:
                data = json.loads(path.read_text())
                assert data["key"] == key
            except Exception as error:  # torn write would land here
                failures.append(error)
                return

    threads = [threading.Thread(target=writer) for _ in range(2)]
    threads.append(threading.Thread(target=reader))
    for thread in threads:
        thread.start()
    threading.Event().wait(0.4)
    stop.set()
    for thread in threads:
        thread.join()
    assert not failures
    # No tmp litter left behind by the racing writers.
    assert list(tmp_path.glob("*/*.tmp")) == []
    assert cache.load(key).value == 7


def test_store_failure_leaves_no_tmp_litter(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)

    def explode(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(OSError):
        cache.store(key_for(1), make_result())
    monkeypatch.undo()
    assert list(tmp_path.glob("*/*.tmp")) == []
    assert cache.load(key_for(1)) is None


# -------------------------------------------------------------------- CLI


def test_cache_stats_command(tmp_path, capsys):
    cache = ArtifactCache(tmp_path)
    cache.store(key_for(0), make_result())
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "entries    : 1" in out

    assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                 "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["entries"] == 1
    assert data["total_bytes"] > 0


def test_cache_prune_command_with_suffix(tmp_path, capsys):
    cache = ArtifactCache(tmp_path)
    for index in range(3):
        cache.store(key_for(index), make_result(index))
        os.utime(cache._path(key_for(index)),
                 (1000.0 + index, 1000.0 + index))
    assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                 "--max-bytes", "0"]) == 0
    assert "pruned 3 entries" in capsys.readouterr().out
    assert len(cache) == 0

    cache.store(key_for(9), make_result())
    assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                 "--max-bytes", "1M", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["removed"] == 0 and report["kept"] == 1
    assert report["max_bytes"] == 1 << 20


def test_cache_clear_command(tmp_path, capsys):
    cache = ArtifactCache(tmp_path)
    cache.store(key_for(0), make_result())
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert len(cache) == 0
