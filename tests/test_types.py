"""Type-system unit tests."""

import pytest

from repro.lang.types import (
    ArrayType,
    BOOL,
    BoolType,
    ChannelType,
    INT,
    IntType,
    PointerType,
    UINT,
    VOID,
    common_type,
    is_assignable,
    make_int,
)


def test_int_width_bounds():
    IntType(1)
    IntType(128)
    with pytest.raises(ValueError):
        IntType(0)
    with pytest.raises(ValueError):
        IntType(129)


def test_wrap_signed():
    t = IntType(8, signed=True)
    assert t.wrap(127) == 127
    assert t.wrap(128) == -128
    assert t.wrap(-129) == 127
    assert t.wrap(256) == 0
    assert t.wrap(-1) == -1


def test_wrap_unsigned():
    t = IntType(8, signed=False)
    assert t.wrap(255) == 255
    assert t.wrap(256) == 0
    assert t.wrap(-1) == 255


def test_min_max_values():
    signed = IntType(4, signed=True)
    assert signed.min_value == -8 and signed.max_value == 7
    unsigned = IntType(4, signed=False)
    assert unsigned.min_value == 0 and unsigned.max_value == 15


def test_make_int_reuses_canonical_instances():
    assert make_int(32, True) is INT
    assert make_int(32, False) is UINT


def test_type_equality_is_structural():
    assert IntType(7, False) == IntType(7, False)
    assert IntType(7, False) != IntType(7, True)
    assert ArrayType(INT, 4) == ArrayType(INT, 4)
    assert ArrayType(INT, 4) != ArrayType(INT, 5)
    assert PointerType(INT) == PointerType(INT)


def test_bit_widths():
    assert BOOL.bit_width == 1
    assert VOID.bit_width == 0
    assert IntType(12).bit_width == 12
    assert ArrayType(IntType(8), 10).bit_width == 80
    assert PointerType(INT).bit_width == 32
    assert ChannelType(IntType(16)).bit_width == 16


def test_common_type_width_promotion():
    merged = common_type(IntType(8), IntType(16))
    assert merged == IntType(16)


def test_common_type_unsigned_wins_ties():
    merged = common_type(IntType(16, True), IntType(16, False))
    assert merged == IntType(16, False)


def test_common_type_bool_promotes():
    merged = common_type(BOOL, IntType(8))
    assert isinstance(merged, IntType) and merged.width == 8


def test_common_type_pointer_plus_int():
    p = PointerType(INT)
    assert common_type(p, INT) == p
    assert common_type(INT, p) == p


def test_common_type_incompatible_pointers():
    assert common_type(PointerType(INT), PointerType(IntType(8))) is None


def test_common_type_array_rejected():
    assert common_type(ArrayType(INT, 4), INT) is None


def test_assignability_allows_narrowing():
    assert is_assignable(IntType(8), IntType(32))
    assert is_assignable(IntType(32), IntType(8))
    assert is_assignable(BOOL, INT)
    assert is_assignable(INT, BOOL)


def test_assignability_pointer_strict():
    assert is_assignable(PointerType(INT), PointerType(INT))
    assert not is_assignable(PointerType(INT), PointerType(IntType(8)))
    assert not is_assignable(PointerType(INT), INT)


def test_array_size_positive():
    with pytest.raises(ValueError):
        ArrayType(INT, 0)


def test_scalar_predicate():
    assert INT.is_scalar()
    assert BOOL.is_scalar()
    assert PointerType(INT).is_scalar()
    assert not ArrayType(INT, 3).is_scalar()
    assert not VOID.is_scalar()


def test_type_string_forms():
    assert str(INT) == "int"
    assert str(IntType(7, False)) == "uint7"
    assert str(ArrayType(INT, 4)) == "int[4]"
    assert str(PointerType(INT)) == "int*"
    assert str(ChannelType(INT)) == "chan<int>"
