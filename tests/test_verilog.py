"""Verilog emission tests: structural sanity of the generated text."""

import re

import pytest

from repro.flows import compile_flow


def test_fsmd_module_skeleton():
    design = compile_flow(
        "int main(int a) { int s = 0; for (int i = 0; i < a; i++) { s += i; } return s; }",
        flow="c2verilog",
    )
    text = design.verilog()
    assert "module fsmd_main" in text
    assert "endmodule" in text
    assert "input wire clk" in text
    assert "posedge clk" in text
    assert "case (state)" in text
    assert "output reg done" in text


def test_fsmd_registers_declared_with_widths():
    design = compile_flow("int main(uint8 a) { uint8 b = a + 1; return b; }",
                          flow="c2verilog")
    text = design.verilog()
    assert re.search(r"input wire \[7:0\] arg_a", text)


def test_memories_become_reg_arrays():
    design = compile_flow(
        "int g[16]; int main(int i) { return g[i & 15]; }", flow="c2verilog"
    )
    text = design.verilog()
    assert re.search(r"reg \[31:0\] g \[0:15\];", text)


def test_channel_ports_emitted_for_rendezvous():
    design = compile_flow(
        """
        chan<int> c;
        process void p() { send(c, 1); }
        int main() { return recv(c); }
        """,
        flow="hardwarec",
    )
    text = design.verilog()
    assert "c_valid_out" in text
    assert "c_ready_in" in text
    assert text.count("module ") == 2  # one per process


def test_branches_become_if_else_on_state():
    design = compile_flow(
        "int main(int a) { if (a > 0) { return 1; } return 2; }", flow="c2verilog"
    )
    text = design.verilog()
    assert "if (" in text and "end else begin" in text
    assert "state <=" in text


def test_handelc_nested_decision_trees_emit():
    design = compile_flow(
        """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i; }
            }
            return s;
        }
        """,
        flow="handelc",
    )
    text = design.verilog()
    assert "module fsmd_main" in text
    assert text.count("state <=") >= 2


def test_combinational_module_is_pure_assigns():
    design = compile_flow(
        "int main(int a, int b) { return a > b ? a - b : b - a; }", flow="cones"
    )
    text = design.verilog()
    assert "module cones_main" in text
    assert "assign" in text
    assert "posedge" not in text
    assert "reg " not in text


def test_combinational_array_inputs_enumerated():
    design = compile_flow(
        "int t[2] = {3, 4}; int main(int i) { return t[i]; }", flow="cones"
    )
    text = design.verilog()
    assert text.count("input wire") >= 3  # i plus two array elements


def test_negative_constants_emit_signed_literals():
    design = compile_flow("int main(int a) { return a + (0 - 5); }", flow="cones")
    text = design.verilog()
    assert "'sd5" in text or "'d" in text


def test_system_header_counts_machines():
    design = compile_flow(
        """
        chan<int> c;
        process void p() { send(c, 1); }
        int main() { return recv(c); }
        """,
        flow="bachc",
    )
    text = design.verilog()
    assert "2 machine(s)" in text
    assert "1 rendezvous channel(s)" in text
