"""Binding and allocation tests."""

import pytest

from repro.binding import (
    allocate_registers,
    bind_functional_units,
    estimate_cost,
    left_edge_pack,
)
from repro.binding.register_alloc import Lifetime
from repro.ir import build_function
from repro.ir.ops import VReg
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.lang.types import INT
from repro.rtl.tech import DEFAULT_TECH
from repro.scheduling import ResourceSet, list_schedule_function


def schedule_of(source, resources=None, clock_ns=5.0):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return list_schedule_function(cdfg, resources or ResourceSet.typical(),
                                  clock_ns=clock_ns)


MULHEAVY = """
int main(int a, int b, int c, int d) {
    int p = a * b;
    int q = c * d;
    int r = p * q;
    return r + p + q;
}
"""


def test_every_op_is_bound():
    schedule = schedule_of(MULHEAVY)
    binding = bind_functional_units(schedule)
    from repro.scheduling.resources import FREE, classify

    for block_schedule in schedule.blocks.values():
        for op in block_schedule.block.ops:
            if classify(op) != FREE:
                assert op.id in binding.op_unit


def test_same_step_ops_get_distinct_units():
    schedule = schedule_of(MULHEAVY, ResourceSet(multiplier=2, alu=2))
    binding = bind_functional_units(schedule)
    for block_schedule in schedule.blocks.values():
        for step_ops in block_schedule.step_ops():
            seen = {}
            for op in step_ops:
                unit = binding.op_unit.get(op.id)
                if unit is None:
                    continue
                assert unit not in seen, "unit double-booked in one step"
                seen[unit] = op


def test_unit_count_bounded_by_resource_limit():
    schedule = schedule_of(MULHEAVY, ResourceSet(multiplier=1, alu=1))
    binding = bind_functional_units(schedule)
    assert len(binding.units_of_class("mul")) == 1


def test_units_shared_across_blocks():
    schedule = schedule_of(
        """
        int main(int a, int b) {
            int x = 0;
            if (a > 0) { x = a * b; } else { x = a * a; }
            return x * b;
        }
        """,
        ResourceSet(multiplier=1, alu=1),
    )
    binding = bind_functional_units(schedule)
    muls = binding.units_of_class("mul")
    assert len(muls) == 1
    assert muls[0].op_count == 3


def test_left_edge_disjoint_lifetimes_share():
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=1, start=0, end=1),
        Lifetime(vreg=VReg(INT), block_id=1, start=2, end=3),
        Lifetime(vreg=VReg(INT), block_id=1, start=4, end=6),
    ]
    carriers = left_edge_pack(lifetimes)
    assert len(carriers) == 1


def test_left_edge_overlapping_lifetimes_split():
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=1, start=0, end=4),
        Lifetime(vreg=VReg(INT), block_id=1, start=1, end=3),
        Lifetime(vreg=VReg(INT), block_id=1, start=2, end=5),
    ]
    carriers = left_edge_pack(lifetimes)
    assert len(carriers) == 3


def test_left_edge_is_optimal_for_interval_graphs():
    # Max overlap is 2, so exactly 2 carriers suffice.
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=1, start=0, end=2),
        Lifetime(vreg=VReg(INT), block_id=1, start=1, end=4),
        Lifetime(vreg=VReg(INT), block_id=1, start=3, end=6),
        Lifetime(vreg=VReg(INT), block_id=1, start=5, end=8),
    ]
    carriers = left_edge_pack(lifetimes)
    assert len(carriers) == 2


def test_lifetimes_from_different_blocks_share_freely():
    lifetimes = [
        Lifetime(vreg=VReg(INT), block_id=1, start=0, end=5),
        Lifetime(vreg=VReg(INT), block_id=2, start=0, end=5),
    ]
    carriers = left_edge_pack(lifetimes)
    assert len(carriers) == 1  # one FSM: the blocks never run concurrently


def test_allocation_covers_cross_step_values():
    schedule = schedule_of(MULHEAVY, ResourceSet(multiplier=1, alu=1))
    allocation = allocate_registers(schedule)
    # p and q must survive while r is computed: carriers exist.
    assert allocation.carriers or allocation.variable_registers
    for lifetime in allocation.lifetimes:
        assert lifetime.end > lifetime.start
        assert allocation.vreg_carrier[lifetime.vreg.id]


def test_cost_components_positive_and_summed():
    schedule = schedule_of(MULHEAVY)
    cost = estimate_cost(schedule)
    assert cost.fu_area_ge > 0
    assert cost.register_area_ge > 0
    assert cost.total_area_ge == pytest.approx(
        cost.fu_area_ge + cost.register_area_ge + cost.mux_area_ge
        + cost.memory_area_ge + cost.controller_area_ge
    )
    assert cost.clock_ns > 0
    assert cost.fmax_mhz == pytest.approx(1000.0 / cost.clock_ns)


def test_sharing_raises_mux_cost():
    shared = estimate_cost(schedule_of(MULHEAVY, ResourceSet(multiplier=1, alu=1)))
    wide = estimate_cost(schedule_of(MULHEAVY, ResourceSet(multiplier=4, alu=4)))
    assert shared.fu_area_ge <= wide.fu_area_ge
    assert shared.mux_area_ge >= wide.mux_area_ge


def test_memory_area_counted():
    schedule = schedule_of(
        "int g[64]; int main(int i) { return g[i & 63]; }"
    )
    cost = estimate_cost(schedule)
    assert cost.memory_area_ge > 0


def test_multicycle_divider_does_not_blow_clock_estimate():
    schedule = schedule_of(
        "int main(int a, int b) { return a / (b | 1); }", clock_ns=5.0
    )
    cost = estimate_cost(schedule)
    # The divider spans states; the clock stays near the 5 ns target, far
    # below the divider's 22 ns propagation time.
    assert cost.clock_ns < 10.0
