"""Semantic-analysis unit tests."""

import pytest

from repro.lang import SemanticError, parse
from repro.lang.semantic import (
    FEATURE_ARRAYS,
    FEATURE_CHANNELS,
    FEATURE_DIVISION,
    FEATURE_LOOPS,
    FEATURE_MULTIPLY,
    FEATURE_PAR,
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WITHIN,
)


def ok(source):
    return parse(source)


def bad(source, fragment=""):
    with pytest.raises(SemanticError) as excinfo:
        parse(source)
    if fragment:
        assert fragment in str(excinfo.value)
    return excinfo.value


def test_unknown_identifier():
    bad("int main() { return y; }", "unknown identifier")


def test_redeclaration_in_same_scope():
    bad("int main() { int x = 1; int x = 2; return x; }", "redeclaration")


def test_shadowing_in_nested_scope_is_allowed():
    program, info = ok(
        "int main() { int x = 1; { int x = 2; x = 3; } return x; }"
    )
    assert "main" in info.functions


def test_scope_ends_with_block():
    bad("int main() { { int x = 1; } return x; }", "unknown identifier")


def test_assignment_to_const():
    bad("int main() { const int k = 1; k = 2; return k; }", "const")


def test_void_variable_rejected():
    bad("int main() { void v; return 0; }")


def test_return_type_checked():
    bad("void f() { return 3; }")
    bad("int main() { return; }")


def test_break_outside_loop():
    bad("int main() { break; return 0; }", "break")


def test_continue_outside_loop():
    bad("int main() { continue; return 0; }", "continue")


def test_call_arity_checked():
    bad("int f(int a) { return a; } int main() { return f(1, 2); }", "expects 1")


def test_unknown_function():
    bad("int main() { return g(); }", "unknown function")


def test_function_used_as_value():
    bad("int f() { return 1; } int main() { return f + 1; }", "used as a value")


def test_array_used_as_scalar():
    bad("int main() { int a[4]; return a + 1; }")


def test_whole_array_assignment_rejected():
    bad("int main() { int a[4]; int b[4]; a = b; return 0; }")


def test_indexing_non_array():
    bad("int main() { int x = 1; return x[0]; }", "cannot index")


def test_array_initializer_too_long():
    bad("int main() { int a[2] = {1, 2, 3}; return 0; }", "too many")


def test_multidimensional_arrays_rejected():
    bad("int main() { int a[2][2]; return 0; }", "flatten")
    bad("int g[2][2]; int main() { return 0; }", "flatten")


def test_dereference_non_pointer():
    bad("int main() { int x = 1; return *x; }", "dereference")


def test_par_write_write_race_detected():
    bad(
        "int main() { int x = 0; par { x = 1; x = 2; } return x; }",
        "race",
    )


def test_par_disjoint_writes_allowed():
    ok("int main() { int x = 0; int y = 0; par { x = 1; y = 2; } return x + y; }")


def test_par_array_write_race_detected():
    bad(
        "int main() { int a[4]; par { a[0] = 1; a[1] = 2; } return a[0]; }",
        "race",
    )


def test_within_must_be_straight_line():
    bad(
        "int main() { within (2) { for (int i = 0; i < 3; i++) { } } return 0; }",
        "straight-line",
    )
    bad(
        "int main(int c) { within (2) { if (c) { int x = 1; } } return 0; }",
        "straight-line",
    )


def test_within_cannot_nest():
    bad(
        "int main() { within (3) { within (2) { int x = 1; } } return 0; }",
    )


def test_within_bound_positive():
    bad("int main() { within (0) { int x = 1; } return 0; }", "positive")


def test_channel_must_be_global():
    bad("int main() { chan<int> c; return 0; }", "top level")


def test_send_type_checked():
    ok("chan<int> c; int main() { send(c, 300); return 0; }")
    bad("chan<int> c; int main() { send(x, 1); return 0; }", "unknown channel")


def test_send_on_non_channel():
    bad("int x; int main() { send(x, 1); return 0; }", "not a channel")


def test_global_initializer_must_be_constant():
    ok("int g = 3 * 4 + (1 << 2);")
    bad("int g = h; int main() { return g; }", "constant")


def test_global_initializers_recorded():
    program, info = ok("int g = 6; int a[3] = {1, 2, 3}; int main() { return g; }")
    assert info.global_inits["g"] == 6
    assert info.global_inits["a"] == [1, 2, 3]


def test_feature_detection():
    _, info = ok(
        """
        int helper(int n) { return n * 2; }
        int main() {
            int a[4];
            int *p = &a[0];
            for (int i = 0; i < 4; i++) { a[i] = helper(i) / 2; }
            return *p;
        }
        """
    )
    features = info.features_of("main")
    assert FEATURE_POINTERS in features
    assert FEATURE_ARRAYS in features
    assert FEATURE_LOOPS in features
    assert FEATURE_DIVISION in features
    assert FEATURE_MULTIPLY in features


def test_features_propagate_through_calls():
    _, info = ok(
        """
        int deep(int n) { return n % 3; }
        int mid(int n) { return deep(n); }
        int main() { return mid(9); }
        """
    )
    assert FEATURE_DIVISION in info.features_of("main")
    assert FEATURE_DIVISION not in info.functions["main"].features


def test_direct_recursion_detected():
    _, info = ok("int f(int n) { if (n <= 0) { return 0; } return f(n - 1); } int main() { return f(3); }")
    assert info.is_recursive("f")
    assert info.is_recursive("main")
    assert FEATURE_RECURSION in info.features_of("main")


def test_mutual_recursion_detected():
    _, info = ok(
        """
        int odd(int n);
        int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
        int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
        int main() { return even(4); }
        """.replace("int odd(int n);", "")
    )
    assert info.is_recursive("even")


def test_non_recursive_program():
    _, info = ok("int f() { return 1; } int main() { return f(); }")
    assert not info.is_recursive("main")
    assert FEATURE_RECURSION not in info.features_of("main")


def test_condition_must_be_scalar():
    bad("int main() { int a[4]; if (a) { } return 0; }", "scalar")


def test_pointer_assignment_type_checked():
    ok("int main() { int x = 1; int *p = &x; return *p; }")
    bad("int main() { uint8 x = 1; int *p = &x; return *p; }")
