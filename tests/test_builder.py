"""CDFG builder tests."""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.ir import BuildError, build_function, validate
from repro.ir.cdfg import BasicBlock
from repro.ir.executor import execute
from repro.ir.ops import Branch, Const, Jump, OpKind, Ret, VarRead
from repro.ir.passes import inline_program
from repro.interp import run_program
from repro.lang import parse


def build(source, function="main", enable_analysis=True):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    fn = inlined.function(function)
    plan = plan_pointers(fn, enable_analysis=enable_analysis)
    return build_function(fn, info, plan), info, plan


def ops_of_kind(cdfg, kind):
    return [op for op in cdfg.iter_ops() if op.kind is kind]


def test_straight_line_single_block():
    cdfg, _, _ = build("int main(int a, int b) { return a * b + 1; }")
    blocks = cdfg.reachable_blocks()
    assert len(blocks) == 1
    assert isinstance(blocks[0].terminator, Ret)


def test_validate_passes_on_all_built_graphs():
    cdfg, _, _ = build(
        """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i; } else { s -= 1; }
            }
            return s;
        }
        """
    )
    validate(cdfg)  # raises on malformed graphs


def test_if_produces_branch_terminator():
    cdfg, _, _ = build("int main(int a) { if (a > 0) { return 1; } return 2; }")
    branches = [
        b for b in cdfg.reachable_blocks() if isinstance(b.terminator, Branch)
    ]
    assert len(branches) == 1


def test_trap_free_ternary_becomes_select():
    cdfg, _, _ = build("int main(int a, int b) { return a < b ? a : b; }")
    assert len(ops_of_kind(cdfg, OpKind.SELECT)) == 1
    assert len(cdfg.reachable_blocks()) == 1


def test_trapping_ternary_becomes_control_flow():
    cdfg, _, _ = build("int main(int a) { return a != 0 ? 10 / a : 0; }")
    assert len(cdfg.reachable_blocks()) > 1
    assert not ops_of_kind(cdfg, OpKind.SELECT)


def test_short_circuit_with_division_builds_branches():
    cdfg, _, _ = build(
        "int main(int a) { int d = 0; if (a != 0 && 10 / a > 1) { d = 1; } return d; }"
    )
    assert len(cdfg.reachable_blocks()) >= 3


def test_safe_short_circuit_is_eager():
    cdfg, _, _ = build("int main(int a, int b) { return (a > 0 && b > 0) ? 1 : 0; }")
    assert len(cdfg.reachable_blocks()) == 1


def test_array_accesses_become_load_store():
    cdfg, _, _ = build(
        "int g[4]; int main(int i) { g[i] = 5; return g[i]; }"
    )
    assert len(ops_of_kind(cdfg, OpKind.STORE)) == 1
    assert len(ops_of_kind(cdfg, OpKind.LOAD)) == 1
    assert len(cdfg.arrays) == 1


def test_within_tags_ops_with_constraint_group():
    cdfg, _, _ = build(
        "int main(int a) { int x = 0; within (2) { x = a + 1; x = x * 2; } return x; }"
    )
    assert len(cdfg.constraints) == 1
    group = cdfg.constraints[0].group
    tagged = [op for op in cdfg.iter_ops() if op.constraint == group]
    assert tagged


def test_wait_and_delay_become_fences():
    cdfg, _, _ = build("int main() { wait(); delay(3); return 0; }")
    assert len(ops_of_kind(cdfg, OpKind.BARRIER)) == 1
    delays = ops_of_kind(cdfg, OpKind.DELAY)
    assert len(delays) == 1 and delays[0].cycles == 3


def test_send_recv_reference_channels():
    cdfg, _, _ = build(
        "chan<int> c; int main() { send(c, 1); return recv(c); }"
    )
    assert len(ops_of_kind(cdfg, OpKind.SEND)) == 1
    assert len(ops_of_kind(cdfg, OpKind.RECV)) == 1


def test_residual_call_rejected():
    program, info = parse("int f() { return 1; } int main() { return f(); }")
    with pytest.raises(BuildError):
        build_function(program.function("main"), info)


def test_globals_tracked():
    cdfg, _, _ = build("int g; int main() { g = g + 1; return g; }")
    names = {s.name for s in cdfg.globals_written}
    assert "g" in names


def test_resolved_pointer_becomes_index_register():
    source = """
    int buf[8];
    int main() {
        int *p = &buf[2];
        *p = 7;
        return buf[2];
    }
    """
    cdfg, _, plan = build(source)
    assert plan.mode == "resolved"
    # No unified memory: accesses stay on buf's own memory.
    assert plan.memory_symbol is None
    array_names = {a.name for a in cdfg.arrays}
    assert array_names == {"buf"}


def test_unresolved_pointers_use_unified_memory():
    source = """
    int a[4];
    int b[4];
    int main(int which) {
        int *p = which != 0 ? &a[0] : &b[0];
        *p = 3;
        return a[0] + b[0];
    }
    """
    cdfg, _, plan = build(source)
    assert plan.memory_symbol is not None
    assert {s.name for s in plan.in_memory} == {"a", "b"}


def test_disabled_analysis_forces_unified_memory():
    source = """
    int buf[8];
    int main() {
        int *p = &buf[0];
        return *p;
    }
    """
    _, _, plan = build(source, enable_analysis=False)
    assert plan.memory_symbol is not None


def test_values_crossing_lowered_ternary_are_rerouted():
    # The LOAD forces the ternary into control flow; `base` is computed
    # before it and used after it, so it must travel through a register.
    source = """
    int t[4] = {1, 2, 3, 4};
    int main(int a) {
        return (a * 3) + (a > 0 ? t[a & 3] : 0);
    }
    """
    cdfg, info, plan = build(source)
    validate(cdfg)
    result = execute(
        cdfg, args=(2,),
        memory_init={cdfg.arrays[0]: [1, 2, 3, 4]},
    )
    assert result.value == 2 * 3 + 3


def test_loop_redeclared_scalar_rezeroed():
    source = """
    int main() {
        int acc = 0;
        for (int i = 0; i < 3; i++) {
            int fresh;
            acc += fresh;
            fresh = 9;
        }
        return acc;
    }
    """
    cdfg, info, _ = build(source)
    assert execute(cdfg).value == 0


def test_executor_matches_interpreter_on_arg_sweep():
    source = """
    int main(int n) {
        int s = 0;
        int i = 0;
        do { s += i * i; i++; } while (i < n);
        return s;
    }
    """
    program, info = parse(source)
    cdfg, _, _ = build(source)
    for n in (1, 2, 5, 9):
        golden = run_program(program, info, "main", (n,))
        assert execute(cdfg, args=(n,)).value == golden.value


def test_par_branches_flatten_into_dataflow():
    cdfg, _, _ = build(
        "int main(int a) { int x = 0; int y = 0; par { x = a + 1; y = a * 2; } return x + y; }"
    )
    assert len(cdfg.reachable_blocks()) == 1  # pure dataflow, no control
