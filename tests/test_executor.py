"""CDFG reference-executor tests (beyond the builder's equivalence checks)."""

import pytest

from repro.interp import run_program
from repro.lang import InterpError, parse
from repro.ir import build_function
from repro.ir.executor import CDFGExecutor, execute
from repro.ir.passes import inline_program, optimize


def build(source):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return cdfg, program, info


def test_register_init_overrides_zero():
    cdfg, _, _ = build("int g; int main() { return g + 1; }")
    g = next(s for s in cdfg.registers if s.name == "g")
    assert execute(cdfg).value == 1
    assert execute(cdfg, register_init={g: 41}).value == 42


def test_memory_init_populates_arrays():
    cdfg, _, _ = build("int t[4]; int main(int i) { return t[i]; }")
    t = next(a for a in cdfg.arrays if a.name == "t")
    result = execute(cdfg, args=(2,), memory_init={t: [9, 8, 7, 6]})
    assert result.value == 7


def test_argument_count_checked():
    cdfg, _, _ = build("int main(int a, int b) { return a + b; }")
    with pytest.raises(InterpError):
        execute(cdfg, args=(1,))


def test_block_budget_enforced():
    cdfg, _, _ = build("int main() { while (true) { } return 0; }")
    with pytest.raises(InterpError) as excinfo:
        CDFGExecutor(cdfg, max_blocks=50).run()
    assert "budget" in str(excinfo.value)


def test_out_of_bounds_load_reports_array_and_index():
    cdfg, _, _ = build("int t[4]; int main(int i) { return t[i]; }")
    with pytest.raises(InterpError) as excinfo:
        execute(cdfg, args=(9,))
    assert "t" in str(excinfo.value) and "9" in str(excinfo.value)


def test_counters_reported():
    cdfg, _, _ = build(
        "int main() { int s = 0; for (int i = 0; i < 5; i++) { s += i; } return s; }"
    )
    result = execute(cdfg)
    assert result.blocks_executed > 5
    assert result.ops_executed > 5


def test_channel_callbacks_script_a_partner():
    cdfg, program, info = build(
        "chan<int> c; int main() { send(c, 5); return recv(c) + recv(c); }"
    )
    sent = []
    feed = iter([10, 20])
    result = execute(
        cdfg,
        on_send=lambda chan, v: sent.append((chan.name, v)),
        on_recv=lambda chan: next(feed),
    )
    assert sent == [("c", 5)]
    assert result.value == 30


def test_channel_ops_without_callbacks_raise():
    cdfg, _, _ = build("chan<int> c; int main() { return recv(c); }")
    with pytest.raises(InterpError):
        execute(cdfg)


def test_final_state_snapshot():
    cdfg, program, info = build(
        "int g; int t[2]; int main() { g = 3; t[1] = 9; return 0; }"
    )
    result = execute(cdfg)
    assert result.registers["g"] == 3
    assert result.memories["t"] == [0, 9]


def test_matches_interpreter_including_globals():
    source = """
    int acc;
    int log[4];
    int main(int n) {
        for (int i = 0; i < n; i++) {
            acc += i * i;
            log[i & 3] = acc;
        }
        return acc;
    }
    """
    cdfg, program, info = build(source)
    golden = run_program(program, info, "main", (7,))
    result = execute(cdfg, args=(7,))
    assert result.value == golden.value
    assert result.registers["acc"] == golden.globals["acc"]
    assert result.memories["log"] == golden.globals["log"]
