"""Regression tests for flow-level subtleties found during development."""

import pytest

from repro.flows import compile_flow, run_flow
from repro.interp import run_source


def test_chain_scheduler_splits_same_memory_raw():
    # A store followed by a load of the SAME memory in one block cannot
    # share a state (synchronous RAMs commit at the edge).  Regression for
    # a silent wrong-value bug: the checksum read output[n] right after
    # writing it.
    source = """
    int buf[4];
    int main(int v) {
        buf[1] = v * 3;
        int readback = buf[1];
        return readback + 1;
    }
    """
    golden = run_source(source, args=(5,)).value
    for flow in ("transmogrifier", "systemc"):
        result = run_flow(source, args=(5,), flow=flow)
        assert result.value == golden, flow
        assert result.cycles >= 2  # the split costs a state


def test_chain_scheduler_keeps_distinct_memories_together():
    source = """
    int a[4];
    int b[4];
    int main(int v) {
        a[0] = v;
        int other = b[0];
        return other;
    }
    """
    result = run_flow(source, args=(9,), flow="transmogrifier")
    assert result.value == 0
    assert result.cycles == 1  # different memories: one state suffices


def test_handelc_staggers_conflicting_channel_ops_in_par():
    # Two branches both doing channel ops in the same par slot: the
    # compiler staggers the second by a cycle instead of rejecting.
    source = """
    chan<int> a;
    chan<int> b;
    process void feeder_a() { send(a, 11); }
    process void feeder_b() { send(b, 22); }
    int main() {
        int x;
        int y;
        par {
            x = recv(a);
            y = recv(b);
        }
        return x * 100 + y;
    }
    """
    golden = run_source(source)
    result = run_flow(source, flow="handelc")
    assert result.value == golden.value == 1122


def test_handelc_tolerant_memory_on_speculative_conditions():
    # The guard i < 4 is evaluated together with t[i] in the predecessor
    # state; at i == 4 the load is speculative and must read harmless 0.
    source = """
    int t[4] = {5, 6, 7, 8};
    int main() {
        int s = 0;
        for (int i = 0; i < 4; i++) {
            if (t[i] > 5) { s += t[i]; }
        }
        return s;
    }
    """
    golden = run_source(source).value
    assert run_flow(source, flow="handelc").value == golden


def test_scheduled_flows_keep_strict_memory_bounds():
    # Unlike Handel-C, a scheduled flow evaluates lazily: a genuine
    # out-of-bounds access is a bug and must trap loudly.
    from repro.sim import SimulationError

    source = "int t[4]; int main(int i) { return t[i]; }"
    design = compile_flow(source, flow="c2verilog")
    with pytest.raises(SimulationError):
        design.run(args=(7,))


def test_within_constraint_with_send_inside():
    source = """
    chan<int> c;
    process void sink() { int v = recv(c); }
    int main(int a) {
        int x = 0;
        within (3) {
            x = a + 1;
            send(c, x);
        }
        return x;
    }
    """
    golden = run_source(source, args=(4,))
    result = run_flow(source, args=(4,), flow="hardwarec")
    assert result.value == golden.value
    assert result.channel_log == golden.channel_log


def test_narrowed_designs_match_unmarrowed_across_inputs():
    source = """
    int main(int x) {
        int acc = 0;
        for (int i = 0; i < 12; i++) {
            acc += ((x >> i) & 7) * (i & 3);
        }
        return acc;
    }
    """
    wide = compile_flow(source, flow="c2verilog", narrow=False)
    slim = compile_flow(source, flow="c2verilog", narrow=True)
    for value in (0, 1, -1, 12345, -98765, 2**31 - 1):
        assert wide.run(args=(value,)).value == slim.run(args=(value,)).value


def test_transmogrifier_rotation_preserves_continue_semantics():
    # Loops containing `continue` are not rotated; verify correctness.
    source = """
    int main() {
        int s = 0;
        for (int i = 0; i < 10; i++) {
            if (i % 2 == 0) { continue; }
            s += i;
        }
        return s;
    }
    """
    golden = run_source(source).value
    assert run_flow(source, flow="transmogrifier").value == golden


def test_zero_trip_loops_across_flows():
    source = "int main(int n) { int s = 7; for (int i = 0; i < n; i++) { s = 0; } return s; }"
    for flow in ("c2verilog", "handelc", "transmogrifier", "bachc", "cash"):
        assert run_flow(source, args=(0,), flow=flow).value == 7, flow


def test_empty_function_body_synthesizes():
    source = "int main() { return 42; }"
    for flow in ("c2verilog", "handelc", "transmogrifier", "cash", "cones"):
        assert run_flow(source, flow=flow).value == 42, flow


def test_deeply_nested_control_flow():
    source = """
    int main(int a) {
        int r = 0;
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 3; j++) {
                if (i == j) {
                    if (a > 0) { r += i * 10; } else { r -= j; }
                } else {
                    while (r > 50) { r = r - 7; }
                }
            }
        }
        return r;
    }
    """
    golden = run_source(source, args=(1,)).value
    for flow in ("c2verilog", "handelc", "transmogrifier", "systemc", "cash"):
        assert run_flow(source, args=(1,), flow=flow).value == golden, flow
