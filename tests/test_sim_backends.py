"""Backend-equivalence suite: interp vs compiled FSMD simulation.

The compiled backend (:mod:`repro.sim.compiled`) must be a pure
performance transformation — bit-identical :class:`SimResult` contents,
identical error messages, identical profiler histograms.  This suite
pins that contract three ways:

* the full workload × flow matrix through the shared engine, where a
  cell's ``identity()`` (minus the backend tag itself) must not depend
  on the backend;
* targeted rendezvous, tolerant-memory, structural, and error-path
  programs where the general scheduler and the single-machine fast
  path each get exercised directly;
* the triaged fuzz corpus, whose divergence signatures must be
  backend-independent (a flow bug is a flow bug under either engine).
"""

from pathlib import Path

import pytest

from repro.flows import OcapiModule, run_flow
from repro.fuzz import Corpus, replay_entry
from repro.runner import CellTask, MatrixEngine, suite_tasks
from repro.sim import (
    SimProfile,
    SimulationError,
    compile_system,
    simulate,
)

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture(scope="module")
def engine():
    return MatrixEngine(jobs=1, cache=None, timeout_s=30.0, max_cycles=200_000)


def _neutral_identity(result):
    """A cell's identity with the backend tag removed — everything that
    must NOT depend on the backend."""
    identity = result.identity()
    identity.pop("sim_backend")
    return identity


# ---------------------------------------------------------------------------
# The whole matrix, both backends
# ---------------------------------------------------------------------------


def test_suite_identity_is_backend_independent(engine):
    """Every (workload, flow) cell produces the same identity — value,
    cycles, observables, verdict, diagnostics, RTL hash — under both
    backends.  This is the acceptance criterion for the whole subsystem."""
    interp = engine.run_cells(suite_tasks(sim_backend="interp"))
    compiled = engine.run_cells(suite_tasks(sim_backend="compiled"))
    assert len(interp) == len(compiled) and interp
    for a, b in zip(interp, compiled):
        assert a.sim_backend == "interp" and b.sim_backend == "compiled"
        assert _neutral_identity(a) == _neutral_identity(b), (
            f"{a.workload}/{a.flow}: backends diverge"
        )


# ---------------------------------------------------------------------------
# Rendezvous programs (multi-machine general scheduler)
# ---------------------------------------------------------------------------

_PRODUCER_CONSUMER = """
chan<int> c;
chan<int> done;

process void producer() {
    int i;
    for (i = 1; i <= 8; i = i + 1) {
        send(c, i * i);
    }
}

process void consumer() {
    int i;
    int total = 0;
    for (i = 0; i < 8; i = i + 1) {
        total = total + recv(c);
    }
    send(done, total);
}

int main() {
    return recv(done);
}
"""

_STAGGERED = """
chan<int> c;
int seen = 0;

process void fast() {
    send(c, 7);
    send(c, 9);
}

process void slow() {
    delay(5);
    seen = recv(c);
    delay(3);
    seen = seen + recv(c);
}

int main() {
    delay(20);
    return 0;
}
"""


@pytest.mark.parametrize("flow", ["specc", "systemc"])
@pytest.mark.parametrize("source", [_PRODUCER_CONSUMER, _STAGGERED],
                         ids=["producer-consumer", "staggered-delay"])
def test_rendezvous_results_identical(flow, source):
    interp = run_flow(source, flow=flow, sim_backend="interp")
    compiled = run_flow(source, flow=flow, sim_backend="compiled")
    assert interp.observable() == compiled.observable()
    assert interp.cycles == compiled.cycles
    assert interp.channel_log == compiled.channel_log
    assert interp.globals == compiled.globals
    assert interp.stats.get("stall_cycles") == compiled.stats.get(
        "stall_cycles"
    )


def test_ocapi_structural_design_both_backends():
    def build():
        m = OcapiModule("accumulate")
        n = m.input("n")
        acc = m.register("acc")
        i = m.register("i")
        entry, loop, done = m.entry, m.state("loop"), m.state("done")
        entry.latch(acc, 0).latch(i, 0).goto(loop)
        next_i = loop.add(i, 1)
        loop.latch(acc, loop.add(acc, i)).latch(i, next_i)
        loop.branch(loop.lt(next_i, n), loop, done)
        done.done(done.read(acc))
        return m.build()

    interp = build().run(args=(10,), sim_backend="interp")
    compiled = build().run(args=(10,), sim_backend="compiled")
    assert interp.observable() == compiled.observable()
    assert (interp.value, interp.cycles) == (compiled.value, compiled.cycles)
    assert compiled.value == 45


def test_handelc_tolerant_memory_both_backends():
    source = """
    int lut[4] = {10, 20, 30, 40};
    int main(int i) {
        lut[i + 9] = 99;
        return lut[i + 9] + lut[i];
    }
    """
    interp = run_flow(source, flow="handelc", args=(2,), sim_backend="interp")
    compiled = run_flow(source, flow="handelc", args=(2,),
                        sim_backend="compiled")
    assert interp.observable() == compiled.observable()
    assert interp.cycles == compiled.cycles


# ---------------------------------------------------------------------------
# Error-path parity (message-for-message)
# ---------------------------------------------------------------------------


def _error_from(design, **kwargs):
    with pytest.raises(SimulationError) as failure:
        design.run(**kwargs)
    return str(failure.value)


def _design(source, flow="specc"):
    from repro.flows import compile_flow

    return compile_flow(source, flow=flow)


def test_deadlock_message_identical():
    source = """
    chan<int> c;
    int main() {
        return recv(c);
    }
    """
    design = _design(source)
    interp = _error_from(design, sim_backend="interp")
    compiled = _error_from(design, sim_backend="compiled")
    assert interp == compiled
    assert "rendezvous deadlock" in compiled


def test_global_race_message_identical():
    source = """
    int shared = 0;
    process void a() { shared = 1; }
    process void b() { shared = 2; }
    int main() { delay(4); return shared; }
    """
    design = _design(source)
    interp = _error_from(design, sim_backend="interp")
    compiled = _error_from(design, sim_backend="compiled")
    assert interp == compiled
    assert "written by" in compiled and "same cycle" in compiled


def test_cycle_budget_message_identical():
    source = "int main() { while (1) { } return 0; }"
    design = _design(source, flow="c2verilog")
    interp = _error_from(design, max_cycles=500, sim_backend="interp")
    compiled = _error_from(design, max_cycles=500, sim_backend="compiled")
    assert interp == compiled == "cycle budget of 500 exhausted"


def test_unknown_backend_rejected():
    design = _design("int main() { return 3; }", flow="c2verilog")
    with pytest.raises(ValueError, match="unknown sim backend"):
        design.run(sim_backend="jit")


# ---------------------------------------------------------------------------
# Compiled-plan cache and fast path
# ---------------------------------------------------------------------------


def test_plan_is_compiled_once_per_system():
    design = _design("int main(int n) { return n + 1; }", flow="c2verilog")
    system = design.system
    plan = compile_system(system)
    assert compile_system(system) is plan
    assert plan.fast  # one machine, no channels: fast path engages
    # The cached plan is reusable across runs with different arguments.
    assert simulate(system, args=(4,), sim_backend="compiled").value == 5
    assert simulate(system, args=(9,), sim_backend="compiled").value == 10
    assert system._compiled_plan is plan


def test_lone_machine_with_channels_uses_general_path():
    system = _design("""
    chan<int> c;
    int main() { return recv(c); }
    """).system
    assert not compile_system(system).fast


# ---------------------------------------------------------------------------
# Profiler parity
# ---------------------------------------------------------------------------


def _profiled(source, backend, flow="specc", args=()):
    profile = SimProfile()
    result = run_flow(source, flow=flow, args=args, sim_backend=backend,
                      sim_profile=profile)
    return result, profile


@pytest.mark.parametrize("source,flow,args", [
    (_PRODUCER_CONSUMER, "specc", ()),
    ("int main(int n) { int i; int s = 0; for (i = 0; i < n; i = i + 1)"
     " { s = s + i; } return s; }", "c2verilog", (25,)),
], ids=["rendezvous", "single-machine"])
def test_profile_histograms_identical(source, flow, args):
    interp_result, interp_profile = _profiled(source, "interp", flow, args)
    compiled_result, compiled_profile = _profiled(source, "compiled", flow,
                                                  args)
    assert interp_result.observable() == compiled_result.observable()
    assert interp_profile.backend == "interp"
    assert compiled_profile.backend == "compiled"
    assert interp_profile.cycles == compiled_profile.cycles > 0
    assert interp_profile.state_visits == compiled_profile.state_visits
    assert compiled_profile.compile_s >= 0.0
    assert compiled_profile.execute_s > 0.0


def test_profile_render_mentions_hot_states():
    _, profile = _profiled(
        "int main(int n) { int i; int s = 0; for (i = 0; i < n; i = i + 1)"
        " { s = s + i; } return s; }", "compiled", "c2verilog", (25,))
    text = profile.render()
    assert "backend:" in text and "compiled" in text
    assert "cycles/sec" in text
    assert "hot states" in text


# ---------------------------------------------------------------------------
# Corpus replay and signature backend-independence
# ---------------------------------------------------------------------------

_corpus = Corpus(CORPUS_DIR)
_entries = {entry.signature.id: entry for entry in _corpus.entries}


@pytest.mark.parametrize("signature_id", sorted(_entries))
def test_corpus_replays_under_compiled_backend(signature_id, engine):
    """Every triaged divergence reproduces identically under the compiled
    backend — fuzz findings are properties of the flows, not the engine."""
    entry = _entries[signature_id]
    reproduced, detail = replay_entry(entry, engine, sim_backend="compiled")
    assert reproduced, (
        f"{signature_id} reproduces under interp but not compiled: {detail}"
    )


def test_divergence_signatures_backend_independent(engine):
    """Property check: re-judging every corpus program through both
    backends yields identical verdicts, rules, and observables — so a
    campaign's divergence signatures cannot depend on --sim-backend."""
    for entry in _corpus.entries:
        tasks = [
            CellTask(workload=entry.signature.id, source=entry.source,
                     flow=entry.flow, args=tuple(entry.args),
                     sim_backend=backend)
            for backend in ("interp", "compiled")
        ]
        interp, compiled = engine.run_cells(tasks)
        assert _neutral_identity(interp) == _neutral_identity(compiled), (
            f"{entry.signature.id}: signature depends on the backend"
        )


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_run_with_compiled_backend_and_profile(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "loop.c"
    path.write_text(
        "int main(int n) { int i; int s = 0;"
        " for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }"
    )
    assert main(["run", str(path), "--args", "10",
                 "--sim-backend", "compiled", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "value      : 45" in out
    assert "backend:" in out and "compiled" in out
    assert "hot states" in out


def test_cli_matrix_backends_agree(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "gcd.c"
    path.write_text(
        "int main(int a, int b) { while (a != b) {"
        " if (a > b) { a = a - b; } else { b = b - a; } } return a; }"
    )
    assert main(["matrix", str(path), "--args", "48,36", "--no-cache"]) == 0
    interp_out = capsys.readouterr().out
    assert main(["matrix", str(path), "--args", "48,36", "--no-cache",
                 "--sim-backend", "compiled"]) == 0
    compiled_out = capsys.readouterr().out
    # Identical tables: same verdicts, values, cycles under both engines.
    strip = "\n".join(
        line for line in interp_out.splitlines() if "wall" not in line
    )
    strip_c = "\n".join(
        line for line in compiled_out.splitlines() if "wall" not in line
    )
    assert _table_cells(strip) == _table_cells(strip_c)


def _table_cells(text):
    """(flow, verdict, value, cycles) rows from a matrix table."""
    rows = []
    for line in text.splitlines():
        parts = line.split()
        if parts and parts[0] in (
            "cones", "hardwarec", "transmogrifier", "systemc", "c2verilog",
            "cyber", "handelc", "specc", "bachc", "cash",
        ):
            rows.append(tuple(parts[:4]))
    return rows


def test_cache_keys_distinguish_backends(tmp_path):
    """Both backends' artifacts coexist in one cache — the backend is part
    of the content address."""
    from repro.runner import ArtifactCache
    from repro.runner.cache import cell_key

    source = "int main() { return 41; }"
    interp_task = CellTask(workload="w", source=source, flow="c2verilog")
    compiled_task = CellTask(workload="w", source=source, flow="c2verilog",
                             sim_backend="compiled")
    assert cell_key(interp_task) != cell_key(compiled_task)

    cache = ArtifactCache(tmp_path / "cache")
    engine = MatrixEngine(jobs=1, cache=cache, timeout_s=30.0)
    first = engine.run_cells([interp_task, compiled_task])
    assert [r.cached for r in first] == [False, False]
    second = engine.run_cells([interp_task, compiled_task])
    assert [r.cached for r in second] == [True, True]
    assert [r.sim_backend for r in second] == ["interp", "compiled"]
    assert _neutral_identity(second[0]) == _neutral_identity(second[1])
