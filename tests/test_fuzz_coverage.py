"""Coverage signal, seed pool, and the guided campaign loop.

Pins the determinism contracts the guided mode rests on: log2 bucketing,
``CoverageMap`` algebra (merge is order-independent), ``cell_signals``
purity in the non-deterministic fields, power scheduling in ``SeedPool``,
engine-side ``sim_stats`` capture (including the cache bypass), and —
end to end — that two guided campaigns over the same options agree
signature-for-signature and bucket-for-bucket, with coverage strictly
growing over the run.
"""

import random

from repro.fuzz import CoverageMap, FuzzOptions, PoolEntry, SeedPool, run_campaign
from repro.fuzz.coverage import FAMILIES, cell_signals, log2_bucket
from repro.runner import CellResult, MatrixEngine
from repro.runner.cells import CellTask


class TestLog2Bucket:
    def test_integers_bucket_by_doubling(self):
        assert log2_bucket(0) == "0"
        assert log2_bucket(1) == "2^1"
        assert log2_bucket(2) == "2^2"
        assert log2_bucket(3) == "2^2"
        assert log2_bucket(4) == "2^3"
        assert log2_bucket(1023) == "2^10"
        assert log2_bucket(-8) == log2_bucket(8)

    def test_bools_and_strings_pass_through(self):
        assert log2_bucket(True) == "1"
        assert log2_bucket(False) == "0"
        assert log2_bucket("ok") == "ok"
        assert len(log2_bucket("x" * 100)) == 24


class TestCoverageMap:
    def test_add_returns_novelty_and_counts_hits(self):
        cov = CoverageMap()
        assert cov.add(["a", "b", "a"]) == 2
        assert cov.add(["a", "c"]) == 1
        assert cov.distinct() == 3
        assert cov.buckets["a"] == 3

    def test_peek_does_not_record(self):
        cov = CoverageMap()
        cov.add(["a"])
        assert cov.peek(["a", "b", "b"]) == 1
        assert cov.distinct() == 1

    def test_merge_is_order_independent(self):
        parts = [["a", "b"], ["b", "c"], ["c", "d", "a"]]
        forward = CoverageMap()
        for p in parts:
            forward.merge(CoverageMap({s: p.count(s) for s in p}))
        backward = CoverageMap()
        for p in reversed(parts):
            backward.merge(CoverageMap({s: p.count(s) for s in p}))
        assert forward.buckets == backward.buckets

    def test_round_trips_through_dict(self):
        cov = CoverageMap()
        cov.add(["f:verdict:ok", "f:ctr:ops:2^3", "f:verdict:ok"])
        again = CoverageMap.from_dict(cov.to_dict())
        assert again.buckets == cov.buckets
        assert cov.summary() == {
            "distinct": 2, "families": {"ctr": 1, "verdict": 1},
        }

    def test_families_split_on_second_field(self):
        cov = CoverageMap()
        cov.add(["f:verdict:ok", "f:rule:X", "f:phase:parse",
                 "f:ctr:n:0", "f:sim:states:2^2", "f:cycles:2^4"])
        assert set(cov.families()) == set(FAMILIES)


class TestCellSignals:
    def _result(self, **overrides):
        base = dict(
            workload="w", flow="cyber", verdict="ok", rule="",
            wall_s=1.234, cycles=12,
            trace={"spans": [
                {"name": "compile", "args": {"ops": 9, "flag": True},
                 "children": [{"name": "parse", "args": {},
                               "children": []}]},
            ]},
            sim_stats={"machines": 1, "states": 5, "visits": [8, 3]},
        )
        base.update(overrides)
        return CellResult(**base)

    def test_signal_shape(self):
        signals = cell_signals(self._result())
        assert "cyber:verdict:ok" in signals
        assert "cyber:phase:compile" in signals
        assert "cyber:phase:parse" in signals
        assert "cyber:ctr:compile.ops:2^4" in signals
        assert "cyber:sim:machines:1" in signals
        assert "cyber:sim:rank0:2^4" in signals
        assert "cyber:cycles:2^4" in signals

    def test_wall_time_never_leaks(self):
        fast = cell_signals(self._result(wall_s=0.001))
        slow = cell_signals(self._result(wall_s=99.0))
        assert fast == slow

    def test_rule_only_when_present(self):
        rejected = self._result(verdict="rejected", rule="PTR01",
                                trace=None, sim_stats=None, cycles=0)
        signals = cell_signals(rejected)
        assert signals == ["cyber:verdict:rejected", "cyber:rule:PTR01"]


class TestSeedPool:
    def _entry(self, key, novelty=0):
        return PoolEntry(key=key, flow="cyber", profile="scalar",
                         seed=1, statements=8, new_buckets=novelty)

    def test_energy_starts_at_one_plus_novelty(self):
        pool = SeedPool()
        entry = pool.add(self._entry("a", novelty=6))
        assert entry.energy == 7.0
        assert entry.mutation_bonus() == 1
        assert self._entry("x", novelty=100).mutation_bonus() == 2

    def test_add_dedups_by_key(self):
        pool = SeedPool()
        first = pool.add(self._entry("a", novelty=2))
        second = pool.add(self._entry("a", novelty=9))
        assert second is first
        assert first.new_buckets == 9
        assert len(pool) == 1

    def test_selection_is_deterministic_and_decays(self):
        def draws(n):
            pool = SeedPool()
            pool.add(self._entry("a", novelty=10))
            pool.add(self._entry("b", novelty=0))
            rng = random.Random(42)
            return [pool.select(rng).key for _ in range(n)]

        assert draws(6) == draws(6)
        pool = SeedPool()
        hot = pool.add(self._entry("a", novelty=10))
        before = hot.energy
        pool.select(random.Random(0))
        assert hot.energy < before

    def test_hot_parents_dominate_early_draws(self):
        pool = SeedPool()
        pool.add(self._entry("hot", novelty=40))
        for i in range(5):
            pool.add(self._entry(f"cold{i}", novelty=0))
        rng = random.Random(7)
        first_draws = [pool.select(rng).key for _ in range(3)]
        assert "hot" in first_draws


class TestEngineCoverageCapture:
    SOURCE = (
        "int main() {\n"
        "  int a = 3;\n"
        "  int b = a + 4;\n"
        "  return a + b;\n"
        "}\n"
    )

    def _run(self, coverage):
        engine = MatrixEngine(jobs=1, cache=None, trace=coverage,
                              coverage=coverage)
        task = CellTask(workload="w", source=self.SOURCE, flow="cyber")
        return engine.run_cells([task])[0]

    def test_sim_stats_captured_when_enabled(self):
        result = self._run(coverage=True)
        assert result.verdict == "ok"
        assert result.sim_stats
        assert result.sim_stats["machines"] >= 1
        assert result.sim_stats["visits"]
        assert cell_signals(result)

    def test_sim_stats_absent_when_disabled(self):
        assert self._run(coverage=False).sim_stats is None

    def test_cache_hits_without_stats_are_bypassed(self, tmp_path):
        from repro.runner.cache import ArtifactCache

        task = CellTask(workload="w", source=self.SOURCE, flow="cyber")
        plain = MatrixEngine(jobs=1, cache=ArtifactCache(tmp_path / "c"))
        plain.run_cells([task])
        guided = MatrixEngine(jobs=1, cache=ArtifactCache(tmp_path / "c"),
                              trace=True, coverage=True)
        result = guided.run_cells([task])[0]
        assert result.sim_stats, "stale cache hit must not mask coverage"


class TestGuidedCampaign:
    def _options(self, tmp_path, **overrides):
        base = dict(
            flows=("cyber",), seeds=12, reduce=False, mutations=1,
            corpus_dir=str(tmp_path / "corpus"), coverage=True,
        )
        base.update(overrides)
        return FuzzOptions.make(**base)

    def test_guided_campaign_is_deterministic(self, tmp_path):
        first = run_campaign(self._options(tmp_path))
        second = run_campaign(self._options(tmp_path))
        assert first.coverage_growth == second.coverage_growth
        assert first.coverage.buckets == second.coverage.buckets
        assert [d.signature().id for d in first.divergences] \
            == [d.signature().id for d in second.divergences]
        assert first.cells_run == second.cells_run

    def test_coverage_strictly_grows_over_waves(self, tmp_path):
        report = run_campaign(self._options(tmp_path))
        growth = report.coverage_growth
        assert len(growth) >= 2
        assert growth == sorted(growth)
        assert growth[-1] > growth[0]
        assert report.coverage.distinct() == growth[-1]

    def test_campaign_seed_changes_the_schedule(self, tmp_path):
        base = run_campaign(self._options(tmp_path))
        moved = run_campaign(self._options(tmp_path, campaign_seed=9))
        assert base.coverage.buckets != moved.coverage.buckets

    def test_profiles_restrict_generation(self, tmp_path):
        report = run_campaign(self._options(
            tmp_path, profiles=("scalar",), seeds=8, mutations=0))
        assert report.stats["cyber"].seeds == 8
        assert report.coverage.distinct() > 0
