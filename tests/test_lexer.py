"""Lexer unit tests."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_identifiers_and_keywords():
    tokens = tokenize("if whilex while_ while")
    assert tokens[0].kind is TokenKind.KW_IF
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[2].kind is TokenKind.IDENT
    assert tokens[3].kind is TokenKind.KW_WHILE


def test_decimal_literal():
    token = tokenize("12345")[0]
    assert token.kind is TokenKind.INT_LIT
    assert token.value == 12345


def test_hex_literal():
    assert tokenize("0xFF")[0].value == 255
    assert tokenize("0x0")[0].value == 0
    assert tokenize("0xDEAD_BEEF")[0].value == 0xDEADBEEF


def test_binary_literal():
    assert tokenize("0b1010")[0].value == 10
    assert tokenize("0b1111_0000")[0].value == 0xF0


def test_underscore_separators_in_decimal():
    assert tokenize("1_000_000")[0].value == 1000000


def test_malformed_hex_rejected():
    with pytest.raises(LexError):
        tokenize("0x")


def test_number_followed_by_letter_rejected():
    with pytest.raises(LexError):
        tokenize("123abc")


def test_base_type_names():
    for name, info in [("int", (32, True)), ("uint", (32, False)),
                       ("char", (8, True))]:
        token = tokenize(name)[0]
        assert token.kind is TokenKind.TYPE_NAME
        assert token.type_info == info


def test_sized_type_names():
    token = tokenize("uint7")[0]
    assert token.kind is TokenKind.TYPE_NAME
    assert token.type_info == (7, False)
    token = tokenize("int12")[0]
    assert token.type_info == (12, True)


def test_oversized_width_is_plain_identifier():
    token = tokenize("uint999")[0]
    assert token.kind is TokenKind.IDENT


def test_void_and_bool_have_no_width():
    assert tokenize("void")[0].type_info is None
    assert tokenize("bool")[0].type_info is None


def test_true_false_keywords():
    assert tokenize("true")[0].kind is TokenKind.KW_TRUE
    assert tokenize("false")[0].kind is TokenKind.KW_FALSE


def test_maximal_munch_operators():
    assert kinds("<<=") == [TokenKind.SHL_ASSIGN]
    assert kinds("<<") == [TokenKind.SHL]
    assert kinds("< <") == [TokenKind.LT, TokenKind.LT]
    assert kinds(">>=") == [TokenKind.SHR_ASSIGN]
    assert kinds("a+++b") == [
        TokenKind.IDENT, TokenKind.INCREMENT, TokenKind.PLUS, TokenKind.IDENT
    ]


def test_all_compound_assignment_operators():
    text = "+= -= *= /= %= &= |= ^="
    expected = [
        TokenKind.PLUS_ASSIGN, TokenKind.MINUS_ASSIGN, TokenKind.STAR_ASSIGN,
        TokenKind.SLASH_ASSIGN, TokenKind.PERCENT_ASSIGN, TokenKind.AMP_ASSIGN,
        TokenKind.PIPE_ASSIGN, TokenKind.CARET_ASSIGN,
    ]
    assert kinds(text) == expected


def test_line_comments_are_skipped():
    assert kinds("a // comment with * and /\nb") == [TokenKind.IDENT, TokenKind.IDENT]


def test_block_comments_are_skipped():
    assert kinds("a /* multi\nline */ b") == [TokenKind.IDENT, TokenKind.IDENT]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_locations_track_lines_and_columns():
    tokens = tokenize("a\n  b")
    assert tokens[0].location.line == 1
    assert tokens[0].location.column == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3


def test_hardware_keywords():
    text = "par seq chan send recv wait delay within process"
    expected = [
        TokenKind.KW_PAR, TokenKind.KW_SEQ, TokenKind.KW_CHAN, TokenKind.KW_SEND,
        TokenKind.KW_RECV, TokenKind.KW_WAIT, TokenKind.KW_DELAY,
        TokenKind.KW_WITHIN, TokenKind.KW_PROCESS,
    ]
    assert kinds(text) == expected
