"""DOT export tests."""

from repro.flows import compile_flow
from repro.ir import build_function
from repro.ir.dot import cdfg_to_dot, fsmd_to_dot
from repro.ir.passes import inline_program, optimize
from repro.lang import parse


def cdfg_of(source):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return cdfg


def test_cdfg_dot_structure():
    cdfg = cdfg_of(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    dot = cdfg_to_dot(cdfg)
    assert dot.startswith('digraph "main"')
    assert dot.rstrip().endswith("}")
    # One node per reachable block, branch edges labelled.
    for block in cdfg.reachable_blocks():
        assert f"b{block.id} [" in dot
    assert '[label="T"]' in dot and '[label="F"]' in dot


def test_cdfg_dot_escapes_quotes():
    cdfg = cdfg_of("int main(int a) { return a + 1; }")
    dot = cdfg_to_dot(cdfg)
    assert '\\"' not in dot.replace('\\"', "")  # no raw quotes leak


def test_fsmd_dot_includes_done_state():
    design = compile_flow(
        "int main(int a) { if (a > 0) { return 1; } return 2; }",
        flow="c2verilog",
    )
    dot = fsmd_to_dot(design.system.root)
    assert "doublecircle" in dot
    assert "->" in dot


def test_fsmd_dot_flattens_handelc_decision_trees():
    design = compile_flow(
        """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i; }
            }
            return s;
        }
        """,
        flow="handelc",
    )
    dot = fsmd_to_dot(design.system.root)
    # Nested zero-cycle decisions become compound edge labels.
    assert "&" in dot or "!" in dot
