"""Technology-model tests: the cost axioms every comparison relies on."""

import pytest

from repro.rtl import tech as T
from repro.rtl.tech import DEFAULT_TECH, Technology


def test_every_class_has_delay_and_area():
    for op_class in (T.ADD, T.COMPARE, T.LOGIC, T.SHIFT, T.MULTIPLY,
                     T.DIVIDE, T.SELECT, T.CAST, T.MEM_READ, T.MEM_WRITE,
                     T.REGISTER, T.CHANNEL):
        assert DEFAULT_TECH.delay_ns(op_class, 32) >= 0.0
        assert DEFAULT_TECH.area_ge(op_class, 32) >= 0.0


def test_relative_delay_ordering():
    t = DEFAULT_TECH
    assert t.delay_ns(T.LOGIC) < t.delay_ns(T.ADD)
    assert t.delay_ns(T.ADD) < t.delay_ns(T.MULTIPLY)
    assert t.delay_ns(T.MULTIPLY) < t.delay_ns(T.DIVIDE)


def test_relative_area_ordering():
    t = DEFAULT_TECH
    assert t.area_ge(T.LOGIC) < t.area_ge(T.ADD)
    assert t.area_ge(T.ADD) < t.area_ge(T.MULTIPLY)
    assert t.area_ge(T.MULTIPLY) < t.area_ge(T.DIVIDE)


def test_width_scaling_monotone():
    t = DEFAULT_TECH
    for op_class in (T.ADD, T.MULTIPLY, T.COMPARE, T.SHIFT):
        assert t.delay_ns(op_class, 8) <= t.delay_ns(op_class, 32)
        assert t.delay_ns(op_class, 32) <= t.delay_ns(op_class, 64)
        assert t.area_ge(op_class, 8) <= t.area_ge(op_class, 32)


def test_multiplier_area_is_quadratic():
    t = DEFAULT_TECH
    ratio = t.area_ge(T.MULTIPLY, 64) / t.area_ge(T.MULTIPLY, 32)
    assert ratio == pytest.approx(4.0)


def test_adder_area_is_linear():
    t = DEFAULT_TECH
    ratio = t.area_ge(T.ADD, 64) / t.area_ge(T.ADD, 32)
    assert ratio == pytest.approx(2.0)


def test_cast_is_free():
    assert DEFAULT_TECH.delay_ns(T.CAST, 64) == 0.0
    assert DEFAULT_TECH.area_ge(T.CAST, 64) == 0.0


def test_memory_area_scales_with_words_bits_and_ports():
    t = DEFAULT_TECH
    base = t.memory_area_ge(16, 32, 1)
    assert t.memory_area_ge(32, 32, 1) > base
    assert t.memory_area_ge(16, 64, 1) > base
    assert t.memory_area_ge(16, 32, 2) > base


def test_mux_costs_grow_with_inputs():
    t = DEFAULT_TECH
    assert t.mux_area_ge(1, 32) == 0.0
    assert t.mux_delay_ns(1, 32) == 0.0
    assert t.mux_area_ge(4, 32) > t.mux_area_ge(2, 32)
    assert t.mux_delay_ns(8, 32) > t.mux_delay_ns(2, 32)


def test_mux_delay_is_logarithmic_in_inputs():
    t = DEFAULT_TECH
    assert t.mux_delay_ns(8, 32) == pytest.approx(3 * t.mux_delay_ns(2, 32))


def test_register_area_scales_with_width():
    t = DEFAULT_TECH
    assert t.register_area_ge(64) == pytest.approx(2 * t.register_area_ge(32))


def test_custom_technology_overrides():
    slow = Technology(name="slow", base_delay_ns={**T._BASE_DELAY, T.ADD: 10.0})
    assert slow.delay_ns(T.ADD) == pytest.approx(10.0)
    assert slow.delay_ns(T.LOGIC) == DEFAULT_TECH.delay_ns(T.LOGIC)


def test_custom_technology_flows_through_a_design():
    from repro.flows import compile_flow

    source = "int main(int a, int b) { return a * b; }"
    default = compile_flow(source, flow="c2verilog").cost()
    fat_mul = Technology(
        base_area_ge={**T._BASE_AREA, T.MULTIPLY: 36000.0}
    )
    fat = compile_flow(source, flow="c2verilog", tech=fat_mul).cost(fat_mul)
    assert fat.area_ge > default.area_ge
