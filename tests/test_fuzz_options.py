"""The frozen FuzzOptions facade: builders, shims, and the report schema.

Covers the api_redesign contract: ``FuzzOptions`` is immutable with
``make``/``with_`` builders and a JSON-stable identity; legacy
``CampaignConfig`` callers go through a one-warning deprecation shim and
get byte-identical results; ``CampaignReport.to_dict`` is a pinned
schema; and corpus entries record the exact options they were found
under so replays reconstruct them instead of re-deriving ad hoc.
"""

import dataclasses
import json

import pytest

from repro.api import _reset_legacy_warnings
from repro.fuzz import CampaignConfig, CorpusEntry, FuzzOptions, run_campaign
from repro.fuzz.corpus import replay_options
from repro.fuzz.options import coerce_options


class TestFrozenOptions:
    def test_options_are_frozen(self):
        options = FuzzOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.seeds = 5

    def test_make_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="no field"):
            FuzzOptions.make(seedz=10)

    def test_make_normalizes_shapes(self):
        options = FuzzOptions.make(
            flows=["cyber", "cash"], profiles=["scalar"],
            opt_levels=[0, 2], corpus_dir=__import__("pathlib").Path("x"),
        )
        assert options.flows == ("cyber", "cash")
        assert options.profiles == ("scalar",)
        assert options.opt_levels == (0, 2)
        assert options.corpus_dir == "x"

    def test_with_overrides_without_mutating(self):
        base = FuzzOptions(seeds=10)
        derived = base.with_(seeds=20, shard_index=1)
        assert base.seeds == 10 and base.shard_index is None
        assert derived.seeds == 20 and derived.shard_index == 1

    def test_identity_round_trips_through_payload(self):
        options = FuzzOptions(
            flows=("cyber",), profiles=("scalar", "control"),
            seeds=7, campaign_seed=3, opt_levels=(0, 2), shards=4,
        )
        payload = json.loads(json.dumps(options.to_payload()))
        assert FuzzOptions.from_payload(payload) == options

    def test_promote_path_prefers_shard_dir(self):
        assert FuzzOptions().promote_path == FuzzOptions().corpus_path
        sharded = FuzzOptions(shard_dir="deltas/0")
        assert str(sharded.promote_path) == "deltas/0"


class TestLegacyShim:
    def test_campaign_config_warns_once_and_maps_coverage_off(self):
        _reset_legacy_warnings()
        config = CampaignConfig(flows=["cyber"], seeds=4, mutations=0)
        with pytest.warns(DeprecationWarning, match="FuzzOptions"):
            options = coerce_options(config)
        assert isinstance(options, FuzzOptions)
        assert options.coverage is False
        assert options.flows == ("cyber",)
        assert options.seeds == 4
        # Second coercion is silent: one warning per process.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            coerce_options(config)

    def test_frozen_options_pass_through_untouched(self):
        options = FuzzOptions(seeds=3)
        assert coerce_options(options) is options

    def test_shim_results_match_frozen_facade(self, tmp_path):
        _reset_legacy_warnings()
        corpus = tmp_path / "corpus"
        with pytest.warns(DeprecationWarning):
            legacy = run_campaign(CampaignConfig(
                flows=["cyber"], seeds=8, reduce=False, mutations=1,
                corpus_dir=corpus,
            ))
        frozen = run_campaign(FuzzOptions(
            flows=("cyber",), seeds=8, reduce=False, mutations=1,
            corpus_dir=str(corpus), coverage=False,
        ))
        assert legacy.cells_run == frozen.cells_run
        assert legacy.stats["cyber"] == frozen.stats["cyber"]
        assert [d.signature().id for d in legacy.divergences] \
            == [d.signature().id for d in frozen.divergences]


class TestReportSchema:
    def _report(self, tmp_path, **overrides):
        options = FuzzOptions.make(
            flows=("cyber",), seeds=8, reduce=False, mutations=1,
            corpus_dir=str(tmp_path / "corpus"), **overrides,
        )
        return run_campaign(options)

    def test_to_dict_schema_is_pinned(self, tmp_path):
        report = self._report(tmp_path)
        data = report.to_dict()
        assert data["schema"] == "repro-fuzz-report/1"
        assert set(data) == {
            "schema", "options", "stats", "cells_run", "elapsed_s",
            "budget_exhausted", "new_signatures", "known_signatures",
            "divergences", "coverage", "coverage_growth", "shards",
        }
        assert data["options"]["flows"] == ["cyber"]
        assert data["stats"]["cyber"]["seeds"] == 8
        assert data["coverage"]["distinct"] > 0
        # to_json is valid, sorted JSON of the same dict.
        assert json.loads(report.to_json()) == json.loads(
            json.dumps(data, sort_keys=True)
        )

    def test_coverage_off_report_has_null_coverage(self, tmp_path):
        report = self._report(tmp_path, coverage=False)
        data = report.to_dict()
        assert data["coverage"] is None
        assert data["coverage_growth"] == []

    def test_config_alias_still_reads(self, tmp_path):
        report = self._report(tmp_path, coverage=False)
        assert report.config is report.options


class TestRecordedReplayOptions:
    def test_campaign_records_options_on_entries(self, tmp_path):
        from repro.fuzz import promote

        report = run_campaign(FuzzOptions(
            flows=("cash",), seeds=30, reduce=False, mutations=1,
            corpus_dir=str(tmp_path / "empty"), coverage=False,
        ))
        assert report.divergences, "expected cash to diverge in 30 seeds"
        promote(report, tmp_path / "corpus")
        from repro.fuzz import Corpus

        corpus = Corpus(tmp_path / "corpus")
        assert corpus.entries
        for entry in corpus.entries:
            assert entry.options == {"sim_backend": "interp"}

    def test_replay_options_prefers_recorded_then_overrides(self):
        entry = CorpusEntry(
            flow="cyber", kind="mismatch", rule="", program_hash="x",
            source="int main() { return 1; }",
            options={"sim_backend": "compiled", "opt_level": 2},
        )
        recorded = replay_options(entry)
        assert recorded.flow == "cyber"
        assert recorded.sim_backend == "compiled"
        assert recorded.opt_level == 2
        overridden = replay_options(entry, sim_backend="interp", opt_level=0)
        assert overridden.sim_backend == "interp"
        assert overridden.opt_level == 0

    def test_entries_without_options_use_historical_defaults(self):
        from repro.api import DEFAULT_OPT_LEVEL

        entry = CorpusEntry(
            flow="cyber", kind="mismatch", rule="", program_hash="x",
            source="int main() { return 1; }",
        )
        options = replay_options(entry)
        assert options.sim_backend == "interp"
        assert options.opt_level == DEFAULT_OPT_LEVEL
