"""Shared machine-arithmetic tests: the single source of truth every
backend's numerics flow through."""

import pytest

from repro.interp.machine import eval_binary, eval_unary, wrap
from repro.lang.errors import InterpError
from repro.lang.types import BOOL, IntType, PointerType

I8 = IntType(8, signed=True)
U8 = IntType(8, signed=False)
I32 = IntType(32, signed=True)
U32 = IntType(32, signed=False)


def test_addition_wraps():
    assert eval_binary("+", 127, 1, I8) == -128
    assert eval_binary("+", 255, 1, U8) == 0


def test_subtraction_wraps():
    assert eval_binary("-", -128, 1, I8) == 127
    assert eval_binary("-", 0, 1, U8) == 255


def test_multiplication_wraps():
    assert eval_binary("*", 16, 16, U8) == 0
    assert eval_binary("*", 100, 100, I32) == 10000


def test_division_truncates_toward_zero():
    assert eval_binary("/", 7, 2, I32) == 3
    assert eval_binary("/", -7, 2, I32) == -3
    assert eval_binary("/", 7, -2, I32) == -3
    assert eval_binary("/", -7, -2, I32) == 3


def test_modulo_matches_c():
    assert eval_binary("%", 7, 3, I32) == 1
    assert eval_binary("%", -7, 3, I32) == -1
    assert eval_binary("%", 7, -3, I32) == 1
    assert eval_binary("%", -7, -3, I32) == -1


def test_division_by_zero_traps():
    with pytest.raises(InterpError):
        eval_binary("/", 1, 0, I32)
    with pytest.raises(InterpError):
        eval_binary("%", 1, 0, I32)


def test_shift_left():
    assert eval_binary("<<", 1, 4, U8) == 16
    assert eval_binary("<<", 1, 7, U8) == 128
    assert eval_binary("<<", 1, 8, U8) == 0  # shifted out entirely


def test_shift_right_arithmetic_for_signed():
    assert eval_binary(">>", -8, 1, I8) == -4
    assert eval_binary(">>", -1, 7, I8) == -1


def test_shift_right_logical_for_unsigned():
    assert eval_binary(">>", 0x80, 1, U8) == 0x40
    assert eval_binary(">>", 255, 4, U8) == 15


def test_negative_shift_amount_traps():
    with pytest.raises(InterpError):
        eval_binary("<<", 1, -1, I32)


def test_oversized_shift_saturates_not_traps():
    assert eval_binary(">>", 123, 1000, U32) == 0


def test_bitwise_operations():
    assert eval_binary("&", 0b1100, 0b1010, U8) == 0b1000
    assert eval_binary("|", 0b1100, 0b1010, U8) == 0b1110
    assert eval_binary("^", 0b1100, 0b1010, U8) == 0b0110


def test_comparisons_yield_zero_or_one():
    assert eval_binary("<", -1, 0, BOOL) == 1
    assert eval_binary(">=", 5, 5, BOOL) == 1
    assert eval_binary("==", 2, 3, BOOL) == 0
    assert eval_binary("!=", 2, 3, BOOL) == 1


def test_logical_operators():
    assert eval_binary("&&", 5, -2, BOOL) == 1
    assert eval_binary("&&", 5, 0, BOOL) == 0
    assert eval_binary("||", 0, 0, BOOL) == 0
    assert eval_binary("||", 0, 9, BOOL) == 1


def test_unary_negate_and_invert():
    assert eval_unary("-", -128, I8) == -128  # INT_MIN negation wraps
    assert eval_unary("~", 0, U8) == 255
    assert eval_unary("!", 0, BOOL) == 1
    assert eval_unary("!", 42, BOOL) == 0


def test_unknown_operator_rejected():
    with pytest.raises(InterpError):
        eval_binary("**", 2, 3, I32)
    with pytest.raises(InterpError):
        eval_unary("+", 2, I32)


def test_wrap_pointer_type_as_unsigned_word():
    assert wrap(-1, PointerType(I32)) == 0xFFFFFFFF


def test_wrap_bool():
    assert wrap(2, BOOL) == 0
    assert wrap(3, BOOL) == 1


def test_wrap_rejects_non_numeric_types():
    from repro.lang.types import ArrayType

    with pytest.raises(InterpError):
        wrap(1, ArrayType(I32, 2))
