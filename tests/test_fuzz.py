"""Unit tests for the fuzzing subsystem: masks, grammar, mutations,
signatures, corpus storage, and campaign determinism."""

import json

import pytest

from repro.analysis.lint import lint
from repro.flows import COMPILABLE
from repro.fuzz import (
    Corpus,
    CorpusEntry,
    FuzzOptions,
    MUTATION_NAMES,
    all_masks,
    available_profiles,
    feature_mask,
    generate_program,
    mutants,
    program_hash,
    run_campaign,
)
from repro.fuzz.corpus import entry_from_divergence
from repro.fuzz.grammar import GeneratedProgram
from repro.fuzz.masks import GENERATABLE_FEATURES
from repro.fuzz.signature import Divergence, KIND_MISMATCH, Signature
from repro.lang import parse
from repro.lang.semantic import FEATURE_CHANNELS, FEATURE_PAR, FEATURE_POINTERS


class TestMasks:
    def test_every_compilable_flow_has_a_mask(self):
        masks = all_masks()
        assert set(masks) == set(COMPILABLE)

    def test_masks_mirror_the_lint_registry(self):
        # Spot-check flows whose restrictions the paper documents.
        assert not feature_mask("handelc").allows(FEATURE_POINTERS)
        assert feature_mask("handelc").allows(FEATURE_CHANNELS)
        assert feature_mask("handelc").allows(FEATURE_PAR)
        assert not feature_mask("c2verilog").allows(FEATURE_CHANNELS)
        assert feature_mask("cones").requires_static_bounds
        assert not feature_mask("cones").allows_processes

    def test_boundary_features_are_generatable_and_forbidden(self):
        for flow, mask in all_masks().items():
            for feature in mask.boundary_features:
                assert feature in GENERATABLE_FEATURES
                assert not mask.allows(feature)

    def test_unknown_flow_raises(self):
        with pytest.raises(KeyError):
            feature_mask("vaporware")


class TestGrammar:
    def test_profiles_respect_the_mask(self):
        for flow, mask in all_masks().items():
            for profile in available_profiles(mask):
                program = generate_program(11, mask)
                parse(program.source)

    def test_forbidden_profiles_are_excluded(self):
        handelc = available_profiles(feature_mask("handelc"))
        assert "pointer" not in handelc
        assert "channel" in handelc
        c2v = available_profiles(feature_mask("c2verilog"))
        assert "channel" not in c2v
        assert "pointer" in c2v

    def test_boundary_program_names_carry_the_feature(self):
        mask = feature_mask("handelc")
        program = generate_program(7, mask, boundary=True)
        assert program.is_boundary
        assert program.boundary_feature in mask.boundary_features
        assert "bnd" in program.name

    def test_boundary_downgrades_when_nothing_is_forbidden(self):
        mask = feature_mask("specc")     # permissive: nothing to inject
        if mask.boundary_features:
            pytest.skip("specc grew restrictions")
        program = generate_program(3, mask, boundary=True)
        assert not program.is_boundary   # silently a clean-side program


class TestMutations:
    SOURCE = (
        "int main(int x, int y) {\n"
        "    int a = x + y;\n"
        "    int b = (a * 3) & (y ^ x);\n"
        "    for (int i = 0; i < 4; i++) {\n"
        "        a = a + b;\n"
        "    }\n"
        "    return a ^ b;\n"
        "}\n"
    )

    def test_mutants_are_valid_and_distinct(self):
        produced = mutants(self.SOURCE, seed=1, count=4)
        assert produced
        seen = set()
        for mutant in produced:
            assert mutant.name in MUTATION_NAMES
            parse(mutant.source)
            assert mutant.source != self.SOURCE
            assert mutant.source not in seen
            seen.add(mutant.source)

    def test_mutants_are_deterministic(self):
        first = [m.source for m in mutants(self.SOURCE, seed=9, count=3)]
        second = [m.source for m in mutants(self.SOURCE, seed=9, count=3)]
        assert first == second

    def test_static_bound_masks_suppress_loop_rotation(self):
        cones = feature_mask("cones")
        for mutant in mutants(self.SOURCE, seed=2, count=6, mask=cones):
            assert mutant.name != "rotate-loop"


class TestSignatures:
    def test_hash_ignores_layout(self):
        a = "int main(int x, int y) { return x + y; }"
        b = "int main(int x,\n  int y)\n{\n  return x + y;  // sum\n}"
        assert program_hash(a) == program_hash(b)

    def test_hash_sees_token_changes(self):
        a = "int main(int x, int y) { return x + y; }"
        b = "int main(int x, int y) { return x - y; }"
        assert program_hash(a) != program_hash(b)

    def test_id_and_coarse(self):
        sig = Signature("handelc", "mismatch", "", "abc123")
        assert sig.id == "handelc--mismatch--abc123"
        assert sig.coarse == ("handelc", "mismatch", "")
        with_rule = Signature("cones", "lint-disagree", "SYN101", "fff")
        assert with_rule.id == "cones--lint-disagree--SYN101--fff"

    def test_divergence_prefers_reduced_source(self):
        divergence = Divergence(
            flow="cash", kind=KIND_MISMATCH,
            source="int main(int x, int y) { int dead = 1; return x; }",
        )
        full = divergence.signature()
        divergence.reduced_source = "int main(int x, int y) { return x; }"
        reduced = divergence.signature()
        assert full.program_hash != reduced.program_hash
        assert full.coarse == reduced.coarse


class TestCorpusStorage:
    def _divergence(self):
        return Divergence(
            flow="cash", kind=KIND_MISMATCH,
            source="int g = 1;\nint main(int x, int y) { return x; }\n",
            args=(1, 2), detail="test entry", seed=42, profile="seeded",
            extra={"expect": {"verdict": "mismatch", "value": 1}},
        )

    def test_entry_round_trips_through_json(self):
        entry = entry_from_divergence(self._divergence())
        clone = CorpusEntry.from_json(entry.to_json())
        assert clone == entry
        assert json.loads(entry.to_json())["expect"]["verdict"] == "mismatch"

    def test_add_is_idempotent(self, tmp_path):
        corpus = Corpus(tmp_path)
        first = corpus.add(self._divergence())
        assert first is not None
        assert first.path(corpus.root).is_file()
        assert corpus.add(self._divergence()) is None
        assert len(Corpus(tmp_path)) == 1

    def test_known_coarse_matches_reduced_variants(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.add(self._divergence())
        other = self._divergence()
        other.reduced_source = "int main(int x, int y) { return x; }"
        assert other.signature() not in corpus
        assert other.signature().coarse in corpus.known_coarse()


class TestCampaignDeterminism:
    def _run(self, tmp_path):
        options = FuzzOptions(
            flows=("cyber",), seeds=8, jobs=1, reduce=False,
            mutations=1, corpus_dir=str(tmp_path / "corpus"),
            coverage=False,
        )
        return run_campaign(options)

    def test_same_seeds_same_signatures(self, tmp_path):
        first = self._run(tmp_path)
        second = self._run(tmp_path)
        assert [d.signature().id for d in first.divergences] \
            == [d.signature().id for d in second.divergences]
        assert first.cells_run == second.cells_run
        assert first.stats["cyber"].ok == second.stats["cyber"].ok

    def test_boundary_seeds_probe_rejections(self, tmp_path):
        report = self._run(tmp_path)
        stats = report.stats["cyber"]
        assert stats.boundary_seeds == 2          # seeds 3 and 7 of 0..7
        assert stats.expected_rejections == 2     # both rejected, both predicted
        assert stats.seeds == 8

    def test_boundary_rejections_are_lint_predicted(self):
        mask = feature_mask("cyber")
        program = generate_program(3, mask, boundary=True)
        report = lint(program.source, flow="cyber")
        assert report.errors("cyber")


class TestCrossLevelFuzz:
    """The --opt-levels cross-level mode: every clean program also runs
    at each listed opt_level, and level-dependent behaviour is triaged
    as an opt-diverge finding."""

    def _item(self):
        from repro.fuzz.campaign import _WorkItem
        from repro.fuzz.grammar import GeneratedProgram

        program = GeneratedProgram(
            name="synthetic", flow="c2verilog", profile="arith", seed=0,
            source="int main(int a) { return a + 1; }", args=(3,),
        )
        return _WorkItem(program=program)

    def _cell(self, verdict="ok", value=4, observable=None, rule=""):
        from repro.runner.cells import CellResult

        return CellResult(
            workload="synthetic", flow="c2verilog", args=(3,),
            verdict=verdict, value=value, rule=rule,
            observable=observable if observable is not None else [value],
        )

    def test_opt_rule_round_trips(self):
        from repro.fuzz.campaign import _opt_rule, _parse_opt_rule

        assert _opt_rule(2) == "opt1-vs-opt2"
        assert _parse_opt_rule("opt1-vs-opt2") == (1, 2)
        assert _parse_opt_rule("opt0-vs-opt3") == (0, 3)
        assert _parse_opt_rule("TIM102-within-infeasible") is None
        assert _parse_opt_rule("") is None

    def test_tasks_carry_levels_between_lanes_and_mutants(self):
        from repro.fuzz.campaign import _tasks_for

        tasks = _tasks_for(self._item(), opt_levels=(0, 2))
        assert len(tasks) == 3
        assert tasks[1].workload.endswith("-opt0")
        assert tasks[1].options_dict() == {"opt_level": 0}
        assert tasks[2].options_dict() == {"opt_level": 2}
        # Boundary probes never get cross-level variants.
        item = self._item()
        item.program = GeneratedProgram(
            name="b", flow="c2verilog", profile="arith", seed=3,
            source="int main() { return 1; }", args=(),
            boundary_feature="pointers",
        )
        assert len(_tasks_for(item, opt_levels=(0, 2))) == 1

    def test_classify_flags_observable_divergence(self):
        from repro.fuzz.campaign import FlowStats, _classify_item
        from repro.fuzz.signature import KIND_OPT_DIVERGE

        item = self._item()
        results = [
            self._cell(value=4),
            self._cell(value=4),             # opt_level=0 agrees
            self._cell(value=7),             # opt_level=2 drifted
        ]
        stats = FlowStats()
        found = _classify_item(item, results, stats, opt_levels=(0, 2))
        assert stats.opt_cells == 2
        assert [d.kind for d in found] == [KIND_OPT_DIVERGE]
        assert found[0].rule == "opt1-vs-opt2"
        assert "value 4 vs 7" in found[0].detail

    def test_classify_flags_verdict_flip(self):
        from repro.fuzz.campaign import FlowStats, _classify_item
        from repro.fuzz.signature import KIND_OPT_DIVERGE

        item = self._item()
        results = [
            self._cell(value=4),
            self._cell(verdict="error", value=None),   # opt_level=0 broke
            self._cell(value=4),
        ]
        found = _classify_item(item, results, FlowStats(),
                               opt_levels=(0, 2))
        assert [d.kind for d in found] == [KIND_OPT_DIVERGE]
        assert found[0].rule == "opt1-vs-opt0"

    def test_classify_is_quiet_when_levels_agree(self):
        from repro.fuzz.campaign import FlowStats, _classify_item

        item = self._item()
        results = [self._cell(value=4)] * 3
        stats = FlowStats()
        assert _classify_item(item, results, stats,
                              opt_levels=(0, 2)) == []
        assert stats.ok == 1 and stats.opt_cells == 2

    def test_campaign_cross_level_mode_is_clean(self, tmp_path):
        options = FuzzOptions(
            flows=("c2verilog",), seeds=8, jobs=1, reduce=False,
            mutations=0, corpus_dir=str(tmp_path / "corpus"),
            opt_levels=(0, 2), coverage=False,
        )
        report = run_campaign(options)
        stats = report.stats["c2verilog"]
        assert stats.opt_cells == 2 * (stats.seeds - stats.boundary_seeds)
        assert not report.new_signatures, report.new_signatures

    def test_opt_diverge_entry_replays_through_both_levels(self, tmp_path):
        from repro.fuzz import replay_entry
        from repro.fuzz.signature import KIND_OPT_DIVERGE

        source = "int main(int a) { return a * 2; }"
        entry = CorpusEntry(
            flow="c2verilog", kind=KIND_OPT_DIVERGE,
            rule="opt1-vs-opt2", program_hash=program_hash(source),
            source=source, args=[5],
        )
        reproduced, detail = replay_entry(entry)
        # A healthy optimizer makes the levels agree, so the pinned
        # divergence reports as gone — exactly the refresh signal.
        assert not reproduced
        assert "agree" in detail
