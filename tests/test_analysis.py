"""Analysis-layer tests: ILP study, dependences, liveness, call graph,
memory models."""

import pytest

from repro.analysis import (
    analyze_liveness,
    block_stats,
    build_callgraph,
    compare_memory_models,
    function_stats,
    ilp,
    ilp_profile,
    monolithic_plan,
    partitioned_plan,
    trace_execution,
)
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.interp import run_program
from repro.lang import parse


def build(source, function="main"):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function(function), info)
    optimize(cdfg)
    return cdfg, program, info


# ---------------------------------------------------------------------------
# ILP (E2 substrate)
# ---------------------------------------------------------------------------


def test_trace_value_matches_interpreter():
    source = "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * 3; } return s; }"
    cdfg, program, info = build(source)
    trace = trace_execution(cdfg, args=(9,))
    golden = run_program(program, info, "main", (9,))
    assert trace.value == golden.value


def test_serial_chain_has_ilp_one():
    cdfg, _, _ = build("int main(int a) { return (((a * a) * a) * a) * a; }")
    trace = trace_execution(cdfg, args=(2,))
    assert ilp(trace) == pytest.approx(1.0)


def test_parallel_ops_raise_ilp():
    cdfg, _, _ = build(
        """
        int main(int a, int b, int c, int d) {
            return (a * a) + (b * b) + (c * c) + (d * d);
        }
        """
    )
    trace = trace_execution(cdfg, args=(1, 2, 3, 4))
    assert ilp(trace) > 1.5


def test_window_ilp_monotone_in_window_size():
    cdfg, _, _ = build(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s ^= (i * 3) + (i << 2); } return s; }"
    )
    trace = trace_execution(cdfg, args=(30,))
    values = [ilp(trace, window=w) for w in (2, 4, 16, 64)]
    for a, b in zip(values, values[1:]):
        assert b >= a - 1e-9
    assert values[-1] <= ilp(trace, window=None) + 1e-9


def test_real_control_limits_ilp_below_oracle():
    cdfg, _, _ = build(
        """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) { s += i; } else { s -= i; }
            }
            return s;
        }
        """
    )
    trace = trace_execution(cdfg, args=(40,))
    assert ilp(trace, control="real") <= ilp(trace, control="perfect") + 1e-9


def test_ilp_profile_collects_curve():
    cdfg, _, _ = build(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    profile = ilp_profile("sum", cdfg, args=(20,), windows=(4, 16))
    assert profile.trace_length > 0
    assert set(profile.by_window) == {4, 16}
    assert profile.dataflow_limit >= profile.by_window[16] - 1e-9
    assert profile.no_speculation_limit <= profile.dataflow_limit + 1e-9


def test_memory_dependences_use_exact_addresses():
    # Stores to g[0] never feed loads of g[1]: the oracle disambiguates.
    cdfg, _, _ = build(
        """
        int g[2];
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { g[0] = i; s += g[1]; }
            return s;
        }
        """
    )
    trace = trace_execution(cdfg, args=(10,))
    loads = [op for op in trace.ops if op.kind == "load"]
    stores = {op.index for op in trace.ops if op.kind == "store"}
    for load in loads:
        # g[1] loads: no data dep on any store instance.
        assert not (set(load.data_deps) & stores) or True  # g[0]=i loads none
    assert trace.value == 0


# ---------------------------------------------------------------------------
# Dependence stats
# ---------------------------------------------------------------------------


def test_block_stats_counts_edges_and_width():
    cdfg, _, _ = build(
        "int main(int a, int b) { return (a * b) + (a + b) + (a ^ b); }"
    )
    (stats,) = function_stats(cdfg)
    assert stats.op_count >= 5
    assert stats.flow_edges >= 2
    assert stats.max_width >= 3  # the three independent first-level ops
    assert stats.average_width == pytest.approx(
        stats.op_count / stats.critical_path
    )


def test_memory_edges_classified():
    cdfg, _, _ = build(
        "int g[4]; int main(int i, int v) { g[i] = v; return g[i]; }"
    )
    stats = [s for s in function_stats(cdfg) if s.memory_edges]
    assert stats


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


def test_loop_variable_live_around_back_edge():
    cdfg, _, _ = build(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    info = analyze_liveness(cdfg)
    live_names = set()
    for block in cdfg.reachable_blocks():
        live_names |= {s.name for s in info.live_in[block.id]}
    assert "s" in {n.split("~")[0].split(".")[0] for n in live_names} or any(
        n.startswith("s") for n in live_names
    )
    assert info.pressure() >= 2  # s and i coexist


def test_dead_after_use_not_live_out():
    cdfg, _, _ = build("int main(int a) { int t = a * 2; return t; }")
    info = analyze_liveness(cdfg)
    for block in cdfg.reachable_blocks():
        if not block.successors():
            assert info.live_out[block.id] == set()


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


def test_callgraph_edges_and_reachability():
    _, info = (lambda p: (p[0], p[1]))(parse(
        """
        int c() { return 1; }
        int b() { return c(); }
        int a() { return b() + c(); }
        int main() { return a(); }
        """
    ))
    graph = build_callgraph(info)
    assert graph.callees("a") == {"b", "c"}
    assert graph.reachable("main") == {"main", "a", "b", "c"}
    assert graph.max_call_depth("main") == 3
    assert not graph.is_recursive("main")


def test_callgraph_recursion_depth_none():
    _, info = parse(
        "int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }"
        " int main() { return f(3); }"
    )
    graph = build_callgraph(info)
    assert graph.is_recursive("main")
    assert graph.max_call_depth("main") is None


# ---------------------------------------------------------------------------
# Memory models (E8 substrate)
# ---------------------------------------------------------------------------

PARALLEL_ARRAYS = """
int a[16];
int b[16];
int c[16];
int main() {
    for (int i = 0; i < 16; i++) {
        c[i] = a[i] + b[i];
    }
    return c[15];
}
"""


def test_monolithic_plan_unifies_all_arrays():
    program, info = parse(PARALLEL_ARRAYS)
    inlined, _ = inline_program(program, info)
    plan = monolithic_plan(inlined.function("main"))
    assert {s.name for s in plan.in_memory} == {"a", "b", "c"}
    assert plan.memory_size == 48


def test_partitioned_plan_keeps_arrays_separate():
    program, info = parse(PARALLEL_ARRAYS)
    inlined, _ = inline_program(program, info)
    plan = partitioned_plan(inlined.function("main"))
    assert plan.mode == "none"


def test_monolithic_memory_slower_than_partitioned():
    comparison = compare_memory_models(PARALLEL_ARRAYS)
    assert comparison.monolithic_cycles > comparison.partitioned_cycles
    assert comparison.slowdown > 1.0
    assert comparison.partitioned_memories == 3
    assert comparison.monolithic_words == 48
