"""Asynchronous dataflow simulator tests (the CASH timing model)."""

import pytest

from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.interp import run_program
from repro.lang import parse
from repro.rtl.tech import DEFAULT_TECH
from repro.sim.async_sim import AsyncSimulator


def build(source):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return cdfg, program, info


def run_async(source, args=()):
    cdfg, program, info = build(source)
    return AsyncSimulator(cdfg, args=args).run(), program, info


def test_functional_result_matches_interpreter():
    source = "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * i; } return s; }"
    result, program, info = run_async(source, (7,))
    golden = run_program(program, info, "main", (7,))
    assert result.value == golden.value


def test_completion_time_positive_and_ops_counted():
    result, _, _ = run_async("int main(int a, int b) { return a * b + 1; }", (2, 3))
    assert result.value == 7
    assert result.completion_ns > 0
    assert result.ops_fired >= 2


def test_independent_ops_overlap_in_time():
    # Two independent multiplies: completion is far less than their summed
    # delays (they fire concurrently), so average parallelism exceeds 1.
    result, _, _ = run_async(
        """
        int main(int a, int b, int c, int d) {
            return (a * b) + (c * d);
        }
        """,
        (2, 3, 4, 5),
    )
    assert result.value == 26
    assert result.average_parallelism > 1.0


def test_dependent_chain_serializes():
    chain, _, _ = run_async(
        "int main(int a) { return ((a * a) * a) * a; }", (2,)
    )
    flat, _, _ = run_async(
        "int main(int a) { return (a * a) * (a * a); }", (2,)
    )
    assert chain.value == flat.value == 16
    # Tree evaluation finishes strictly earlier than the linear chain.
    assert flat.completion_ns < chain.completion_ns


def test_memory_operations_serialize_per_memory():
    # Two loads from one memory must queue on its single port.
    one_memory, _, _ = run_async(
        "int g[4]; int main(int i) { return g[i] + g[i + 1]; }", (0,)
    )
    two_memories, _, _ = run_async(
        "int g[4]; int h[4]; int main(int i) { return g[i] + h[i + 1]; }", (0,)
    )
    assert two_memories.completion_ns < one_memory.completion_ns


def test_control_transfers_cost_handshakes():
    looped, _, _ = run_async(
        "int main() { int s = 0; for (int i = 0; i < 8; i++) { s += 1; } return s; }"
    )
    straight, _, _ = run_async(
        "int main() { return 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1; }"
    )
    assert looped.value == straight.value == 8
    assert looped.completion_ns > straight.completion_ns


def test_registers_and_memories_reported():
    result, _, _ = run_async(
        "int g[2]; int main(int a) { g[0] = a; g[1] = a * 2; return g[1]; }", (3,)
    )
    assert any(v == [3, 6] for v in result.memories.values())


def test_block_budget_enforced():
    cdfg, _, _ = build("int main() { while (true) { } return 0; }")
    from repro.lang.errors import InterpError

    with pytest.raises(InterpError):
        AsyncSimulator(cdfg, max_blocks=100).run()


def test_latch_is_atomic_across_variables():
    # Classic swap-in-one-block: both registers must read pre-latch values.
    result, program, info = run_async(
        """
        int main(int a, int b) {
            for (int i = 0; i < 3; i++) {
                int t = a + b;
                a = b;
                b = t;
            }
            return a * 1000 + b;
        }
        """,
        (1, 1),
    )
    golden = run_program(program, info, "main", (1, 1))
    assert result.value == golden.value
