"""Differential co-simulation: every flow against the reference interpreter.

Each compiling (workload, flow) cell is executed through the matrix
runner — in parallel, exactly as ``repro sweep`` runs it — and its full
simulated observable (return value, final globals, channel log) must
match the reference C interpreter bit for bit.  Rejections are fine
(that is the paper's Table 1 doing its job); silent divergence is not.
"""

import pytest

from repro.flows import COMPILABLE
from repro.runner import MISMATCH, OK, REJECTED, MatrixEngine, suite_tasks
from repro.runner.cells import canonical_observable
from repro.interp import run_source
from repro.workloads import WORKLOADS

_PAIRS = [(w.name, flow) for w in WORKLOADS for flow in COMPILABLE]


@pytest.fixture(scope="module")
def sweep():
    """One parallel sweep of the full matrix, shared by every test here."""
    engine = MatrixEngine(jobs=4)
    results = engine.run_cells(suite_tasks())
    return {(r.workload, r.flow): r for r in results}


@pytest.fixture(scope="module")
def opt_sweep():
    """The same matrix compiled through the opt_level=2 fixpoint mid-end."""
    engine = MatrixEngine(jobs=4)
    results = engine.run_cells(suite_tasks(opt_level=2))
    return {(r.workload, r.flow): r for r in results}


@pytest.mark.parametrize("workload,flow", _PAIRS,
                         ids=[f"{w}-{f}" for w, f in _PAIRS])
def test_cell_matches_reference_interpreter(sweep, workload, flow):
    cell = sweep[(workload, flow)]
    assert cell.verdict in (OK, REJECTED), (
        f"{workload} x {flow}: verdict {cell.verdict!r} — {cell.note(200)}"
    )
    if cell.verdict != OK:
        return
    spec = next(w for w in WORKLOADS if w.name == workload)
    golden = run_source(spec.source, function="main", args=tuple(spec.args))
    assert cell.observable == canonical_observable(golden.observable()), (
        f"{workload} x {flow} diverged from the reference interpreter"
    )
    assert cell.value == golden.value


def test_no_cell_mismatches(sweep):
    bad = [key for key, cell in sweep.items() if cell.verdict == MISMATCH]
    assert not bad


def test_matrix_is_fully_covered(sweep):
    assert set(sweep) == set(_PAIRS)


def test_every_workload_compiles_somewhere(sweep):
    for spec in WORKLOADS:
        oks = [f for f in COMPILABLE if sweep[(spec.name, f)].verdict == OK]
        assert oks, f"{spec.name} compiled under no flow at all"


@pytest.mark.parametrize("workload,flow", _PAIRS,
                         ids=[f"{w}-{f}" for w, f in _PAIRS])
def test_opt_level2_cell_is_equivalent_and_no_slower(sweep, opt_sweep,
                                                     workload, flow):
    """The fixpoint mid-end may only make cells faster, never different.

    Per cell: the verdict class must match the default sweep (an optimizer
    must not flip a rejection or break a compile), OK cells must stay bit
    identical to the reference interpreter, and the scheduled cycle count
    may only improve."""
    base = sweep[(workload, flow)]
    opt = opt_sweep[(workload, flow)]
    assert opt.verdict == base.verdict, (
        f"{workload} x {flow}: opt_level=2 turned {base.verdict!r} into "
        f"{opt.verdict!r} — {opt.note(200)}"
    )
    if base.verdict != OK:
        return
    spec = next(w for w in WORKLOADS if w.name == workload)
    golden = run_source(spec.source, function="main", args=tuple(spec.args))
    assert opt.observable == canonical_observable(golden.observable()), (
        f"{workload} x {flow} diverged from the reference at opt_level=2"
    )
    assert opt.value == golden.value
    assert opt.cycles <= base.cycles, (
        f"{workload} x {flow}: opt_level=2 regressed cycles "
        f"{base.cycles} -> {opt.cycles}"
    )


def test_opt_level2_matrix_is_fully_covered(opt_sweep):
    assert set(opt_sweep) == set(_PAIRS)
