"""Command-line interface tests."""

import pytest

from repro.__main__ import main


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(
        "int main(int n) { int s = 0;"
        " for (int i = 0; i < n; i++) { s += i * i; } return s; }"
    )
    return str(path)


def test_run_command(program_file, capsys):
    assert main(["run", program_file, "--flow", "handelc", "--args", "5"]) == 0
    out = capsys.readouterr().out
    assert "value      : 30" in out
    assert "cycles" in out
    assert "area" in out


def test_run_unclocked_flow(program_file, capsys):
    assert main(["run", program_file, "--flow", "cash", "--args", "5"]) == 0
    out = capsys.readouterr().out
    assert "unclocked" in out


def test_compile_to_stdout(program_file, capsys):
    assert main(["compile", program_file, "--flow", "c2verilog"]) == 0
    out = capsys.readouterr().out
    assert "module fsmd_main" in out


def test_compile_to_file(program_file, tmp_path, capsys):
    out_path = tmp_path / "out.v"
    assert main(["compile", program_file, "-o", str(out_path)]) == 0
    assert "module fsmd_main" in out_path.read_text()
    assert "wrote" in capsys.readouterr().out


def test_matrix_command(program_file, capsys):
    assert main(["matrix", program_file, "--args", "4"]) == 0
    out = capsys.readouterr().out
    assert "golden model: value = 14" in out
    assert "handelc" in out and "cash" in out
    assert "rejected" in out  # cones rejects the dynamic bound


def test_matrix_prints_per_cell_timing(program_file, capsys):
    assert main(["matrix", program_file, "--args", "4", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "time(ms)" in out
    assert "src" in out
    assert "fresh" in out
    assert "cells (" in out  # summary footer


def test_matrix_parallel_matches_serial(program_file, capsys):
    assert main(["matrix", program_file, "--args", "4", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(["matrix", program_file, "--args", "4", "--no-cache",
                 "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out

    def semantic(text):
        # Everything except volatile numeric columns (wall-clock times).
        rows = []
        for line in text.splitlines():
            cells = line.split()
            rows.append([c for c in cells
                         if not any(ch.isdigit() for ch in c)])
        return rows

    assert semantic(serial) == semantic(parallel)


def test_matrix_uses_cache_on_second_run(program_file, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["matrix", program_file, "--args", "4",
                 "--cache-dir", cache_dir]) == 0
    first = capsys.readouterr().out
    assert "misses" in first
    assert main(["matrix", program_file, "--args", "4",
                 "--cache-dir", cache_dir]) == 0
    second = capsys.readouterr().out
    assert "cache" in second
    assert "0 misses" in second


def test_matrix_exits_nonzero_on_timeout(tmp_path, capsys):
    path = tmp_path / "slow.c"
    path.write_text(
        "int main() { int s = 0;"
        " for (int i = 0; i < 100000000; i++) { s += i; } return s; }"
    )
    assert main(["matrix", str(path), "--no-cache", "--timeout", "0.2"]) == 1
    assert "timeout" in capsys.readouterr().out


def test_sweep_subset(capsys):
    assert main(["sweep", "--no-cache", "--workloads", "gcd,fir8",
                 "--flows", "handelc,bachc"]) == 0
    out = capsys.readouterr().out
    assert "gcd" in out and "fir8" in out
    assert "handelc" in out and "bachc" in out
    assert "4 cells" in out


def test_sweep_rejects_unknown_flow(capsys):
    assert main(["sweep", "--flows", "no-such-flow"]) == 2
    assert "unknown flow" in capsys.readouterr().err


def test_sweep_rejects_unknown_workload(capsys):
    assert main(["sweep", "--workloads", "no-such-workload"]) == 2
    assert "error" in capsys.readouterr().err


def test_sweep_warm_cache_replays(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    common = ["sweep", "--workloads", "gcd", "--cache-dir", cache_dir]
    assert main(common) == 0
    capsys.readouterr()
    assert main(common + ["--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "0 misses" in out
    assert "/ 0 fresh" in out  # every cell replayed from the cache


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Cones" in out and "CASH" in out
    assert "chronological" in out


def test_flows_command(capsys):
    assert main(["flows"]) == 0
    out = capsys.readouterr().out
    for key in ("cones", "handelc", "cash", "ocapi"):
        assert key in out


def test_rejection_exits_nonzero(tmp_path, capsys):
    path = tmp_path / "channels.c"
    path.write_text("chan<int> c; int main() { return recv(c); }")
    assert main(["run", str(path), "--flow", "cash"]) == 1
    assert "error" in capsys.readouterr().err


def test_globals_and_channels_printed(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        chan<int> c;
        int g;
        process void p() { send(c, 7); }
        int main() { g = recv(c); return g; }
        """
    )
    assert main(["run", str(path), "--flow", "bachc"]) == 0
    out = capsys.readouterr().out
    assert "globals" in out and "'g': 7" in out
    assert "channels" in out
