"""Command-line interface tests."""

import pytest

from repro.__main__ import main


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(
        "int main(int n) { int s = 0;"
        " for (int i = 0; i < n; i++) { s += i * i; } return s; }"
    )
    return str(path)


def test_run_command(program_file, capsys):
    assert main(["run", program_file, "--flow", "handelc", "--args", "5"]) == 0
    out = capsys.readouterr().out
    assert "value      : 30" in out
    assert "cycles" in out
    assert "area" in out


def test_run_unclocked_flow(program_file, capsys):
    assert main(["run", program_file, "--flow", "cash", "--args", "5"]) == 0
    out = capsys.readouterr().out
    assert "unclocked" in out


def test_compile_to_stdout(program_file, capsys):
    assert main(["compile", program_file, "--flow", "c2verilog"]) == 0
    out = capsys.readouterr().out
    assert "module fsmd_main" in out


def test_compile_to_file(program_file, tmp_path, capsys):
    out_path = tmp_path / "out.v"
    assert main(["compile", program_file, "-o", str(out_path)]) == 0
    assert "module fsmd_main" in out_path.read_text()
    assert "wrote" in capsys.readouterr().out


def test_matrix_command(program_file, capsys):
    assert main(["matrix", program_file, "--args", "4"]) == 0
    out = capsys.readouterr().out
    assert "golden model: value = 14" in out
    assert "handelc" in out and "cash" in out
    assert "rejected" in out  # cones rejects the dynamic bound


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Cones" in out and "CASH" in out
    assert "chronological" in out


def test_flows_command(capsys):
    assert main(["flows"]) == 0
    out = capsys.readouterr().out
    for key in ("cones", "handelc", "cash", "ocapi"):
        assert key in out


def test_rejection_exits_nonzero(tmp_path, capsys):
    path = tmp_path / "channels.c"
    path.write_text("chan<int> c; int main() { return recv(c); }")
    assert main(["run", str(path), "--flow", "cash"]) == 1
    assert "error" in capsys.readouterr().err


def test_globals_and_channels_printed(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        chan<int> c;
        int g;
        process void p() { send(c, 7); }
        int main() { g = recv(c); return g; }
        """
    )
    assert main(["run", str(path), "--flow", "bachc"]) == 0
    out = capsys.readouterr().out
    assert "globals" in out and "'g': 7" in out
    assert "channels" in out
