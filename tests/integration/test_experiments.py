"""Experiment-shape integration tests: each of the paper's quantitative
claims must hold on our workloads (the benchmarks print the full tables;
these tests pin the *directions*)."""

import pytest

from repro.analysis import compare_memory_models, ilp_profile
from repro.flows import compile_flow, run_flow
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.scheduling import ResourceSet, find_pipelineable_loops, modulo_schedule
from repro.workloads import RECODING_PAIRS, get, unrolled_program


def cdfg_of(source, function="main"):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function(function), info)
    optimize(cdfg)
    return cdfg


# ---------------------------------------------------------------------------
# E2: ILP plateaus around ~5 for control-dominated code (Wall)
# ---------------------------------------------------------------------------


def test_e2_control_code_ilp_plateaus_low():
    w = get("parser")
    profile = ilp_profile("parser", cdfg_of(w.source), args=w.args,
                          windows=(4, 16, 64))
    # Control-dominated code without speculation sits in Wall's low range.
    assert profile.no_speculation_limit < 6.0
    # The window curve saturates: quadrupling the window past 16 buys
    # almost nothing.
    gain = profile.by_window[64] / profile.by_window[16]
    assert gain < 1.6


def test_e2_regular_code_exceeds_the_plateau_with_oracle():
    w = get("dot16")
    profile = ilp_profile("dot16", cdfg_of(w.source), args=w.args, windows=(64,))
    assert profile.dataflow_limit > 6.0  # regular dataflow is the exception
    assert profile.no_speculation_limit < profile.dataflow_limit


# ---------------------------------------------------------------------------
# E3: pipelining works on regular loops, not in general
# ---------------------------------------------------------------------------


def best_loop_speedup(source, resources):
    cdfg = cdfg_of(source)
    loops = find_pipelineable_loops(cdfg)
    assert loops
    return max(modulo_schedule(l, resources).speedup() for l in loops)


def test_e3_regular_loop_pipelines_control_loop_does_not():
    resources = ResourceSet(alu=4, multiplier=2)
    regular = best_loop_speedup(get("dot16").source, resources)
    control = best_loop_speedup(get("gcd").source, resources)
    assert regular >= 2.0
    assert control <= 1.1
    assert regular > 1.8 * control


# ---------------------------------------------------------------------------
# E4: implicit timing rules force recoding
# ---------------------------------------------------------------------------


def test_e4_handelc_rewards_fused_assignments():
    pair = RECODING_PAIRS[0]
    stepped = run_flow(pair.stepped, args=pair.args, flow="handelc")
    fused = run_flow(pair.fused, args=pair.args, flow="handelc")
    assert stepped.value == fused.value
    assert fused.cycles < stepped.cycles  # fewer assignments = fewer cycles
    # ... but the fused chain drags the achievable clock down.
    stepped_clock = compile_flow(pair.stepped, flow="handelc").cost().clock_ns
    fused_clock = compile_flow(pair.fused, flow="handelc").cost().clock_ns
    assert fused_clock >= stepped_clock


def test_e4_transmogrifier_rewards_unrolling():
    w = get("dot16")
    base = run_flow(w.source, args=w.args, flow="transmogrifier")
    program, info, count = unrolled_program(w.source, factor=4)
    from repro.flows import get_flow

    unrolled_design = get_flow("transmogrifier").compile(program, info, "main")
    unrolled = unrolled_design.run(args=w.args)
    assert count == 1
    assert unrolled.value == base.value
    assert unrolled.cycles < base.cycles  # 4 body copies per iteration


def test_e4_scheduled_flow_needs_no_recoding():
    # Bach C's compiler scheduling makes stepped and fused within one cycle
    # of each other: the designer does not recode for timing.
    pair = RECODING_PAIRS[0]
    stepped = run_flow(pair.stepped, args=pair.args, flow="bachc")
    fused = run_flow(pair.fused, args=pair.args, flow="bachc")
    assert stepped.value == fused.value
    assert abs(stepped.cycles - fused.cycles) <= max(2, fused.cycles // 4)


# ---------------------------------------------------------------------------
# E5: explicit concurrency vs compiler-found ILP
# ---------------------------------------------------------------------------


def test_e5_par_beats_sequential_under_handelc():
    sequential = """
    int main(int a) {
        int x = 0; int y = 0; int z = 0;
        x = a * 3;
        y = a * 5;
        z = a * 7;
        return x + y + z;
    }
    """
    parallel = """
    int main(int a) {
        int x = 0; int y = 0; int z = 0;
        par { x = a * 3; y = a * 5; z = a * 7; }
        return x + y + z;
    }
    """
    seq_run = run_flow(sequential, args=(2,), flow="handelc")
    par_run = run_flow(parallel, args=(2,), flow="handelc")
    assert seq_run.value == par_run.value
    assert par_run.cycles == seq_run.cycles - 2  # 3 assignments -> 1 cycle


def test_e5_compiler_flow_finds_the_same_parallelism_without_par():
    # C2Verilog extracts the ILP that Handel-C needed annotations for.
    sequential = """
    int main(int a) {
        int x = a * 3;
        int y = a * 5;
        int z = a * 7;
        return x + y + z;
    }
    """
    result = run_flow(sequential, args=(2,), flow="c2verilog",
                      resources=ResourceSet(multiplier=4, alu=4))
    assert result.value == 30
    assert result.cycles <= 3


# ---------------------------------------------------------------------------
# E6: Cones flattening explodes area with problem size
# ---------------------------------------------------------------------------


def test_e6_cones_area_grows_superlinearly_vs_fsmd_constant():
    template = """
    int data[{n}];
    int main(int x) {{
        int s = 0;
        for (int i = 0; i < {n}; i++) {{
            data[i] = x + i;
            s += data[i] * 3;
        }}
        return s;
    }}
    """
    cones_areas = []
    fsmd_areas = []
    for n in (4, 8, 16):
        source = template.format(n=n)
        cones_areas.append(compile_flow(source, flow="cones").cost().area_ge)
        fsmd_areas.append(compile_flow(source, flow="c2verilog").cost().area_ge)
    assert cones_areas[2] > cones_areas[0] * 3     # grows with unrolling
    assert fsmd_areas[2] < fsmd_areas[0] * 2.5     # near-constant datapath


# ---------------------------------------------------------------------------
# E7: asynchronous completion tracks the dataflow critical path
# ---------------------------------------------------------------------------


def test_e7_async_beats_clocked_on_unbalanced_work():
    w = get("parser")
    sync = run_flow(w.source, args=w.args, flow="c2verilog")
    async_result = run_flow(w.source, args=w.args, flow="cash")
    assert sync.value == async_result.value
    assert async_result.time_ns < sync.time_ns


# ---------------------------------------------------------------------------
# E8: the monolithic memory serializes
# ---------------------------------------------------------------------------


def test_e8_monolithic_memory_slows_parallel_arrays():
    source = """
    int a[24];
    int b[24];
    int c[24];
    int main() {
        for (int i = 0; i < 24; i++) { c[i] = a[i] * b[i] + a[i]; }
        return c[23];
    }
    """
    comparison = compare_memory_models(source)
    assert comparison.slowdown > 1.15


# ---------------------------------------------------------------------------
# E10: pointer analysis buys back the partitioned memories
# ---------------------------------------------------------------------------


def test_e10_pointer_analysis_recovers_cycles():
    w = get("ptr_sum")
    with_analysis = run_flow(w.source, args=w.args, flow="c2verilog",
                             pointer_analysis=True)
    without = run_flow(w.source, args=w.args, flow="c2verilog",
                       pointer_analysis=False)
    assert with_analysis.value == without.value
    assert with_analysis.cycles <= without.cycles
