"""Boot the serving tier as a real subprocess and hammer it.

This is the CI smoke contract: the server must come up, absorb a
duplicate-heavy load with zero 5xx, answer most requests from the warm
tiers, and drain cleanly on SIGTERM (exit code 0)."""

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.loadgen import run_load, zipfian_schedule

LISTEN = re.compile(r"listening on http://([\d.]+):(\d+)")

SOURCES = [
    "int main() { int a = 3; int b = 4; return a * b + %d; }" % n
    for n in range(4)
]


@pytest.fixture
def server(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
         "--drain-grace", "5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        deadline = time.monotonic() + 30
        line = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line and proc.poll() is not None:
                pytest.fail(f"server died during boot (rc={proc.returncode})")
            match = LISTEN.search(line)
            if match:
                break
        else:
            pytest.fail("server never printed its listen line")
        yield proc, match.group(1), int(match.group(2))
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.wait()


def test_smoke_duplicate_heavy_load_then_clean_drain(server):
    proc, host, port = server
    distinct = [
        {"source": source, "flow": "handelc", "args": []}
        for source in SOURCES
    ]
    schedule = zipfian_schedule(distinct, n=60, s=1.3, seed=11)
    report = asyncio.run(
        run_load(host, port, schedule, concurrency=6, client_id="smoke")
    )

    assert report.transport_errors == 0
    assert report.count_5xx() == 0, report.status_counts
    assert report.ok_ratio() == 1.0, report.status_counts

    stats = report.server_stats
    assert stats is not None
    dedup = stats["dedup"]
    warm = dedup["hits"] + dedup["coalesced"]
    total = warm + dedup["compiles"]
    assert total == 60
    # Zipfian s=1.3 over 4 keys is duplicate-heavy: most requests must be
    # answered without a worker dispatch.
    assert warm / total > 0.5, dedup
    assert dedup["compiles"] <= len(distinct)

    # SIGTERM -> graceful drain, exit 0, summary line on stdout.
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail("server did not drain within 30s of SIGTERM")
    tail = proc.stdout.read()
    assert rc == 0, tail
    assert "drained cleanly" in tail, tail
