"""The framework's central invariant, checked exhaustively:

    for every workload and every flow that accepts it,
        simulated hardware outputs == golden-model outputs
        (return value, global state, and channel traffic).

Flows that reject a workload must do so with an explicit, historically
motivated error — never silently and never with a crash.
"""

import pytest

from repro.flows import COMPILABLE, REGISTRY, FlowError, UnsupportedFeature
from repro.interp import run_program
from repro.lang import parse
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def golden_results():
    results = {}
    for workload in WORKLOADS:
        program, info = parse(workload.source)
        results[workload.name] = (
            program, info, run_program(program, info, "main", workload.args)
        )
    return results


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
@pytest.mark.parametrize("flow_key", COMPILABLE)
def test_flow_matches_golden_model(workload, flow_key, golden_results):
    program, info, golden = golden_results[workload.name]
    flow = REGISTRY[flow_key]
    try:
        design = flow.compile(program, info, "main")
    except (UnsupportedFeature, FlowError) as rejection:
        # Rejection must carry the flow's name and a reason.
        assert flow_key in str(rejection)
        assert len(str(rejection)) > len(flow_key) + 5
        return
    result = design.run(args=workload.args)
    assert result.value == golden.value, (
        f"{flow_key} computed {result.value}, golden {golden.value}"
    )
    for name, expected in golden.globals.items():
        if name in result.globals:
            assert result.globals[name] == expected, f"global {name}"
    if result.channel_log:
        assert result.channel_log == golden.channel_log


EXPECTED_REJECTIONS = {
    # (workload, flow) pairs that MUST be rejected, per Table 1 features.
    ("ptr_sum", "cones"), ("ptr_sum", "hardwarec"), ("ptr_sum", "bachc"),
    ("ptr_sum", "handelc"), ("ptr_sum", "cyber"), ("ptr_sum", "transmogrifier"),
    ("ptr_sum", "systemc"),
    ("prodcons", "cones"), ("prodcons", "c2verilog"), ("prodcons", "cash"),
    ("prodcons", "transmogrifier"),
    ("gcd", "cones"),  # dynamic loop bound
}


@pytest.mark.parametrize("workload_name,flow_key", sorted(EXPECTED_REJECTIONS))
def test_historical_rejections_enforced(workload_name, flow_key, golden_results):
    program, info, _ = golden_results[workload_name]
    with pytest.raises((UnsupportedFeature, FlowError)):
        REGISTRY[flow_key].compile(program, info, "main")


EXPECTED_ACCEPTANCE = {
    # Flagship pairings the paper highlights.
    ("ptr_sum", "c2verilog"), ("ptr_sum", "cash"), ("ptr_sum", "specc"),
    ("prodcons", "handelc"), ("prodcons", "bachc"), ("prodcons", "hardwarec"),
    ("prodcons", "systemc"),
    ("fir8", "cones"),
}


@pytest.mark.parametrize("workload_name,flow_key", sorted(EXPECTED_ACCEPTANCE))
def test_flagship_pairings_accepted(workload_name, flow_key, golden_results):
    program, info, golden = golden_results[workload_name]
    from repro.workloads import get

    design = REGISTRY[flow_key].compile(program, info, "main")
    result = design.run(args=get(workload_name).args)
    assert result.value == golden.value
