"""Flow-level tests: each surveyed language's documented behavior."""

import pytest

from repro.flows import (
    COMPILABLE,
    REGISTRY,
    FlowError,
    OcapiModule,
    UnsupportedFeature,
    compile_flow,
    get_flow,
    run_flow,
    table1_rows,
)
from repro.interp import run_source
from repro.scheduling import ConstraintInfeasible, ResourceSet


# ---------------------------------------------------------------------------
# Registry / Table 1
# ---------------------------------------------------------------------------


def test_registry_covers_all_table1_languages():
    assert set(REGISTRY) == {
        "cones", "hardwarec", "transmogrifier", "systemc", "ocapi",
        "c2verilog", "cyber", "handelc", "specc", "bachc", "cash",
    }


def test_table1_rows_are_chronological_with_notes():
    rows = table1_rows()
    assert rows[0]["language"] == "Cones"
    assert rows[-1]["language"] == "CASH"
    assert rows[0]["note"] == "Early, combinational only"
    notes = {r["language"]: r["note"] for r in rows}
    assert notes["Bach C"] == "Untimed semantics (Sharp)"
    assert notes["Handel-C"] == "C with CSP (Celoxica)"
    assert notes["C2Verilog"] == "Comprehensive; company defunct"


def test_unknown_flow_raises_with_known_list():
    with pytest.raises(KeyError) as excinfo:
        get_flow("vhdl")
    assert "known flows" in str(excinfo.value)


def test_concurrency_axis_matches_paper():
    # "About half the languages require the programmer to express
    # concurrency" — explicit vs compiler split.
    rows = table1_rows()
    explicit = {r["language"] for r in rows if r["concurrency"] == "explicit"}
    compiler = {r["language"] for r in rows if r["concurrency"] == "compiler"}
    assert {"HardwareC", "SystemC", "Handel-C", "SpecC", "Bach C"} <= explicit
    assert {"Cones", "Transmogrifier C", "C2Verilog", "CASH"} <= compiler


# ---------------------------------------------------------------------------
# Handel-C: one cycle per assignment, zero-cycle control
# ---------------------------------------------------------------------------


def handelc_cycles(source, args=()):
    return run_flow(source, args=args, flow="handelc").cycles


def test_handelc_charges_one_cycle_per_assignment():
    # prologue(1) + three assignments = 4 cycles.
    assert handelc_cycles(
        "int main(int a) { int x = a; x = x + 1; x = x * 2; return x; }", (3,)
    ) == 4


def test_handelc_expressions_are_free():
    # One huge expression still costs exactly one assignment cycle.
    one = handelc_cycles("int main(int a) { int x = a + 1; return x; }", (1,))
    big = handelc_cycles(
        "int main(int a) { int x = ((a + 1) * (a + 2)) ^ ((a + 3) * (a + 4)); return x; }",
        (1,),
    )
    assert one == big == 2


def test_handelc_control_costs_nothing():
    # if/else steers between single-assignment branches: 1 (prologue) +
    # 1 (x init) + 1 (branch assignment) = 3 cycles either way.
    source = """
    int main(int a) {
        int x = 0;
        if (a > 0) { x = 1; } else { x = 2; }
        return x;
    }
    """
    assert handelc_cycles(source, (5,)) == 3
    assert handelc_cycles(source, (-5,)) == 3


def test_handelc_loop_costs_assignments_only():
    # Each iteration: body assignment + step assignment = 2 cycles.
    # Total: prologue + s-init + i-init + 4 * 2 = 11.
    source = "int main() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } return s; }"
    assert handelc_cycles(source) == 11


def test_handelc_delay_takes_its_cycles():
    base = handelc_cycles("int main() { int x = 1; return x; }")
    delayed = handelc_cycles("int main() { int x = 1; delay(5); return x; }")
    assert delayed == base + 5


def test_handelc_par_runs_branches_in_lockstep():
    sequential = handelc_cycles(
        "int main(int a) { int x = 0; int y = 0; x = a + 1; y = a + 2; return x + y; }",
        (1,),
    )
    parallel = handelc_cycles(
        "int main(int a) { int x = 0; int y = 0; par { x = a + 1; y = a + 2; } return x + y; }",
        (1,),
    )
    assert parallel == sequential - 1  # two assignments share one cycle


def test_handelc_zero_time_loop_rejected():
    with pytest.raises(UnsupportedFeature) as excinfo:
        compile_flow("int main(int a) { while (a > 0) { } return 0; }", flow="handelc")
    assert "zero-time" in str(excinfo.value)


def test_handelc_par_with_control_flow_rejected():
    with pytest.raises(UnsupportedFeature):
        compile_flow(
            """
            int main(int a) {
                int x = 0; int y = 0;
                par {
                    x = 1;
                    seq { while (y < a) { y = y + 1; } }
                }
                return x + y;
            }
            """,
            flow="handelc",
        )


def test_handelc_eager_expressions_documented_semantics():
    # && evaluates both sides in hardware: no trap because there is no
    # division; the result still matches C's value semantics.
    result = run_flow(
        "int main(int a, int b) { return (a > 0 && b > 0) ? 1 : 0; }",
        args=(1, 0), flow="handelc",
    )
    assert result.value == 0


# ---------------------------------------------------------------------------
# Transmogrifier C: one cycle per loop iteration and function call
# ---------------------------------------------------------------------------


def test_transmogrifier_iteration_costs_one_cycle():
    source = "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i * 7; } return s; }"
    result = run_flow(source, flow="transmogrifier")
    baseline = run_flow(
        "int main() { int s = 0; for (int i = 0; i < 20; i++) { s += i * 7; } return s; }",
        flow="transmogrifier",
    )
    assert baseline.cycles - result.cycles == 10  # exactly 1 cycle/iteration


def test_transmogrifier_function_calls_cost_a_cycle():
    inlined_only = run_flow(
        "int main(int a) { return a + 1 + (a + 1); }", args=(3,), flow="transmogrifier"
    )
    with_calls = run_flow(
        "int f(int x) { return x + 1; } int main(int a) { return f(a) + f(a); }",
        args=(3,), flow="transmogrifier",
    )
    assert with_calls.value == inlined_only.value
    # Each call marks a one-cycle boundary, and the boundary also stops the
    # surrounding expression from chaining through it: one boundary state
    # per call plus the split body states.
    assert inlined_only.cycles == 1
    assert with_calls.cycles == 4


def test_transmogrifier_straight_line_is_single_cycle():
    result = run_flow(
        "int main(int a) { int x = a * 3; int y = x + 7; int z = y ^ a; return z; }",
        args=(5,), flow="transmogrifier",
    )
    assert result.cycles == 1


def test_transmogrifier_clock_stretches_with_chain_depth():
    shallow = compile_flow(
        "int main(int a) { return a + 1; }", flow="transmogrifier"
    ).cost()
    deep = compile_flow(
        "int main(int a) { return ((((a * 3) * 5) * 7) * 11) * 13; }",
        flow="transmogrifier",
    ).cost()
    assert deep.clock_ns > shallow.clock_ns * 3


def test_transmogrifier_rejects_extensions():
    for source in (
        "int main() { par { int x = 1; } return 0; }",
        "chan<int> c; int main() { return recv(c); }",
        "int main() { within (1) { int x = 1; } return 0; }",
    ):
        with pytest.raises(UnsupportedFeature):
            compile_flow(source, flow="transmogrifier")


# ---------------------------------------------------------------------------
# HardwareC: in-language timing constraints
# ---------------------------------------------------------------------------


def test_hardwarec_honors_feasible_constraint():
    result = run_flow(
        """
        int main(int a, int b) {
            int x = 0;
            within (2) { x = a + b; x = x * 3; }
            return x;
        }
        """,
        args=(4, 5), flow="hardwarec",
    )
    assert result.value == 27


def test_hardwarec_infeasible_constraint_raises():
    source = """
    int main(int a) {
        int x = 0;
        within (1) {
            x = a / 3;
            x = x / 5;
        }
        return x;
    }
    """
    with pytest.raises(ConstraintInfeasible):
        compile_flow(source, flow="hardwarec")


def test_c2verilog_ignores_within_by_policy():
    # Same constraint-breaking program compiles fine under C2Verilog?  No:
    # C2Verilog rejects `within` outright (constraints are compile options).
    with pytest.raises(UnsupportedFeature):
        compile_flow(
            "int main(int a) { within (1) { int x = a / 3; } return 0; }",
            flow="c2verilog",
        )


# ---------------------------------------------------------------------------
# SpecC refinement, Bach C untimed, Cyber restrictions
# ---------------------------------------------------------------------------


def test_specc_refinement_trades_cycles_for_area():
    source = """
    int main(int a, int b, int c, int d) {
        return a * b + c * d + a * d + b * c;
    }
    """
    spec = compile_flow(source, flow="specc", refine="specification")
    impl = compile_flow(source, flow="specc", refine="implementation",
                        resources=ResourceSet(multiplier=1, alu=1))
    spec_run = spec.run(args=(1, 2, 3, 4))
    impl_run = impl.run(args=(1, 2, 3, 4))
    assert spec_run.value == impl_run.value == 24
    assert impl_run.cycles >= spec_run.cycles
    assert impl.cost().area_ge < spec.cost().area_ge


def test_specc_unknown_refinement_level():
    with pytest.raises(FlowError):
        compile_flow("int main() { return 0; }", flow="specc", refine="rtl2")


def test_bachc_schedules_freely_beats_handelc_on_assignment_heavy_code():
    source = """
    int main(int a) {
        int t1 = a + 1;
        int t2 = a + 2;
        int t3 = a + 3;
        int t4 = a + 4;
        return t1 + t2 + t3 + t4;
    }
    """
    bach = run_flow(source, args=(1,), flow="bachc")
    handel = run_flow(source, args=(1,), flow="handelc")
    assert bach.value == handel.value
    assert bach.cycles < handel.cycles  # untimed semantics pack the adds


def test_cyber_rejects_pointers_and_recursion():
    with pytest.raises(UnsupportedFeature):
        compile_flow("int main() { int x = 1; int *p = &x; return *p; }", flow="cyber")
    with pytest.raises(UnsupportedFeature):
        compile_flow(
            "int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }"
            " int main() { return f(3); }",
            flow="cyber",
        )


# ---------------------------------------------------------------------------
# C2Verilog breadth and CASH
# ---------------------------------------------------------------------------


def test_c2verilog_compiles_pointers_and_bounded_recursion():
    result = run_flow(
        """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int main(int n) {
            int x = 10;
            int *p = &x;
            *p = fact(n);
            return x;
        }
        """,
        args=(5,), flow="c2verilog",
    )
    assert result.value == 120


def test_c2verilog_pointer_analysis_toggle_changes_memories():
    source = """
    int buf[8];
    int main() {
        int *p = &buf[0];
        int s = 0;
        for (int i = 0; i < 8; i++) { s += *p; p = p + 1; }
        return s;
    }
    """
    analyzed = compile_flow(source, flow="c2verilog", pointer_analysis=True)
    naive = compile_flow(source, flow="c2verilog", pointer_analysis=False)
    assert analyzed.run().value == naive.run().value == 0
    assert analyzed.artifacts[0].plan.memory_symbol is None
    assert naive.artifacts[0].plan.memory_symbol is not None


def test_cash_reports_time_not_cycles():
    result = run_flow("int main(int a) { return a * a + 1; }", args=(6,), flow="cash")
    assert result.value == 37
    assert result.cycles == 0
    assert result.time_ns > 0
    assert result.stats["ops_fired"] >= 2


def test_cash_dataflow_beats_balanced_clock_on_unbalanced_paths():
    # The synchronous flow pays the worst-case clock every cycle; the
    # asynchronous one finishes each op as fast as it actually is.
    source = "int main(int a) { int s = 0; for (int i = 0; i < 6; i++) { s += a ^ i; } return s; }"
    sync = run_flow(source, args=(3,), flow="c2verilog")
    async_result = run_flow(source, args=(3,), flow="cash")
    assert sync.value == async_result.value
    assert async_result.time_ns < sync.time_ns


def test_cash_cost_is_spatial():
    design = compile_flow(
        "int main(int a) { return (a * a) + (a * 3) + (a * 5); }", flow="cash"
    )
    cost = design.cost()
    assert cost.functional_units == len(list(design.cdfg.iter_ops()))
    assert cost.clock_ns == 0.0


# ---------------------------------------------------------------------------
# Ocapi structural API
# ---------------------------------------------------------------------------


def test_ocapi_structural_accumulator():
    m = OcapiModule("accumulate")
    n = m.input("n")
    acc = m.register("acc")
    i = m.register("i")
    entry = m.entry
    loop = m.state("loop")
    done = m.state("done")
    entry.latch(acc, 0).latch(i, 0).goto(loop)
    next_i = loop.add(i, 1)
    loop.latch(acc, loop.add(acc, i)).latch(i, next_i)
    # The exit test is combinational in the same state, so it must use the
    # *next* value of i — exactly the D-input forwarding a designer wires.
    loop.branch(loop.lt(next_i, n), loop, done)
    done.done(done.read(acc))
    design = m.build()
    result = design.run(args=(10,))
    assert result.value == 45
    assert result.cycles == 12  # entry + 10 iterations + the done state
    assert design.cost().area_ge > 0


def test_ocapi_memory_and_select():
    m = OcapiModule("table")
    idx = m.input("idx")
    mem = m.memory("lut", size=4)
    out = m.register("out")
    entry = m.entry
    fill = m.state("fill")
    read = m.state("read")
    stop = m.state("stop")
    entry.goto(fill)
    fill.store(mem, 0, 10).store(mem, 1, 20).store(mem, 2, 30).store(mem, 3, 40)
    fill.goto(read)
    read.latch(out, read.load(mem, idx)).goto(stop)
    stop.done(stop.read(out))
    assert m.build().run(args=(2,)).value == 30


def test_ocapi_incomplete_state_rejected():
    m = OcapiModule("broken")
    m.entry  # creates a state with no transition
    with pytest.raises(FlowError):
        m.build()


def test_ocapi_compile_refuses_c_source():
    with pytest.raises(FlowError):
        get_flow("ocapi").compile_source("int main() { return 0; }")


# ---------------------------------------------------------------------------
# Cross-flow sanity
# ---------------------------------------------------------------------------


def test_all_flows_agree_on_simple_kernel():
    source = "int main(int a, int b) { int s = 0; for (int i = 0; i < 8; i++) { s += (a + i) * b; } return s; }"
    golden = run_source(source, args=(3, 2)).value
    for key in COMPILABLE:
        result = run_flow(source, args=(3, 2), flow=key)
        assert result.value == golden, key


def test_flow_results_expose_cost_and_stats():
    design = compile_flow("int main(int a) { return a + 1; }", flow="hardwarec")
    cost = design.cost()
    assert cost.area_ge > 0 and cost.clock_ns > 0 and cost.states >= 1
    result = design.run(args=(1,))
    assert "scheduler" in result.stats or "stall_cycles" in result.stats
