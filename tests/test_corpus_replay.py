"""Replay the triaged failure corpus as regression tests.

Each JSON file under tests/corpus/<flow>/ pins one reduced divergence the
fuzzer found (or a seeded known-divergence reproducer): the program, its
inputs, and the verdict the flow produced.  Replaying asserts the pinned
behaviour still holds — if an entry starts failing here, the underlying
divergence changed: either the bug was fixed (delete or refresh the
entry, deliberately) or behaviour drifted (investigate).

The suite also enforces corpus hygiene: content hashes match sources,
filenames match signatures, and every reproducer is 1-minimal at
statement granularity under its own signature predicate.
"""

from pathlib import Path

import pytest

from repro.fuzz import Corpus, is_statement_minimal, program_hash, replay_entry
from repro.fuzz.campaign import reduction_predicate
from repro.fuzz.signature import Divergence
from repro.runner.engine import MatrixEngine

CORPUS_DIR = Path(__file__).parent / "corpus"

_corpus = Corpus(CORPUS_DIR)
_entries = {entry.signature.id: entry for entry in _corpus.entries}


@pytest.fixture(scope="module")
def engine():
    return MatrixEngine(jobs=1, cache=None, timeout_s=30.0, max_cycles=200_000)


def test_corpus_is_populated():
    assert len(_corpus) >= 10


def test_hashes_match_sources():
    for entry in _corpus.entries:
        assert program_hash(entry.source) == entry.program_hash, (
            f"{entry.signature.id}: stored source no longer matches its hash"
        )


def test_filenames_match_signatures():
    for entry in _corpus.entries:
        path = entry.path(_corpus.root)
        assert path.is_file(), f"{entry.signature.id} expected at {path}"


@pytest.mark.parametrize("signature_id", sorted(_entries))
def test_entry_replays(signature_id, engine):
    entry = _entries[signature_id]
    reproduced, detail = replay_entry(entry, engine)
    assert reproduced, (
        f"{signature_id} no longer reproduces: {detail}\n"
        f"If the underlying divergence was fixed on purpose, delete or "
        f"refresh this corpus entry."
    )


@pytest.mark.parametrize("opt_level", [0, 2])
@pytest.mark.parametrize("signature_id", sorted(_entries))
def test_entry_replays_at_every_opt_level(signature_id, opt_level, engine):
    """The corpus pins flow bugs, not optimizer accidents: every entry
    must keep reproducing with the mid-end off (0) and with the liveness
    fixpoint pipeline on (2), exactly as it does at the default level."""
    entry = _entries[signature_id]
    reproduced, detail = replay_entry(entry, engine, opt_level=opt_level)
    assert reproduced, (
        f"{signature_id} stops reproducing at opt_level={opt_level}: "
        f"{detail}\nAn optimization level must not mask or unmask a "
        f"pinned flow divergence."
    )


@pytest.mark.parametrize("signature_id", sorted(_entries))
def test_entry_is_statement_minimal(signature_id, engine):
    entry = _entries[signature_id]
    divergence = Divergence(
        flow=entry.flow, kind=entry.kind, source=entry.source,
        args=tuple(entry.args), rule=entry.rule,
    )
    predicate = reduction_predicate(divergence, engine)
    if predicate is None:      # metamorphic entries replay as pairs instead
        pytest.skip("kind is not reduced on a single program")
    assert is_statement_minimal(entry.source, predicate), (
        f"{signature_id} is not 1-minimal: some single statement can be "
        f"deleted without losing the divergence"
    )
