"""Pretty-printer tests: printing must be a parse fixed point."""

import pytest

from repro.interp import run_program
from repro.lang import parse, print_program
from repro.workloads import WORKLOADS


def roundtrip(source):
    program1, info1 = parse(source)
    text1 = print_program(program1)
    program2, info2 = parse(text1)
    text2 = print_program(program2)
    assert text1 == text2
    return program1, info1, program2, info2


def test_roundtrip_simple_function():
    roundtrip("int main() { return 1 + 2 * 3; }")


def test_roundtrip_control_flow():
    roundtrip(
        """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i; } else { s -= 1; }
            }
            while (s > 100) { s = s / 2; }
            do { s++; } while (s < 0);
            return s;
        }
        """
    )


def test_roundtrip_hardware_constructs():
    roundtrip(
        """
        chan<int8> c;
        process void p() {
            par { send(c, 1); delay(2); }
            wait();
        }
        int main() {
            int x = 0;
            within (2) { x = 1; x = x * 2; }
            return x + recv(c);
        }
        """
    )


def test_roundtrip_pointers_and_arrays():
    roundtrip(
        """
        int g[4] = {1, 2, 3, 4};
        int main() {
            int *p = &g[0];
            *p = 9;
            return g[0] + *(p + 1);
        }
        """
    )


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_workloads_roundtrip_and_preserve_semantics(workload):
    program1, info1, program2, info2 = roundtrip(workload.source)
    before = run_program(program1, info1, "main", workload.args)
    after = run_program(program2, info2, "main", workload.args)
    assert before.observable() == after.observable()
