"""Replay the batch divergence-boundary corpus.

Every entry in ``tests/batch_corpus/`` pins the per-lane outcome of one
program whose lanes diverge — early returns, per-lane trip counts,
lane-dependent aliasing, traps, budget exhaustion.  The replay checks
the batched engine against the pins *and* the pins against the scalar
backends, so drift in either direction fails loudly.  See the corpus
README for the schema.
"""

import json
import pathlib

import pytest

from repro.flows import compile_flow
from repro.lang import InterpError
from repro.sim import HAVE_NUMPY, simulate_batched

CORPUS_DIR = pathlib.Path(__file__).parent / "batch_corpus"


def _corpus_entries():
    return sorted(CORPUS_DIR.glob("*.json"))


def _load(path):
    return json.loads(path.read_text())


def _batch_outcome(lane):
    if not lane.ok:
        return {"ok": False, "error_kind": lane.error_kind,
                "error": lane.error}
    return {
        "ok": True,
        "value": lane.result.value,
        "cycles": lane.result.cycles,
        "globals": {k: v for k, v in sorted(lane.result.globals.items())},
    }


def _scalar_outcome(design, args, backend, max_cycles):
    try:
        r = design.run(args=tuple(args), sim_backend=backend,
                       max_cycles=max_cycles)
        return {
            "ok": True,
            "value": r.value,
            "cycles": r.cycles,
            "globals": {k: v for k, v in sorted(r.globals.items())},
        }
    except InterpError as failure:
        return {"ok": False, "error_kind": type(failure).__name__,
                "error": str(failure)}


def _canonical(outcome):
    """Round-trip through JSON so tuples and lists compare equal."""
    return json.loads(json.dumps(outcome, sort_keys=True))


@pytest.mark.parametrize("path", _corpus_entries(),
                         ids=[p.stem for p in _corpus_entries()])
def test_corpus_entry_replays_batched(path):
    entry = _load(path)
    design = compile_flow(entry["source"], flow=entry["flow"])
    lanes = design.run_batch(
        [tuple(args) for args in entry["lanes"]],
        max_cycles=entry["max_cycles"], sim_backend="batched",
    )
    assert len(lanes) == len(entry["expected"])
    for i, (lane, pinned) in enumerate(zip(lanes, entry["expected"])):
        assert _canonical(_batch_outcome(lane)) == _canonical(pinned), (
            f"{path.name} lane {i} ({entry['lanes'][i]}) drifted"
        )


@pytest.mark.parametrize("backend", ["interp", "compiled"])
@pytest.mark.parametrize("path", _corpus_entries(),
                         ids=[p.stem for p in _corpus_entries()])
def test_corpus_pins_match_scalar_backends(path, backend):
    """The pins themselves are still what the scalar semantics say."""
    entry = _load(path)
    design = compile_flow(entry["source"], flow=entry["flow"])
    for i, (args, pinned) in enumerate(zip(entry["lanes"],
                                           entry["expected"])):
        scalar = _scalar_outcome(design, args, backend,
                                 entry["max_cycles"])
        assert _canonical(scalar) == _canonical(pinned), (
            f"{path.name} lane {i} ({args}) vs {backend}"
        )


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs numpy")
@pytest.mark.parametrize("path", _corpus_entries(),
                         ids=[p.stem for p in _corpus_entries()])
def test_corpus_replays_on_forced_vector_engine(path):
    """Single-machine entries replay identically when the NumPy vector
    engine is forced (no silent fallback to the lanes engine)."""
    entry = _load(path)
    system = compile_flow(entry["source"], flow=entry["flow"]).system
    batch = simulate_batched(
        system, [tuple(args) for args in entry["lanes"]],
        max_cycles=entry["max_cycles"], engine="vector",
    )
    for i, (lane, pinned) in enumerate(zip(batch.lanes,
                                           entry["expected"])):
        assert _canonical(_batch_outcome(lane)) == _canonical(pinned), (
            f"{path.name} lane {i} drifted under the vector engine"
        )


@pytest.mark.parametrize("opt_level", [0, 2])
@pytest.mark.parametrize("path", _corpus_entries(),
                         ids=[p.stem for p in _corpus_entries()])
def test_corpus_entry_replays_at_every_opt_level(path, opt_level):
    """Lane outcomes are an optimization invariant.

    With the mid-end off (0) or the liveness fixpoint on (2), each lane
    must keep its pinned ok/error split, value, globals, and error kind.
    Cycle counts are level-dependent by design, so they are compared
    only directionally: the fixpoint pipeline may never be slower than
    the pinned default-level count."""
    from repro.api import SynthesisOptions, synthesize

    entry = _load(path)
    options = SynthesisOptions(
        flow=entry["flow"], sim_backend="batched", opt_level=opt_level
    )
    design = synthesize(entry["source"], options).design
    lanes = design.run_batch(
        [tuple(args) for args in entry["lanes"]],
        max_cycles=entry["max_cycles"], sim_backend="batched",
    )
    assert len(lanes) == len(entry["expected"])
    for i, (lane, pinned) in enumerate(zip(lanes, entry["expected"])):
        where = f"{path.name} lane {i} ({entry['lanes'][i]}) at L{opt_level}"
        assert lane.ok == pinned["ok"], f"{where}: ok flipped"
        if lane.ok:
            assert lane.result.value == pinned["value"], f"{where}: value"
            got_globals = {k: v for k, v in sorted(lane.result.globals.items())}
            assert _canonical(got_globals) == _canonical(pinned["globals"]), (
                f"{where}: globals"
            )
            if opt_level >= 2:
                assert lane.result.cycles <= pinned["cycles"], (
                    f"{where}: fixpoint regressed cycles "
                    f"{pinned['cycles']} -> {lane.result.cycles}"
                )
        else:
            assert lane.error_kind == pinned["error_kind"], (
                f"{where}: error kind"
            )


def test_corpus_is_populated():
    entries = [_load(p) for p in _corpus_entries()]
    assert len(entries) >= 6
    # Every divergence family is represented: mixed ok/error batches,
    # budget exhaustion, and observable global state.
    assert any(
        {e["ok"] for e in entry["expected"]} == {True, False}
        for entry in entries
    )
    assert any(
        "budget" in (e.get("error") or "")
        for entry in entries for e in entry["expected"]
    )
    assert any(
        e["ok"] and e["globals"]
        for entry in entries for e in entry["expected"]
    )
