"""Combinational netlist (Cones artifact) tests."""

import pytest

from repro.flows import compile_flow, FlowError, UnsupportedFeature
from repro.interp import run_source
from repro.rtl.combinational import evaluate


def netlist_of(source, **options):
    design = compile_flow(source, flow="cones", **options)
    return design.netlist, design


def test_pure_expression_evaluates():
    netlist, _ = netlist_of("int main(int a, int b) { return a * b + 2; }")
    assert evaluate(netlist, args=(3, 4)).value == 14


def test_conditionals_if_converted():
    netlist, _ = netlist_of(
        "int main(int a) { int x = 0; if (a > 2) { x = 10; } else { x = 20; } return x + 1; }"
    )
    assert evaluate(netlist, args=(3,)).value == 11
    assert evaluate(netlist, args=(1,)).value == 21


def test_loops_fully_unrolled_into_logic():
    netlist, design = netlist_of(
        "int main(int a) { int s = 0; for (int i = 0; i < 8; i++) { s += a + i; } return s; }"
    )
    assert evaluate(netlist, args=(0,)).value == 28
    assert evaluate(netlist, args=(1,)).value == 36
    assert design.stats["loops_unrolled"] == 1


def test_dynamic_loop_bound_rejected():
    with pytest.raises(FlowError):
        netlist_of(
            "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
        )


def test_arrays_become_element_wires():
    netlist, _ = netlist_of(
        """
        int t[4] = {10, 20, 30, 40};
        int main(int i) { return t[i]; }
        """
    )
    # Dynamic index: a mux tree over all four elements.
    for i, expected in enumerate((10, 20, 30, 40)):
        assert evaluate(netlist, args=(i,)).value == expected
    assert netlist.element_inputs  # t's elements are inputs


def test_dynamic_store_becomes_per_element_muxes():
    netlist, _ = netlist_of(
        """
        int t[4];
        int main(int i) {
            t[i] = 9;
            return t[0] + t[1] + t[2] + t[3];
        }
        """
    )
    assert evaluate(netlist, args=(2,)).value == 9


def test_untaken_path_division_is_gated():
    netlist, _ = netlist_of(
        "int main(int a) { int r = 1; if (a != 0) { r = 100 / a; } return r; }"
    )
    # a == 0: the divide exists in hardware but its divisor is gated to 1.
    assert evaluate(netlist, args=(0,)).value == 1
    assert evaluate(netlist, args=(4,)).value == 25


def test_global_outputs_merged_over_paths():
    netlist, _ = netlist_of(
        """
        int g;
        int main(int a) {
            if (a > 0) { g = 1; } else { g = 2; }
            return g;
        }
        """
    )
    result = evaluate(netlist, args=(5,))
    assert result.globals["g"] == 1
    result = evaluate(netlist, args=(-5,))
    assert result.globals["g"] == 2


def test_multiple_returns_select_by_path():
    netlist, _ = netlist_of(
        """
        int main(int a) {
            if (a > 10) { return 1; }
            if (a > 5) { return 2; }
            return 3;
        }
        """
    )
    assert evaluate(netlist, args=(11,)).value == 1
    assert evaluate(netlist, args=(7,)).value == 2
    assert evaluate(netlist, args=(1,)).value == 3


def test_matches_interpreter_on_matmul():
    from repro.workloads import get

    w = get("matmul4")
    golden = run_source(w.source, args=w.args)
    netlist, _ = netlist_of(w.source)
    result = evaluate(netlist)
    assert result.value == golden.value
    assert result.globals["mc"] == golden.globals["mc"]


def test_area_and_depth_grow_with_unroll_bound():
    small, _ = netlist_of(
        "int main(int a) { int s = 0; for (int i = 0; i < 4; i++) { s += a * i; } return s; }"
    )
    large, _ = netlist_of(
        "int main(int a) { int s = 0; for (int i = 0; i < 16; i++) { s += a * i; } return s; }"
    )
    assert large.op_count > small.op_count
    assert large.area_ge() > small.area_ge()
    assert large.depth() >= small.depth()
    assert large.critical_path_ns() >= small.critical_path_ns()


def test_channels_and_waits_rejected():
    with pytest.raises(UnsupportedFeature):
        netlist_of("chan<int> c; int main() { return recv(c); }")
    with pytest.raises(UnsupportedFeature):
        netlist_of("int main() { wait(); return 0; }")


def test_cones_run_reports_zero_cycles():
    _, design = netlist_of("int main(int a) { return a + 1; }")
    result = design.run(args=(1,))
    assert result.cycles == 0
    assert result.time_ns > 0
