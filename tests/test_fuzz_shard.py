"""Sharded campaigns: deterministic splits and idempotent merges.

The contracts CI leans on: ``assign_shard`` partitions the seed space as
a pure function of the campaign seed; a sharded run covers every base
seed exactly once and folds into the same signatures as the equivalent
single-shard run; and ``merge_corpus_dirs`` produces a byte-identical
corpus regardless of the order shard deltas arrive in, with self-merge
as a no-op.
"""

import json

from repro.fuzz import (
    FuzzOptions,
    assign_shard,
    merge_corpus_dirs,
    run_campaign,
)
from repro.fuzz.shard import mix, shard_options


class TestMix:
    def test_stable_across_calls(self):
        assert mix("shard", 0, 7) == mix("shard", 0, 7)
        assert 0 <= mix("anything") < 2**32

    def test_field_boundaries_matter(self):
        assert mix("ab", "c") != mix("a", "bc")


class TestAssignShard:
    def test_partitions_completely_and_deterministically(self):
        shards = 4
        owners = {seed: assign_shard(seed, 0, shards) for seed in range(200)}
        assert set(owners.values()) <= set(range(shards))
        # Every shard gets work and the split is balanced-ish.
        per_shard = [list(owners.values()).count(i) for i in range(shards)]
        assert all(count > 20 for count in per_shard)
        assert owners == {
            seed: assign_shard(seed, 0, shards) for seed in range(200)
        }

    def test_campaign_seed_reshuffles(self):
        a = [assign_shard(s, 0, 4) for s in range(100)]
        b = [assign_shard(s, 1, 4) for s in range(100)]
        assert a != b

    def test_single_shard_owns_everything(self):
        assert all(assign_shard(s, 3, 1) == 0 for s in range(50))


class TestShardOptions:
    def test_slices_index_and_divides_jobs(self):
        parent = FuzzOptions(shards=4, jobs=8)
        child = shard_options(parent, 2)
        assert child.shard_index == 2
        assert child.jobs == 2
        assert child.shards == 4

    def test_jobs_never_drop_below_one(self):
        assert shard_options(FuzzOptions(shards=4, jobs=1), 0).jobs == 1


class TestShardedCampaign:
    def _options(self, tmp_path, **overrides):
        base = dict(
            flows=("cyber",), seeds=12, reduce=False, mutations=1,
            corpus_dir=str(tmp_path / "corpus"), coverage=True,
        )
        base.update(overrides)
        return FuzzOptions.make(**base)

    def test_shards_cover_each_seed_exactly_once(self, tmp_path):
        whole = run_campaign(self._options(tmp_path))
        split = run_campaign(self._options(tmp_path, shards=2))
        assert split.stats["cyber"].seeds == whole.stats["cyber"].seeds
        assert len(split.shard_reports) == 2
        assert sum(row["cells_run"] for row in split.shard_reports) \
            == split.cells_run

    def test_sharded_fold_is_deterministic(self, tmp_path):
        first = run_campaign(self._options(tmp_path, shards=2))
        second = run_campaign(self._options(tmp_path, shards=2))
        assert first.coverage.buckets == second.coverage.buckets
        assert [d.signature().id for d in first.divergences] \
            == [d.signature().id for d in second.divergences]
        assert first.new_signatures == second.new_signatures

    def test_explicit_shard_index_runs_one_slice(self, tmp_path):
        slices = [
            run_campaign(self._options(tmp_path, shards=2, shard_index=i))
            for i in range(2)
        ]
        total = sum(r.stats["cyber"].seeds for r in slices)
        assert total == 12
        assert all(len(r.shard_reports) == 0 for r in slices)


class TestCorpusMerge:
    def _write(self, root, rel, payload):
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        return path

    def test_merge_is_order_independent(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        self._write(a, "cyber/one.json", b'{"x": 1}')
        self._write(a, "cyber/shared.json", b'{"x": 0}')
        self._write(b, "cash/two.json", b'{"y": 2}')
        self._write(b, "cyber/shared.json", b'{"x": 9}')

        forward, backward = tmp_path / "fwd", tmp_path / "bwd"
        merge_corpus_dirs([a, b], forward)
        merge_corpus_dirs([b, a], backward)

        def snapshot(root):
            return {
                p.relative_to(root).as_posix(): p.read_bytes()
                for p in sorted(root.glob("*/*.json"))
            }

        assert snapshot(forward) == snapshot(backward)
        # Conflict kept the lexicographically smaller bytes.
        assert snapshot(forward)["cyber/shared.json"] == b'{"x": 0}'

    def test_merge_is_idempotent(self, tmp_path):
        src, dest = tmp_path / "src", tmp_path / "dest"
        self._write(src, "cyber/one.json", b'{"x": 1}')
        first = merge_corpus_dirs([src], dest)
        assert first.copied == ["cyber/one.json"] and first.changed
        second = merge_corpus_dirs([src], dest)
        assert not second.changed
        assert second.identical == 1
        # Self-merge of the destination is also a no-op.
        third = merge_corpus_dirs([dest], dest)
        assert not third.changed and third.identical == 1

    def test_dest_conflicts_prefer_smaller_bytes(self, tmp_path):
        src, dest = tmp_path / "src", tmp_path / "dest"
        self._write(dest, "cyber/e.json", b'{"v": 5}')
        self._write(src, "cyber/e.json", b'{"v": 3}')
        report = merge_corpus_dirs([src], dest)
        assert report.conflicts == ["cyber/e.json"]
        assert (dest / "cyber/e.json").read_bytes() == b'{"v": 3}'
        # The larger byte string never overwrites a smaller incumbent.
        self._write(src, "cyber/e.json", b'{"v": 7}')
        again = merge_corpus_dirs([src], dest)
        assert not again.changed
        assert (dest / "cyber/e.json").read_bytes() == b'{"v": 3}'

    def test_sharded_deltas_merge_identically_any_order(self, tmp_path):
        """End to end: two shard runs promote their new findings into
        per-shard delta dirs; merging the deltas in either order yields a
        byte-identical corpus."""
        from repro.fuzz import promote

        deltas = []
        for index in range(2):
            options = FuzzOptions.make(
                flows=("cash",), seeds=30, reduce=False, mutations=1,
                corpus_dir=str(tmp_path / "empty"), coverage=False,
                shards=2, shard_index=index,
                shard_dir=str(tmp_path / f"delta{index}"),
            )
            report = run_campaign(options)
            promote(report, options.promote_path,
                    only=set(report.new_signatures))
            deltas.append(options.promote_path)

        def snapshot(root):
            out = {}
            for p in sorted(root.glob("*/*.json")):
                out[p.relative_to(root).as_posix()] = json.loads(
                    p.read_text()
                )
            return out

        forward, backward = tmp_path / "fwd", tmp_path / "bwd"
        merge_corpus_dirs(deltas, forward)
        merge_corpus_dirs(list(reversed(deltas)), backward)
        merged = snapshot(forward)
        assert merged == snapshot(backward)
        assert merged, "expected cash divergences to promote"
