"""Unit tests for the synthetic workload generator: determinism per seed
and width-respect (constants and shift amounts must fit the declared type
of the variable they feed — the bit-width–mix contract the fuzzing
frontend builds on)."""

import pytest

from repro.interp import run_source
from repro.lang import ast_nodes as ast
from repro.lang import parse
from repro.lang.types import IntType
from repro.workloads import array_source, control_source, dataflow_source

SEEDS = [0, 1, 7, 42, 1234, 99991]


# -- determinism -----------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_dataflow_source_deterministic_per_seed(seed):
    assert dataflow_source(seed) == dataflow_source(seed)
    assert dataflow_source(seed, width_mix=True) == dataflow_source(
        seed, width_mix=True
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_control_source_deterministic_per_seed(seed):
    assert control_source(seed) == control_source(seed)
    assert control_source(seed, width_mix=True) == control_source(
        seed, width_mix=True
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_array_source_deterministic_per_seed(seed):
    assert array_source(seed) == array_source(seed)


def test_distinct_seeds_produce_distinct_programs():
    sources = {dataflow_source(seed) for seed in range(20)}
    assert len(sources) > 15  # collisions are possible but must be rare


def test_width_mix_changes_output_but_not_base_shape():
    plain = dataflow_source(11)
    mixed = dataflow_source(11, width_mix=True)
    assert "uint" in mixed or "int8" in mixed or "int12" in mixed
    assert plain.count("\n") == mixed.count("\n")


# -- generated programs are valid ------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_parse_and_run(seed):
    for source, args in [
        (dataflow_source(seed), (3, 4)),
        (dataflow_source(seed, width_mix=True), (3, 4)),
        (control_source(seed), (5, 6)),
        (control_source(seed, width_mix=True), (5, 6)),
        (array_source(seed), (7,)),
    ]:
        parse(source)
        run_source(source, args=args)


# -- width respect ---------------------------------------------------------

def _literal_bound(int_type: IntType) -> int:
    if int_type.signed:
        return (1 << (int_type.width - 1)) - 1
    return (1 << int_type.width) - 1


def _check_expr(expr, int_type: IntType, errors):
    """Every literal under a typed target must fit its representable range;
    every literal shift amount must be below the target width."""
    if isinstance(expr, ast.IntLiteral):
        if expr.value > _literal_bound(int_type):
            errors.append(f"literal {expr.value} does not fit {int_type}")
    elif isinstance(expr, ast.BinaryOp):
        _check_expr(expr.left, int_type, errors)
        if expr.op in ("<<", ">>") and isinstance(expr.right, ast.IntLiteral):
            if expr.right.value >= int_type.width:
                errors.append(
                    f"shift amount {expr.right.value} >= width of {int_type}"
                )
        else:
            _check_expr(expr.right, int_type, errors)
    elif isinstance(expr, ast.Conditional):
        for sub in (expr.cond, expr.then, expr.otherwise):
            _check_expr(sub, int_type, errors)
    elif isinstance(expr, ast.UnaryOp):
        _check_expr(expr.operand, int_type, errors)


def _width_errors(source):
    program, _ = parse(source)
    declared = {}
    errors = []

    def walk(stmt):
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                walk(child)
        elif isinstance(stmt, ast.VarDecl):
            if isinstance(stmt.var_type, IntType):
                declared[stmt.name] = stmt.var_type
                if stmt.init is not None:
                    _check_expr(stmt.init, stmt.var_type, errors)
        elif isinstance(stmt, ast.Assign):
            if (
                isinstance(stmt.target, ast.Identifier)
                and stmt.target.name in declared
            ):
                _check_expr(stmt.value, declared[stmt.target.name], errors)
        elif isinstance(stmt, ast.If):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            walk(stmt.body)

    for fn in program.functions:
        walk(fn.body)
    return errors


@pytest.mark.parametrize("seed", range(40))
def test_width_mix_literals_and_shifts_respect_declared_widths(seed):
    for source in (
        dataflow_source(seed, statements=10, width_mix=True),
        control_source(seed, blocks=4, width_mix=True),
    ):
        assert _width_errors(source) == [], source
