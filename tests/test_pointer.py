"""Pointer-analysis tests."""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.ir.passes import inline_program
from repro.lang import parse


def plan_for(source, enable=True):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    return plan_pointers(inlined.function("main"), enable_analysis=enable)


def test_no_pointers_mode_none():
    plan = plan_for("int main() { int a[4]; return a[0]; }")
    assert plan.mode == "none"
    assert not plan.in_memory and not plan.bases


def test_single_array_pointer_resolved():
    plan = plan_for(
        """
        int buf[8];
        int main() {
            int *p = &buf[0];
            int s = 0;
            for (int i = 0; i < 8; i++) { s += *p; p = p + 1; }
            return s;
        }
        """
    )
    assert plan.mode == "resolved"
    assert plan.stats.resolved_count >= 1
    assert plan.memory_size == 0


def test_scalar_pointer_without_arithmetic_resolved():
    plan = plan_for(
        """
        int main() {
            int x = 3;
            int *p = &x;
            *p = 5;
            return x;
        }
        """
    )
    assert plan.mode == "resolved"
    kinds = {kind for kind, _ in plan.bases.values()}
    assert kinds == {"scalar"}


def test_scalar_pointer_with_arithmetic_unified():
    plan = plan_for(
        """
        int main() {
            int x = 3;
            int *p = &x;
            p = p + 1;
            return x;
        }
        """
    )
    assert plan.memory_symbol is not None


def test_two_target_pointer_unified():
    plan = plan_for(
        """
        int a[4];
        int b[4];
        int main(int w) {
            int *p = w != 0 ? &a[0] : &b[0];
            return *p;
        }
        """
    )
    assert plan.stats.max_points_to == 2
    assert {s.name for s in plan.in_memory} == {"a", "b"}
    assert plan.memory_size == 8


def test_copy_chains_propagate_points_to():
    plan = plan_for(
        """
        int buf[4];
        int main() {
            int *p = &buf[0];
            int *q = p;
            int *r = q;
            return *r;
        }
        """
    )
    assert plan.mode == "resolved"
    assert plan.stats.resolved_count == 3


def test_mixed_mode_keeps_resolved_pointers_private():
    plan = plan_for(
        """
        int a[4];
        int b[4];
        int c[4];
        int main(int w) {
            int *clean = &c[0];
            int *dirty = w != 0 ? &a[0] : &b[0];
            return *clean + *dirty;
        }
        """
    )
    assert plan.mode == "mixed"
    in_memory = {s.name for s in plan.in_memory}
    assert in_memory == {"a", "b"}
    resolved_bases = {base.name for _, base in plan.bases.values()}
    assert resolved_bases == {"c"}


def test_disabled_analysis_unifies_everything():
    plan = plan_for(
        """
        int buf[4];
        int main() {
            int *p = &buf[0];
            return *p;
        }
        """,
        enable=False,
    )
    assert plan.mode == "unified"
    assert plan.stats.iterations == 0
    assert plan.stats.resolved_count == 0


def test_layout_is_disjoint_and_covers_sizes():
    plan = plan_for(
        """
        int a[3];
        int b[5];
        int main(int w) {
            int *p = w != 0 ? &a[0] : &b[0];
            return *p;
        }
        """
    )
    spans = sorted(
        (base, base + (s.type.size if hasattr(s.type, "size") else 1))
        for s, base in plan.layout.items()
    )
    for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
        assert hi1 <= lo2
    assert plan.memory_size == 8


def test_initial_memory_from_global_inits():
    program, info = parse(
        """
        int a[3] = {7, 8, 9};
        int main(int w) {
            int x = 0;
            int *p = w != 0 ? &a[0] : &x;
            return *p;
        }
        """
    )
    inlined, _ = inline_program(program, info)
    plan = plan_pointers(inlined.function("main"))
    words = plan.initial_memory(info.global_inits)
    a_symbol = next(s for s in plan.layout if s.name == "a")
    base = plan.layout[a_symbol]
    assert words[base : base + 3] == [7, 8, 9]


def test_stats_count_constraints_and_iterations():
    plan = plan_for(
        """
        int buf[4];
        int main() {
            int *p = &buf[0];
            int *q = p + 1;
            return *q;
        }
        """
    )
    assert plan.stats.pointer_count == 2
    assert plan.stats.constraint_count >= 2
    assert plan.stats.iterations >= 1


def test_address_of_scalar_used_directly():
    plan = plan_for("int main() { int x = 4; return *(&x); }")
    # Dereferencing &x immediately needs no pointer variable at all.
    assert plan.stats.pointer_count == 0
