"""Loop-unroller tests."""

import pytest

from repro.interp import run_program
from repro.lang import parse
from repro.lang import ast_nodes as ast
from repro.ir.passes import try_full_unroll, unroll_loops


def transform_and_compare(source, args=(), factor=None, full=False):
    program, info = parse(source)
    golden = run_program(program, info, "main", args)
    fn = program.function("main")
    if full:
        fn2, unrolled, resisted = try_full_unroll(fn)
        extra = (unrolled, resisted)
    else:
        fn2, unrolled = unroll_loops(fn, factor)
        extra = (unrolled,)
    new_program = ast.Program(
        functions=[fn2] + [f for f in program.functions if f.name != "main"],
        globals=program.globals,
        channels=program.channels,
    )
    result = run_program(new_program, info, "main", args)
    assert result.observable() == golden.observable()
    return fn2, extra


def count_loops(fn):
    return sum(
        1 for s in ast.walk_stmts(fn.body)
        if isinstance(s, (ast.For, ast.While, ast.DoWhile))
    )


SUM_LOOP = """
int total;
int main() {
    for (int i = 0; i < 12; i++) { total += i * i; }
    return total;
}
"""


def test_full_unroll_removes_loop():
    fn, (unrolled, resisted) = transform_and_compare(SUM_LOOP, full=True)
    assert unrolled == 1 and resisted == 0
    assert count_loops(fn) == 0


def test_full_unroll_nested_loops():
    fn, (unrolled, resisted) = transform_and_compare(
        """
        int acc;
        int main() {
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { acc += i * 10 + j; }
            }
            return acc;
        }
        """,
        full=True,
    )
    assert unrolled == 2 and resisted == 0
    assert count_loops(fn) == 0


def test_full_unroll_reports_dynamic_bounds():
    fn, (unrolled, resisted) = transform_and_compare(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
        args=(5,),
        full=True,
    )
    assert unrolled == 0 and resisted == 1
    assert count_loops(fn) == 1


def test_full_unroll_le_and_downward_loops():
    fn, (unrolled, resisted) = transform_and_compare(
        """
        int main() {
            int s = 0;
            for (int i = 1; i <= 5; i++) { s += i; }
            for (int j = 10; j > 0; j = j - 2) { s += j; }
            for (int k = 8; k >= 0; k = k - 4) { s += k; }
            return s;
        }
        """,
        full=True,
    )
    assert unrolled == 3 and resisted == 0


def test_full_unroll_ne_condition():
    fn, (unrolled, _) = transform_and_compare(
        "int main() { int s = 0; for (int i = 0; i != 6; i = i + 2) { s += i; } return s; }",
        full=True,
    )
    assert unrolled == 1


def test_zero_trip_loop_unrolls_to_nothing():
    fn, (unrolled, _) = transform_and_compare(
        "int main() { int s = 9; for (int i = 5; i < 5; i++) { s = 0; } return s; }",
        full=True,
    )
    assert unrolled == 1
    assert count_loops(fn) == 0


def test_loops_with_break_are_not_unrolled():
    fn, (unrolled, resisted) = transform_and_compare(
        """
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) { if (i == 3) { break; } s += i; }
            return s;
        }
        """,
        full=True,
    )
    assert unrolled == 0 and resisted == 1


def test_loops_writing_induction_variable_are_not_unrolled():
    fn, (unrolled, resisted) = transform_and_compare(
        """
        int main() {
            int s = 0;
            for (int i = 0; i < 10; i++) { s += i; i = i + 1; }
            return s;
        }
        """,
        full=True,
    )
    assert unrolled == 0 and resisted == 1


def test_induction_variable_visible_after_loop():
    # `i` is declared outside, so its final value must be materialized.
    transform_and_compare(
        """
        int main() {
            int i = 0;
            int s = 0;
            for (i = 0; i < 7; i++) { s += 1; }
            return s * 100 + i;
        }
        """,
        full=True,
    )


def test_partial_unroll_by_divisible_factor():
    fn, (unrolled,) = transform_and_compare(SUM_LOOP, factor=4)
    assert unrolled == 1
    assert count_loops(fn) == 1  # loop remains, body replicated


def test_partial_unroll_factor_must_divide():
    fn, (unrolled,) = transform_and_compare(SUM_LOOP, factor=5)
    assert unrolled == 0  # 12 % 5 != 0: left alone


def test_partial_unroll_preserves_array_semantics():
    transform_and_compare(
        """
        int data[16];
        int main() {
            for (int i = 0; i < 16; i++) { data[i] = i * 3; }
            int s = 0;
            for (int i = 0; i < 16; i++) { s += data[i]; }
            return s;
        }
        """,
        factor=4,
    )


def test_unrolled_bodies_get_fresh_locals():
    # The per-iteration temporary must not alias across unrolled copies.
    fn, (unrolled, _) = transform_and_compare(
        """
        int out[4];
        int main() {
            for (int i = 0; i < 4; i++) {
                int t = i * 7;
                out[i] = t;
            }
            return out[3];
        }
        """,
        full=True,
    )
    assert unrolled == 1
    names = {
        s.symbol.unique_name  # type: ignore[attr-defined]
        for s in ast.walk_stmts(fn.body)
        if isinstance(s, ast.VarDecl)
    }
    assert len(names) == 4  # four distinct clones of t
