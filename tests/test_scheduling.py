"""Scheduler tests: list (chained), ASAP/ALAP, force-directed."""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.ir import build_function
from repro.ir.ops import OpKind
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.scheduling import (
    ConstraintInfeasible,
    ResourceSet,
    ScheduleError,
    check_block_schedule,
    classify,
    force_directed_schedule,
    list_schedule_block,
    list_schedule_function,
    mobility,
    peak_usage,
    unit_alap,
    unit_asap,
    unit_latency,
)
from repro.scheduling.base import build_dependence_graph


def build(source):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return cdfg


def biggest_block(cdfg):
    return max(cdfg.reachable_blocks(), key=lambda b: len(b.ops))


MULADD = """
int main(int a, int b, int c, int d) {
    return a * b + c * d + (a + c) * (b + d);
}
"""


# ---------------------------------------------------------------------------
# Dependence graph
# ---------------------------------------------------------------------------


def test_dependence_graph_flow_edges():
    cdfg = build("int main(int a) { return (a + 1) * 2; }")
    block = biggest_block(cdfg)
    graph = build_dependence_graph(block)
    assert graph.edge_count() >= 1  # + feeds *


def test_dependence_graph_orders_store_before_load():
    cdfg = build("int g[4]; int main(int i, int v) { g[i] = v; return g[i]; }")
    block = biggest_block(cdfg)
    graph = build_dependence_graph(block)
    store = next(op for op in block.ops if op.kind is OpKind.STORE)
    load = next(op for op in block.ops if op.kind is OpKind.LOAD)
    assert store.id in graph.predecessors(load)


def test_constant_addresses_disambiguate():
    cdfg = build("int g[4]; int main(int v) { g[0] = v; return g[1]; }")
    block = biggest_block(cdfg)
    graph = build_dependence_graph(block, disambiguate_memory=True)
    store = next(op for op in block.ops if op.kind is OpKind.STORE)
    load = next(op for op in block.ops if op.kind is OpKind.LOAD)
    assert store.id not in graph.predecessors(load)
    conservative = build_dependence_graph(block, disambiguate_memory=False)
    assert store.id in conservative.predecessors(load)


def test_barrier_is_a_full_fence():
    cdfg = build("int main(int a) { int x = a + 1; wait(); return x * 2; }")
    for block in cdfg.reachable_blocks():
        barrier = [op for op in block.ops if op.kind is OpKind.BARRIER]
        if not barrier:
            continue
        graph = build_dependence_graph(block)
        later = [op for op in block.ops if op.id > barrier[0].id]
        for op in later:
            assert barrier[0].id in graph.predecessors(op)


# ---------------------------------------------------------------------------
# List scheduling (chained)
# ---------------------------------------------------------------------------


def test_list_schedule_respects_resource_limits():
    cdfg = build(MULADD)
    block = biggest_block(cdfg)
    schedule = list_schedule_block(block, ResourceSet(multiplier=1, alu=1))
    check_block_schedule(schedule, ResourceSet(multiplier=1, alu=1))


def test_fewer_resources_never_shorten_schedule():
    cdfg = build(MULADD)
    block = biggest_block(cdfg)
    wide = list_schedule_block(block, ResourceSet.unlimited())
    narrow = list_schedule_block(block, ResourceSet.minimal())
    assert narrow.n_steps >= wide.n_steps


def test_chaining_packs_dependent_ops_when_clock_allows():
    cdfg = build("int main(int a) { return ((a + 1) + 2) + 3; }")
    block = biggest_block(cdfg)
    slow_clock = list_schedule_block(block, clock_ns=50.0)
    fast_clock = list_schedule_block(block, clock_ns=2.5)
    assert slow_clock.n_steps <= fast_clock.n_steps
    assert slow_clock.n_steps == 1  # three adds chain in 50 ns easily


def test_division_is_multi_cycle_at_fast_clock():
    cdfg = build("int main(int a, int b) { return a / (b + 1); }")
    block = biggest_block(cdfg)
    schedule = list_schedule_block(block, clock_ns=5.0)
    div = next(op for op in block.ops if op.kind is OpKind.BINARY and op.op == "/")
    # 22 ns divider at a 5 ns clock: the op spans ceil(22/5) = 5 states.
    assert schedule.n_steps >= 5


def test_channel_ops_get_exclusive_states():
    cdfg = build(
        "chan<int> c; int main(int a) { send(c, a + 1); send(c, a + 2); return 0; }"
    )
    schedule = list_schedule_function(cdfg)
    for block_schedule in schedule.blocks.values():
        for step_ops in block_schedule.step_ops():
            channel_ops = [
                op for op in step_ops if op.kind in (OpKind.SEND, OpKind.RECV)
            ]
            if channel_ops:
                assert len(step_ops) == 1


def test_delay_occupies_its_cycle_count():
    cdfg = build("int main() { delay(4); return 1; }")
    schedule = list_schedule_function(cdfg)
    assert schedule.total_steps() >= 4


def test_within_constraint_met_when_feasible():
    cdfg = build(
        "int main(int a) { int x = 0; within (2) { x = a + 1; x = x * 3; } return x; }"
    )
    schedule = list_schedule_function(cdfg, ResourceSet.typical())
    constraints = {c.group: c.cycles for c in cdfg.constraints}
    for block in cdfg.reachable_blocks():
        check_block_schedule(
            schedule.blocks[block.id], ResourceSet.typical(), constraints
        )


def test_within_constraint_infeasible_raises():
    # Five dependent multiplies cannot fit in 1 cycle at a 5 ns clock.
    source = """
    int main(int a) {
        int x = 0;
        within (1) {
            x = a * a;
            x = x * a;
            x = x * a;
            x = x * a;
            x = x * a;
        }
        return x;
    }
    """
    cdfg = build(source)
    with pytest.raises(ConstraintInfeasible):
        list_schedule_function(cdfg, ResourceSet.typical(), clock_ns=5.0)


def test_whole_function_schedules_every_block():
    cdfg = build(
        "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    )
    schedule = list_schedule_function(cdfg)
    assert set(schedule.blocks) == {b.id for b in cdfg.reachable_blocks()}


# ---------------------------------------------------------------------------
# ASAP / ALAP / mobility
# ---------------------------------------------------------------------------


def test_asap_length_is_critical_path():
    cdfg = build("int main(int a) { return ((a * a) * a) * a; }")
    block = biggest_block(cdfg)
    asap = unit_asap(block)
    assert asap.n_steps == 3  # three dependent multiplies


def test_alap_within_asap_length_has_zero_critical_slack():
    # The multiply chain is the critical path; the lone add floats.
    cdfg = build("int main(int a, int b, int c, int d) { return ((a * b) * c) * d + (a + b); }")
    block = biggest_block(cdfg)
    slacks = mobility(block)
    assert min(slacks.values()) == 0
    assert any(s > 0 for s in slacks.values())  # off-critical ops float


def test_alap_rejects_impossible_length():
    cdfg = build("int main(int a) { return ((a * a) * a) * a; }")
    block = biggest_block(cdfg)
    with pytest.raises(ScheduleError):
        unit_alap(block, length=2)


def test_asap_and_alap_are_valid_schedules():
    cdfg = build(MULADD)
    block = biggest_block(cdfg)
    check_block_schedule(unit_asap(block))
    check_block_schedule(unit_alap(block))


# ---------------------------------------------------------------------------
# Force-directed
# ---------------------------------------------------------------------------


def test_fds_meets_target_length():
    cdfg = build(MULADD)
    block = biggest_block(cdfg)
    asap = unit_asap(block)
    fds = force_directed_schedule(block, length=asap.n_steps + 2)
    check_block_schedule(fds)
    assert fds.n_steps <= asap.n_steps + 2


def test_fds_flattens_resource_peaks_given_slack():
    cdfg = build(
        """
        int main(int a, int b, int c, int d) {
            int p = a * b;
            int q = c * d;
            int r = a * d;
            int s = b * c;
            return p + q + r + s;
        }
        """
    )
    block = biggest_block(cdfg)
    asap_peaks = peak_usage(unit_asap(block))
    fds = force_directed_schedule(block, length=unit_asap(block).n_steps + 3)
    fds_peaks = peak_usage(fds)
    assert fds_peaks.get("mul", 0) <= asap_peaks.get("mul", 0)
    assert fds_peaks.get("mul", 0) <= 2  # 4 muls spread over >= 2 steps


def test_unit_latency_model():
    cdfg = build("int main(int a, int b) { return a / b; }")
    div = next(
        op for op in cdfg.iter_ops()
        if op.kind is OpKind.BINARY and op.op == "/"
    )
    assert unit_latency(div) == 4
    cast_like = [op for op in cdfg.iter_ops() if op.kind is OpKind.CAST]
    for op in cast_like:
        assert unit_latency(op) == 0
