"""Unit tests for the parallel, content-addressed matrix engine.

The contract under test: serial, parallel, and cache-replayed execution
of the same cells produce identical ``CellResult.identity()``s; the cache
keys on token content (not text layout); and one misbehaving cell — an
exception, a deadline overrun, or a dead worker — cannot take down the
rest of a sweep.
"""

import os
import pickle

import pytest

from repro.flows import FlowError, UnsupportedFeature, registry_fingerprint
from repro.runner import (
    ERROR,
    OK,
    REJECTED,
    TIMEOUT,
    ArtifactCache,
    CellResult,
    CellTask,
    MatrixEngine,
    cell_key,
    execute_cell,
    suite_tasks,
)
from repro.runner.cache import normalized_source
from repro.workloads import WORKLOADS

SOURCE = "int main(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"


def task(source=SOURCE, flow="handelc", name="t", args=(5,)):
    return CellTask(workload=name, source=source, flow=flow, args=tuple(args))


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------


def test_single_cell_ok():
    [result] = MatrixEngine().run_cells([task()])
    assert result.verdict == OK
    assert result.value == 10
    assert result.cycles > 0
    assert result.rtl_hash
    assert result.observable[0] == 10
    assert result.wall_s > 0
    assert not result.cached


def test_rejected_cell_carries_rule_and_reason():
    source = "int main() { int x = 2; int *p = &x; return *p; }"
    [result] = MatrixEngine().run_cells([task(source=source, flow="cones")])
    assert result.verdict == REJECTED
    assert result.rule
    assert result.diagnostics


def test_unknown_flow_is_isolated_as_error():
    results = MatrixEngine().run_cells([task(flow="no-such-flow"), task()])
    assert [r.verdict for r in results] == [ERROR, OK]


def test_mismatch_verdict(monkeypatch):
    # Lie about the golden observable: the flow's (correct) answer must be
    # flagged as diverging.
    engine = MatrixEngine()
    t = task()
    engine._golden[(t.source, t.function, t.args)] = [999, [], []]
    [result] = engine.run_cells([t])
    assert result.verdict == "mismatch"
    assert result.unexpected


def test_timeout_verdict():
    slow = "int main() { int s = 0; for (int i = 0; i < 100000000; i++) { s += i; } return s; }"
    engine = MatrixEngine(timeout_s=0.2, max_cycles=1_000_000_000)
    [result] = engine.run_cells([task(source=slow, flow="handelc", args=())])
    assert result.verdict == TIMEOUT


def test_flow_errors_pickle_roundtrip():
    # The parallel engine ships rejections across process boundaries.
    error = UnsupportedFeature("cones", "no pointers", rule="SYN101")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, UnsupportedFeature)
    assert clone.flow == "cones"
    assert clone.reason == "no pointers"
    assert clone.rule == "SYN101"
    assert isinstance(pickle.loads(pickle.dumps(FlowError("cash", "x"))), FlowError)


def test_trace_pickle_roundtrip():
    # Traced cells ship their TraceContext (and closed spans) back from
    # pool workers; open spans cannot cross, closed trees must survive.
    from repro.trace import Span, TraceContext

    trace = TraceContext(name="w")
    with trace.span("parse", cat="phase"):
        with trace.span("tokens"):
            trace.count(n=3)
    clone = pickle.loads(pickle.dumps(trace))
    assert isinstance(clone, TraceContext)
    assert clone.name == "w"
    assert clone.structure() == trace.structure()
    assert clone.to_dict() == trace.to_dict()
    [span] = trace.roots
    span_clone = pickle.loads(pickle.dumps(span))
    assert isinstance(span_clone, Span)
    assert span_clone.to_dict() == span.to_dict()


def test_traced_cell_crosses_process_pool():
    tasks = [task(name="trace-pool")]
    serial = MatrixEngine(jobs=1, trace=True).run_cells(tasks)
    parallel = MatrixEngine(jobs=2, trace=True).run_cells(tasks)
    from repro.trace import structure_of

    assert serial[0].trace is not None
    assert parallel[0].trace is not None
    assert structure_of(serial[0].trace) == structure_of(parallel[0].trace)
    assert [r.identity() for r in serial] == [r.identity() for r in parallel]


# ---------------------------------------------------------------------------
# Serial / parallel / cached identity
# ---------------------------------------------------------------------------


def small_tasks():
    chosen = [w for w in WORKLOADS if w.name in ("gcd", "dot16", "prodcons")]
    return suite_tasks(workloads=chosen)


def test_parallel_results_match_serial():
    tasks = small_tasks()
    serial = MatrixEngine(jobs=1).run_cells(tasks)
    parallel = MatrixEngine(jobs=3).run_cells(tasks)
    assert [r.identity() for r in serial] == [r.identity() for r in parallel]


def test_cached_results_match_cold(tmp_path):
    tasks = small_tasks()
    bare = MatrixEngine().run_cells(tasks)
    cold = MatrixEngine(cache=ArtifactCache(tmp_path)).run_cells(tasks)
    warm_cache = ArtifactCache(tmp_path)
    warm = MatrixEngine(cache=warm_cache).run_cells(tasks)
    assert [r.identity() for r in bare] == [r.identity() for r in cold]
    assert [r.identity() for r in cold] == [r.identity() for r in warm]
    assert all(r.cached for r in warm)
    assert warm_cache.hits == len(tasks)
    assert warm_cache.misses == 0


def test_parallel_warm_cache(tmp_path):
    tasks = small_tasks()
    cold = MatrixEngine(jobs=2, cache=ArtifactCache(tmp_path)).run_cells(tasks)
    warm = MatrixEngine(jobs=2, cache=ArtifactCache(tmp_path)).run_cells(tasks)
    assert [r.identity() for r in cold] == [r.identity() for r in warm]
    assert all(r.cached for r in warm)


# ---------------------------------------------------------------------------
# Cache keys and storage
# ---------------------------------------------------------------------------


def test_key_ignores_whitespace_and_comments():
    reformatted = (
        "// a comment\nint main(int n) {\n  int s = 0;\n"
        "  for (int i = 0; i < n; i++) { s += i; /* inline */ }\n  return s;\n}\n"
    )
    assert normalized_source(SOURCE) == normalized_source(reformatted)
    assert cell_key(task()) == cell_key(task(source=reformatted))


def test_key_changes_with_tokens_flow_args_and_options():
    base = cell_key(task())
    assert cell_key(task(source=SOURCE.replace("s += i", "s += 2 * i"))) != base
    assert cell_key(task(flow="bachc")) != base
    assert cell_key(task(args=(6,))) != base
    other = CellTask(workload="t", source=SOURCE, flow="handelc",
                     args=(5,), options=(("unroll", 2),))
    assert cell_key(other) != base
    assert cell_key(task(), salt="v2") != base


def test_registry_fingerprint_is_stable():
    assert registry_fingerprint() == registry_fingerprint()


def test_errors_and_timeouts_are_not_cached(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert not cache.store("00" * 32, CellResult(workload="w", flow="f",
                                                 verdict=ERROR))
    assert len(cache) == 0


def test_cache_hit_is_relabeled_to_the_current_task(tmp_path):
    # The key excludes the display label so identical sources share
    # artifacts; the replay must carry the asking task's name, not the
    # name the artifact was first stored under.
    [_] = MatrixEngine(cache=ArtifactCache(tmp_path)).run_cells(
        [task(name="original.c")]
    )
    [hit] = MatrixEngine(cache=ArtifactCache(tmp_path)).run_cells(
        [task(name="renamed-copy.c")]
    )
    assert hit.cached
    assert hit.workload == "renamed-copy.c"


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    tasks = [task()]
    cache = ArtifactCache(tmp_path)
    [cold] = MatrixEngine(cache=cache).run_cells(tasks)
    [path] = list(cache.root.glob("*/*.json"))
    path.write_text("{ not json")
    again = ArtifactCache(tmp_path)
    [rebuilt] = MatrixEngine(cache=again).run_cells(tasks)
    assert again.hits == 0
    assert rebuilt.identity() == cold.identity()


# ---------------------------------------------------------------------------
# Crash isolation
# ---------------------------------------------------------------------------


def _crashing_worker(payload):
    if payload["workload"] == "victim":
        os._exit(17)
    return execute_cell(payload)


def test_dead_worker_does_not_kill_the_sweep():
    tasks = [task(name="a"), task(name="victim"), task(name="b")]
    engine = MatrixEngine(jobs=2, worker=_crashing_worker)
    results = engine.run_cells(tasks)
    by_name = {r.workload: r for r in results}
    assert len(results) == 3
    assert by_name["victim"].verdict == ERROR
    assert "died" in by_name["victim"].diagnostics[0]
    assert by_name["a"].verdict == OK
    assert by_name["b"].verdict == OK


def _raising_worker(payload):
    raise RuntimeError("worker bug")


def test_raising_worker_becomes_error_cell():
    results = MatrixEngine(jobs=2, worker=_raising_worker).run_cells(
        [task(name="a"), task(name="b")]
    )
    assert [r.verdict for r in results] == [ERROR, ERROR]


# ---------------------------------------------------------------------------
# Result model
# ---------------------------------------------------------------------------


def test_result_roundtrips_through_dict():
    [result] = MatrixEngine().run_cells([task()])
    clone = CellResult.from_dict(result.to_dict())
    assert clone.identity() == result.identity()
    assert clone.args == result.args


def test_identity_excludes_provenance():
    [a] = MatrixEngine().run_cells([task()])
    [b] = MatrixEngine().run_cells([task()])
    assert a.wall_s != b.wall_s or a.wall_s > 0
    assert a.identity() == b.identity()


def test_suite_tasks_cover_full_matrix():
    from repro.flows import COMPILABLE

    tasks = suite_tasks()
    assert len(tasks) == len(WORKLOADS) * len(COMPILABLE)
    assert {t.flow for t in tasks} == set(COMPILABLE)
    assert {t.workload for t in tasks} == {w.name for w in WORKLOADS}
