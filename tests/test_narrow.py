"""Bit-width narrowing tests: soundness first, then payoff."""

import pytest

from repro.flows import compile_flow
from repro.interp import run_program
from repro.ir import build_function
from repro.ir.executor import execute
from repro.ir.passes import inline_program, narrow_widths, optimize
from repro.ir.passes.narrow import minimal_type
from repro.lang import parse
from repro.lang.types import IntType


def build(source):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    return cdfg, program, info


def narrowed_equivalent(source, args=()):
    cdfg, program, info = build(source)
    golden = run_program(program, info, "main", args)
    report = narrow_widths(cdfg)
    result = execute(cdfg, args=args)
    assert result.value == golden.value, (result.value, golden.value)
    return cdfg, report


# ---------------------------------------------------------------------------
# minimal_type
# ---------------------------------------------------------------------------


def test_minimal_type_unsigned():
    assert minimal_type((0, 255), False) == IntType(8, signed=False)
    assert minimal_type((0, 256), False) == IntType(9, signed=False)
    assert minimal_type((0, 0), False) == IntType(1, signed=False)
    assert minimal_type((0, 1), False) == IntType(1, signed=False)


def test_minimal_type_signed():
    assert minimal_type((-128, 127), True) == IntType(8, signed=True)
    assert minimal_type((-129, 0), True) == IntType(9, signed=True)
    assert minimal_type((0, 127), True) == IntType(8, signed=True)


# ---------------------------------------------------------------------------
# Soundness
# ---------------------------------------------------------------------------


def test_masked_values_narrow_and_stay_correct():
    cdfg, report = narrowed_equivalent(
        "int main(int x) { return (x & 15) + (x & 7); }", (1234,)
    )
    assert report.vregs_narrowed >= 2
    assert report.bits_saved > 0


def test_counted_loop_counter_narrows():
    cdfg, report = narrowed_equivalent(
        "int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }"
    )
    # i in [0, 10]: 5 bits (its declared register shrinks from 32).
    counters = [
        s for s in cdfg.registers
        if s.name.startswith("i") and isinstance(s.type, IntType)
    ]
    assert report.registers_narrowed >= 1
    assert any(s.type.width <= 8 for s in counters)


def test_parameters_keep_interface_width():
    cdfg, _ = narrowed_equivalent("int main(int a) { return a & 3; }", (7,))
    param = cdfg.params[0]
    assert param.type == IntType(32, signed=True)


def test_globals_keep_interface_width():
    cdfg, _ = narrowed_equivalent(
        "int g; int main() { g = 3; return g; }"
    )
    for symbol in cdfg.registers:
        if symbol.name == "g":
            assert symbol.type.bit_width == 32


def test_signed_ranges_handled():
    narrowed_equivalent(
        "int main(int a) { int d = (a & 7) - 7; return d * d; }", (0,)
    )
    narrowed_equivalent(
        "int main(int a) { int d = (a & 7) - 7; return d * d; }", (7,)
    )


def test_wrapping_code_is_not_narrowed_incorrectly():
    # v + 100 can wrap in uint8 — the pass must keep uint8 semantics.
    source = "int main() { uint8 v = 200; v = v + 100; return v; }"
    cdfg, _ = narrowed_equivalent(source)
    assert execute(cdfg).value == 44


def test_modulo_bounds_divisor():
    cdfg, report = narrowed_equivalent(
        "int main(int x) { int r = x % 13; return r * r; }", (200,)
    )
    narrowed_equivalent(
        "int main(int x) { int r = x % 13; return r * r; }", (-200,)
    )


@pytest.mark.parametrize("seed", range(8))
def test_narrowing_preserves_generated_programs(seed):
    from repro.workloads import dataflow_source

    source = dataflow_source(seed, statements=10, depth=3)
    narrowed_equivalent(source, (seed * 7 + 1, seed * 3 + 2))


@pytest.mark.parametrize("workload_name",
                         ["fir8", "dot16", "crc8", "histogram", "parser"])
def test_narrowing_preserves_workloads(workload_name):
    from repro.workloads import get

    w = get(workload_name)
    cdfg, program, info = build(w.source)
    golden = run_program(program, info, "main", w.args)
    narrow_widths(cdfg)
    mem_init = {}
    reg_init = {}
    for g in program.globals:
        s = g.symbol
        init = info.global_inits.get(s.name)
        if init is None:
            continue
        if isinstance(init, list):
            target = next((a for a in cdfg.arrays if a is s), None)
            if target is not None:
                mem_init[target] = list(init)
        else:
            reg_init[s] = init
    result = execute(cdfg, args=w.args, register_init=reg_init,
                     memory_init=mem_init)
    assert result.value == golden.value


# ---------------------------------------------------------------------------
# Payoff
# ---------------------------------------------------------------------------


def test_narrowing_shrinks_datapath_area():
    source = """
    int main(int x) {
        int acc = 0;
        for (int i = 0; i < 16; i++) {
            int lo = (x >> i) & 15;
            int hi = ((x >> i) >> 4) & 15;
            acc += lo * hi;
        }
        return acc;
    }
    """
    wide = compile_flow(source, flow="c2verilog", narrow=False)
    slim = compile_flow(source, flow="c2verilog", narrow=True)
    wide_run = wide.run(args=(123456,))
    slim_run = slim.run(args=(123456,))
    assert wide_run.value == slim_run.value
    # 4x4-bit multiplies instead of 32x32: the quadratic term collapses.
    assert slim.cost().area_ge < wide.cost().area_ge * 0.8


def test_narrowing_is_idempotent():
    cdfg, first = narrowed_equivalent(
        "int main(int x) { return (x & 31) * 3; }", (99,)
    )
    second = narrow_widths(cdfg)
    assert second.bits_saved == 0
