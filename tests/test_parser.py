"""Parser unit tests."""

import pytest

from repro.lang import ParseError, parse_expression, parse_program
from repro.lang import ast_nodes as ast
from repro.lang.types import ArrayType, ChannelType, IntType, PointerType


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def test_precedence_mul_over_add():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"


def test_precedence_shift_below_add():
    expr = parse_expression("1 << 2 + 3")
    assert expr.op == "<<"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "+"


def test_precedence_comparison_below_shift():
    expr = parse_expression("a << 1 < b")
    assert expr.op == "<"


def test_precedence_bitand_below_equality():
    # C's classic gotcha: == binds tighter than &.
    expr = parse_expression("a & b == c")
    assert expr.op == "&"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "=="


def test_logical_or_is_weakest():
    expr = parse_expression("a && b || c && d")
    assert expr.op == "||"
    assert expr.left.op == "&&"
    assert expr.right.op == "&&"


def test_left_associativity():
    expr = parse_expression("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "-"
    assert isinstance(expr.right, ast.Identifier) and expr.right.name == "c"


def test_ternary_is_right_associative():
    expr = parse_expression("a ? b : c ? d : e")
    assert isinstance(expr, ast.Conditional)
    assert isinstance(expr.otherwise, ast.Conditional)


def test_unary_operators_nest():
    expr = parse_expression("-~!x")
    assert expr.op == "-"
    assert expr.operand.op == "~"
    assert expr.operand.operand.op == "!"


def test_unary_plus_is_dropped():
    expr = parse_expression("+x")
    assert isinstance(expr, ast.Identifier)


def test_parenthesized_grouping():
    expr = parse_expression("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_call_with_arguments():
    expr = parse_expression("f(1, a, g(2))")
    assert isinstance(expr, ast.Call)
    assert expr.callee == "f" and len(expr.args) == 3
    assert isinstance(expr.args[2], ast.Call)


def test_array_indexing_chains():
    expr = parse_expression("a[i][j]")
    assert isinstance(expr, ast.ArrayIndex)
    assert isinstance(expr.base, ast.ArrayIndex)


def test_recv_expression():
    expr = parse_expression("recv(ch)")
    assert isinstance(expr, ast.Receive)
    assert expr.channel == "ch"


def test_address_and_dereference():
    expr = parse_expression("*(&x + 1)")
    assert isinstance(expr, ast.UnaryOp) and expr.op == "*"
    inner = expr.operand
    assert inner.op == "+"
    assert inner.left.op == "&"


def test_missing_operand_rejected():
    with pytest.raises(ParseError):
        parse_expression("1 +")


def test_unbalanced_paren_rejected():
    with pytest.raises(ParseError):
        parse_expression("(1 + 2")


# ---------------------------------------------------------------------------
# Statements and declarations
# ---------------------------------------------------------------------------


def body_of(source):
    program = parse_program(f"void f() {{ {source} }}")
    return program.functions[0].body.statements


def test_declaration_with_initializer():
    (decl,) = body_of("int x = 5;")
    assert isinstance(decl, ast.VarDecl)
    assert decl.name == "x" and decl.init.value == 5


def test_sized_declaration():
    (decl,) = body_of("uint5 x;")
    assert decl.var_type == IntType(5, signed=False)


def test_array_declaration_with_braces():
    (decl,) = body_of("int a[3] = {1, 2, 3};")
    assert isinstance(decl.var_type, ArrayType)
    assert decl.var_type.size == 3
    assert [e.value for e in decl.array_init] == [1, 2, 3]


def test_pointer_declaration():
    (decl,) = body_of("int *p;")
    assert isinstance(decl.var_type, PointerType)


def test_const_declaration():
    (decl,) = body_of("const int k = 3;")
    assert decl.is_const


def test_compound_assignment_desugars():
    (stmt,) = body_of("x += 2;")
    assert isinstance(stmt, ast.Assign)
    assert isinstance(stmt.value, ast.BinaryOp) and stmt.value.op == "+"


def test_increment_desugars():
    (stmt,) = body_of("x++;")
    assert isinstance(stmt, ast.Assign)
    assert stmt.value.op == "+"
    assert stmt.value.right.value == 1


def test_if_else_chain():
    (stmt,) = body_of("if (a) x = 1; else if (b) x = 2; else x = 3;")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.otherwise, ast.If)


def test_for_with_declaration_head():
    (stmt,) = body_of("for (int i = 0; i < 4; i++) { }")
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.VarDecl)
    assert stmt.cond.op == "<"
    assert isinstance(stmt.step, ast.Assign)


def test_for_with_empty_heads():
    (stmt,) = body_of("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_do_while():
    (stmt,) = body_of("do { x = 1; } while (x < 3);")
    assert isinstance(stmt, ast.DoWhile)


def test_par_block_collects_branches():
    (stmt,) = body_of("par { x = 1; y = 2; { z = 3; } }")
    assert isinstance(stmt, ast.Par)
    assert len(stmt.branches) == 3


def test_within_block():
    (stmt,) = body_of("within (2) { x = 1; }")
    assert isinstance(stmt, ast.Within)
    assert stmt.cycles == 2


def test_send_and_delay_and_wait():
    stmts = body_of("send(ch, x + 1); delay(3); wait();")
    assert isinstance(stmts[0], ast.Send)
    assert isinstance(stmts[1], ast.Delay) and stmts[1].cycles == 3
    assert isinstance(stmts[2], ast.Wait)


def test_assignment_to_literal_rejected():
    with pytest.raises(ParseError):
        body_of("5 = x;")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_program("void f() { int x = 1;")


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


def test_program_with_globals_channels_functions():
    program = parse_program(
        """
        chan<int8> c;
        int g = 4;
        int table[2] = {1, 2};
        process void p() { send(c, 1); }
        int main() { return recv(c); }
        """
    )
    assert len(program.channels) == 1
    assert isinstance(program.channels[0].element_type, IntType)
    assert len(program.globals) == 2
    assert program.function("p").is_process
    assert not program.function("main").is_process
    assert [p.name for p in program.processes] == ["p"]


def test_channel_parameter():
    program = parse_program("void f(chan<int> c) { send(c, 1); }")
    param = program.functions[0].params[0]
    assert isinstance(param.param_type, ChannelType)


def test_process_on_global_rejected():
    with pytest.raises(ParseError):
        parse_program("process int g;")


def test_function_lookup_raises_for_unknown():
    program = parse_program("void f() { }")
    with pytest.raises(KeyError):
        program.function("missing")
