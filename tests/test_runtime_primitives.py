"""Direct tests of low-level runtime primitives: interpreter storage,
FSMD containers, and the flow base plumbing."""

import pytest

from repro.flows import DesignCost, REGISTRY, UnsupportedFeature
from repro.flows.base import roots_of
from repro.interp.interpreter import Box, Pointer, RuntimeChannel
from repro.lang import InterpError, parse
from repro.lang.types import INT, IntType
from repro.rtl.fsmd import FSMD, FSMDSystem


# ---------------------------------------------------------------------------
# Interpreter storage
# ---------------------------------------------------------------------------


def test_box_wraps_on_write():
    box = Box(IntType(8, signed=True), 1, "b")
    box.write(200)
    assert box.read() == -56


def test_box_bounds_checked():
    box = Box(INT, 4, "buf")
    box.write(1, 3)
    assert box.read(3) == 1
    with pytest.raises(InterpError):
        box.read(4)
    with pytest.raises(InterpError):
        box.write(0, -1)


def test_pointer_add_is_pure():
    box = Box(INT, 8, "buf")
    p = Pointer(box, 2)
    q = p.add(3)
    assert p.offset == 2
    assert q.offset == 5
    assert q.box is box


def test_runtime_channel_logs_nothing_initially():
    channel = RuntimeChannel("c", INT)
    assert channel.log == []


# ---------------------------------------------------------------------------
# Flow base plumbing
# ---------------------------------------------------------------------------


def test_roots_include_processes_once():
    program, _ = parse(
        """
        chan<int> c;
        process void p() { send(c, 1); }
        process void q() { send(c, 2); }
        int main() { return recv(c) + recv(c); }
        """
    )
    assert roots_of(program, "main") == ["main", "p", "q"]


def test_check_features_names_flow_and_reason():
    program, info = parse(
        "int main() { int x = 1; int *p = &x; return *p; }"
    )
    flow = REGISTRY["handelc"]
    with pytest.raises(UnsupportedFeature) as excinfo:
        flow.compile(program, info, "main")
    message = str(excinfo.value)
    assert "handelc" in message and "pointer" in message.lower()


def test_design_cost_fmax():
    assert DesignCost(clock_ns=5.0).fmax_mhz == pytest.approx(200.0)
    assert DesignCost(clock_ns=0.0).fmax_mhz == 0.0


def test_flow_metadata_is_complete():
    for key, flow in REGISTRY.items():
        meta = flow.metadata
        assert meta.key == key
        assert meta.title and meta.note and meta.reference
        assert meta.concurrency in ("explicit", "compiler", "structural")
        assert 1988 <= meta.year <= 2003


# ---------------------------------------------------------------------------
# FSMD containers
# ---------------------------------------------------------------------------


def test_fsmd_system_partitions_shared_arrays():
    from repro.flows import compile_flow

    design = compile_flow(
        """
        int shared[4];
        int main(int i) {
            int private[4];
            private[0] = i;
            shared[1] = private[0];
            return shared[1];
        }
        """,
        flow="c2verilog",
    )
    fsmd = design.system.root
    shared_names = {a.name for a in fsmd.shared_arrays()}
    local_names = {a.name for a in fsmd.local_arrays()}
    assert "shared" in shared_names
    assert any(n.startswith("private") for n in local_names)
    assert design.run(args=(9,)).value == 9


def test_fsmd_system_totals():
    from repro.flows import compile_flow

    design = compile_flow(
        """
        chan<int> c;
        process void p() { send(c, 3); }
        int main() { return recv(c); }
        """,
        flow="bachc",
    )
    system = design.system
    assert len(system.fsmds) == 2
    assert system.root.name == "main"
    assert system.total_states() == sum(f.n_states for f in system.fsmds)
