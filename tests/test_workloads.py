"""Workload-suite tests: golden values pinned, categories coherent,
generators deterministic."""

import pytest

from repro.interp import run_source
from repro.lang import parse
from repro.workloads import (
    BY_NAME,
    RECODING_PAIRS,
    WORKLOADS,
    array_source,
    by_category,
    control_source,
    dataflow_source,
    get,
    unrolled_program,
)

# Golden values: change only if a workload's source deliberately changes.
GOLDEN = {
    "fir8": 1043,
    "dot16": 816,
    "matmul4": 113,
    "dct8": 154,
    "crc8": 106,
    "gcd": 21,
    "collatz": 111,
    "parser": 516,
    "maxsearch": 2016,
    "histogram": 289,
    "bubble": 650,
    "prefix": 107,
    "ptr_sum": 136,
    "ptr_swap": 71942,
    "prodcons": 572,
    "pipeline3": 205,
    "fib_iter": 6765,
    "popcount": 205,
}


def test_every_workload_has_a_pinned_golden_value():
    assert set(GOLDEN) == set(BY_NAME)


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_workload_golden_values(workload):
    result = run_source(workload.source, args=workload.args)
    assert result.value == GOLDEN[workload.name]


def test_categories_cover_the_papers_axes():
    assert len(by_category("regular")) >= 4
    assert len(by_category("control")) >= 3
    assert len(by_category("memory")) >= 3
    assert len(by_category("pointer")) >= 2
    assert len(by_category("channel")) >= 2


def test_get_unknown_raises_with_names():
    with pytest.raises(KeyError) as excinfo:
        get("nope")
    assert "known" in str(excinfo.value)


def test_static_bounds_flag_is_accurate():
    from repro.ir.passes import inline_program, try_full_unroll

    for workload in WORKLOADS:
        if workload.category == "channel":
            continue
        program, info = parse(workload.source)
        inlined, _ = inline_program(program, info)
        _, unrolled, resisted = try_full_unroll(inlined.function("main"))
        if workload.static_bounds:
            assert resisted == 0, workload.name


@pytest.mark.parametrize("pair", RECODING_PAIRS, ids=lambda p: p.name)
def test_recoding_pairs_compute_identically(pair):
    stepped = run_source(pair.stepped, args=pair.args)
    fused = run_source(pair.fused, args=pair.args)
    assert stepped.value == fused.value


def test_unrolled_program_preserves_semantics():
    from repro.interp import run_program

    w = get("dot16")
    program, info, count = unrolled_program(w.source, factor=4)
    assert count == 1
    result = run_program(program, info, "main", w.args)
    assert result.value == GOLDEN["dot16"]


# ---------------------------------------------------------------------------
# Synthetic generator
# ---------------------------------------------------------------------------


def test_generator_is_deterministic():
    assert dataflow_source(7) == dataflow_source(7)
    assert control_source(7) == control_source(7)
    assert array_source(7) == array_source(7)
    assert dataflow_source(7) != dataflow_source(8)


@pytest.mark.parametrize("seed", range(6))
def test_generated_dataflow_programs_run(seed):
    source = dataflow_source(seed)
    result = run_source(source, args=(seed * 3 + 1, seed * 5 + 2))
    assert result.value is not None


@pytest.mark.parametrize("seed", range(6))
def test_generated_control_programs_run(seed):
    source = control_source(seed)
    result = run_source(source, args=(seed + 1, seed * 2 + 1))
    assert result.value is not None


@pytest.mark.parametrize("seed", range(6))
def test_generated_array_programs_run(seed):
    source = array_source(seed)
    result = run_source(source, args=(seed,))
    assert result.value is not None
