"""Report-formatting tests."""

from repro.report import format_dict, format_series, format_table


def test_table_alignment():
    text = format_table(
        ["name", "value"],
        [["a", 1], ["longer", 22]],
    )
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "------" in lines[1]
    # Columns align: 'value' header starts where 1 and 22 start.
    header_col = lines[0].index("value")
    assert lines[2][header_col] == "1"
    assert lines[3][header_col:header_col + 2] == "22"


def test_table_title_underlined():
    text = format_table(["a"], [[1]], title="My Title")
    lines = text.splitlines()
    assert lines[0] == "My Title"
    assert lines[1] == "=" * len("My Title")


def test_table_handles_empty_rows():
    text = format_table(["x", "y"], [])
    assert "x" in text and "y" in text


def test_table_stringifies_everything():
    text = format_table(["v"], [[None], [3.5], [True]])
    assert "None" in text and "3.5" in text and "True" in text


def test_series_bars_scale_to_max():
    text = format_series("s", [(1, 10.0), (2, 20.0)], width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 5
    assert lines[2].count("#") == 10


def test_series_zero_values_have_no_bar():
    text = format_series("s", [(1, 0.0), (2, 4.0)])
    lines = text.splitlines()
    assert "#" not in lines[1]
    assert "#" in lines[2]


def test_series_all_zero_does_not_crash():
    text = format_series("s", [(1, 0.0), (2, 0.0)])
    assert "s" in text


def test_dict_formatting():
    text = format_dict("facts", {"alpha": 1, "b": "two"})
    assert text.splitlines()[0] == "facts"
    assert "alpha" in text and "two" in text
