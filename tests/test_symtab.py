"""Symbol-table unit tests."""

import pytest

from repro.lang import SemanticError
from repro.lang.symtab import Scope, ScopeStack, Symbol, SymbolKind
from repro.lang.types import INT


def test_symbols_compare_by_identity():
    a = Symbol("x", INT, SymbolKind.LOCAL)
    b = Symbol("x", INT, SymbolKind.LOCAL)
    assert a != b
    assert a == a
    assert len({a, b}) == 2


def test_locals_get_unique_names_globals_keep_theirs():
    local = Symbol("x", INT, SymbolKind.LOCAL)
    assert local.unique_name != "x"
    assert local.unique_name.startswith("x.")
    for kind in (SymbolKind.GLOBAL, SymbolKind.FUNCTION, SymbolKind.CHANNEL):
        assert Symbol("g", INT, kind).unique_name == "g"


def test_scope_lookup_chains_to_parent():
    parent = Scope()
    outer = Symbol("x", INT, SymbolKind.LOCAL)
    parent.declare(outer)
    child = Scope(parent)
    assert child.lookup("x") is outer
    inner = Symbol("x", INT, SymbolKind.LOCAL)
    child.declare(inner)
    assert child.lookup("x") is inner
    assert parent.lookup("x") is outer


def test_redeclaration_in_same_scope_rejected():
    scope = Scope()
    scope.declare(Symbol("x", INT, SymbolKind.LOCAL))
    with pytest.raises(SemanticError):
        scope.declare(Symbol("x", INT, SymbolKind.LOCAL))


def test_scope_stack_push_pop():
    stack = ScopeStack()
    stack.declare(Symbol("g", INT, SymbolKind.GLOBAL))
    stack.push()
    stack.declare(Symbol("l", INT, SymbolKind.LOCAL))
    assert stack.lookup("l") is not None
    assert stack.lookup("g") is not None
    stack.pop()
    assert stack.lookup("l") is None
    assert stack.lookup("g") is not None


def test_global_scope_cannot_be_popped():
    stack = ScopeStack()
    with pytest.raises(RuntimeError):
        stack.pop()


def test_lookup_missing_returns_none():
    assert Scope().lookup("ghost") is None
