"""Unit tests for the flow-aware synthesizability linter.

One test (or small group) per rule, plus the cross-validation invariant the
linter exists for: its errors agree with what each flow's compile raises —
same verdict, same rule id — over the entire workload suite.
"""

import pytest

from repro.analysis.lint import (
    ALL_FLOWS,
    Diagnostic,
    LintReport,
    RULE_ALIAS,
    RULE_CHANNEL,
    RULE_COMB_CYCLE,
    RULE_DELAY,
    RULE_DYNAMIC_MEMORY,
    RULE_PARSE,
    RULE_POINTER,
    RULE_PROCESS,
    RULE_RECURSION,
    RULE_SHARED_RACE,
    RULE_STRUCTURE,
    RULE_UNBOUNDED_LOOP,
    Severity,
    lint,
)
from repro.flows import COMPILABLE, REGISTRY, FlowError, UnsupportedFeature
from repro.flows.registry import lint_rules
from repro.lang.errors import SourceLocation
from repro.workloads.suite import WORKLOADS


def rules_of(report, flow, severity=None):
    return report.rules(flow, severity)


# ---------------------------------------------------------------------------
# Diagnostic / report model
# ---------------------------------------------------------------------------


def test_diagnostic_str_includes_location_rule_and_hint():
    diag = Diagnostic(
        flow="cones",
        rule=RULE_POINTER,
        severity=Severity.ERROR,
        message="no pointers",
        location=SourceLocation(3, 7, "a.c"),
        hint="use arrays",
    )
    text = str(diag)
    assert "a.c:3:7" in text
    assert RULE_POINTER in text
    assert "[cones]" in text
    assert "use arrays" in text


def test_report_is_clean_and_all_flows_marker():
    report = LintReport(flows=["cones", "cash"])
    report.add(Diagnostic(flow=ALL_FLOWS, rule=RULE_PARSE,
                          severity=Severity.ERROR, message="bad parse"))
    assert not report.is_clean("cones")
    assert not report.is_clean("cash")
    assert report.errors("cones")[0].rule == RULE_PARSE


def test_warnings_do_not_break_cleanliness():
    report = LintReport(flows=["bachc"])
    report.add(Diagnostic(flow="bachc", rule=RULE_SHARED_RACE,
                          severity=Severity.WARNING, message="race"))
    assert report.is_clean("bachc")
    assert report.warnings("bachc")


# ---------------------------------------------------------------------------
# Feature rules (SYN101/102/107/108/109/110/111)
# ---------------------------------------------------------------------------


def test_recursion_rule_fires_for_every_recursion_forbidding_flow():
    source = "int main(int n) { if (n <= 1) { return 1; } return n * main(n - 1); }"
    report = lint(source)
    for key in ("cones", "hardwarec", "systemc", "handelc", "specc", "bachc"):
        assert RULE_RECURSION in rules_of(report, key, Severity.ERROR)
    # CASH inlines bounded recursion: no recursion rule in its FORBIDDEN set.
    assert RULE_RECURSION not in rules_of(report, "cash", Severity.ERROR)


def test_pointer_rule_fires_with_source_location():
    source = "int main(int a) { int x = 4; int *p = &x; return *p + a; }"
    report = lint(source, flow="cones")
    errors = report.errors("cones")
    assert any(d.rule == RULE_POINTER for d in errors)
    pointer = next(d for d in errors if d.rule == RULE_POINTER)
    assert pointer.location.line == 1
    assert pointer.location.column > 0


def test_channel_rule_only_on_channel_free_flows():
    source = """
chan<int> c;
process void prod() { send(c, 3); }
int main() { return recv(c); }
"""
    report = lint(source)
    assert RULE_CHANNEL in rules_of(report, "c2verilog", Severity.ERROR)
    assert RULE_CHANNEL in rules_of(report, "cash", Severity.ERROR)
    assert RULE_CHANNEL not in rules_of(report, "handelc", Severity.ERROR)
    assert RULE_CHANNEL not in rules_of(report, "bachc", Severity.ERROR)


def test_delay_rule_and_flow_specific_acceptance():
    source = "int main(int a) { delay(2); return a; }"
    report = lint(source)
    assert RULE_DELAY in rules_of(report, "cones", Severity.ERROR)
    assert RULE_DELAY in rules_of(report, "c2verilog", Severity.ERROR)
    assert report.is_clean("handelc")
    assert report.is_clean("hardwarec")


# ---------------------------------------------------------------------------
# Frontend rules (SYN301/104)
# ---------------------------------------------------------------------------


def test_parse_failure_applies_to_all_flows():
    report = lint("this is not a C-like program")
    assert report.diagnostics
    assert all(d.flow == ALL_FLOWS for d in report.diagnostics)
    for key in COMPILABLE:
        assert not report.is_clean(key)


def test_dynamic_memory_detected_via_malloc():
    report = lint("int main() { int *p = malloc(4); return *p; }")
    rules = {d.rule for d in report.diagnostics}
    assert RULE_DYNAMIC_MEMORY in rules


def test_missing_entry_function_reported():
    report = lint("int helper(int a) { return a; }")
    assert any("main" in d.message for d in report.errors())


# ---------------------------------------------------------------------------
# Structural rules
# ---------------------------------------------------------------------------


def test_process_rule_for_single_program_flows():
    source = """
int g;
process void p() { g = 1; }
int main() { return g; }
"""
    report = lint(source)
    assert RULE_PROCESS in rules_of(report, "cones", Severity.ERROR)
    assert RULE_PROCESS in rules_of(report, "cash", Severity.ERROR)
    assert RULE_PROCESS not in rules_of(report, "handelc", Severity.ERROR)
    process = next(d for d in report.errors("cones")
                   if d.rule == RULE_PROCESS)
    assert process.location.line == 3


def test_static_loop_bound_rule_cones_only():
    source = "int main(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }"
    report = lint(source)
    assert RULE_UNBOUNDED_LOOP in rules_of(report, "cones", Severity.ERROR)
    # Clocked flows merely warn: latency is unbounded but it compiles.
    assert report.is_clean("c2verilog")
    assert RULE_UNBOUNDED_LOOP in rules_of(report, "c2verilog", Severity.WARNING)


def test_static_loop_accepted_by_cones():
    source = "int main(int a) { int s = 0; for (int i = 0; i < 8; i++) { s += a; } return s; }"
    report = lint(source, flow="cones")
    assert report.is_clean("cones")


def test_zero_time_loop_rule_handelc():
    # The loop body only tests — no assignment or delay consumes a cycle.
    source = "int main(int n) { while (n > 0) { if (n == 1) { break; } } return n; }"
    report = lint(source, flow="handelc")
    assert RULE_COMB_CYCLE in rules_of(report, "handelc", Severity.ERROR)
    with pytest.raises(UnsupportedFeature) as raised:
        REGISTRY["handelc"].compile_source(source)
    assert raised.value.rule == RULE_COMB_CYCLE


def test_cycle_consuming_loop_is_clean_for_handelc():
    source = "int main(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }"
    report = lint(source, flow="handelc")
    assert report.is_clean("handelc")


def test_par_structure_rule_handelc():
    source = """
int main(int n) {
  int a = 0;
  int b = 0;
  par { { for (int i = 0; i < 4; i++) { a += 1; } } { b = n; } }
  return a + b;
}
"""
    report = lint(source, flow="handelc")
    assert RULE_STRUCTURE in rules_of(report, "handelc", Severity.ERROR)
    with pytest.raises(UnsupportedFeature) as raised:
        REGISTRY["handelc"].compile_source(source)
    assert raised.value.rule == RULE_STRUCTURE


def test_receive_position_rule_handelc():
    source = """
chan<int> c;
process void p() { send(c, 2); }
int main() { return recv(c) + 1; }
"""
    report = lint(source, flow="handelc")
    assert RULE_STRUCTURE in rules_of(report, "handelc", Severity.ERROR)
    with pytest.raises(UnsupportedFeature) as raised:
        REGISTRY["handelc"].compile_source(source)
    assert raised.value.rule == RULE_STRUCTURE


def test_receive_standing_alone_is_clean():
    source = """
chan<int> c;
process void p() { send(c, 2); }
int main() { int x = recv(c); return x + 1; }
"""
    report = lint(source, flow="handelc")
    assert report.is_clean("handelc")


# ---------------------------------------------------------------------------
# CDFG-level rules
# ---------------------------------------------------------------------------


def test_shared_race_warning_without_channel():
    source = """
int g;
process void p() { g = g + 1; }
int main(int n) { g = n; return g; }
"""
    report = lint(source)
    for key in ("bachc", "handelc", "specc", "systemc"):
        race = [d for d in report.warnings(key) if d.rule == RULE_SHARED_RACE]
        assert race, f"expected race warning for {key}"
        assert "'g'" in race[0].message


def test_no_race_warning_when_channel_synchronizes():
    source = """
int g;
chan<int> c;
process void p() { g = recv(c); }
int main(int n) { send(c, n); return n; }
"""
    report = lint(source, flow="bachc")
    assert not [d for d in report.warnings("bachc")
                if d.rule == RULE_SHARED_RACE]


def test_alias_fallback_warning_on_unresolved_pointer():
    source = """
int main(int n) {
  int a = 1;
  int b = 2;
  int *p;
  if (n > 0) { p = &a; } else { p = &b; }
  return *p;
}
"""
    report = lint(source, flow="c2verilog")
    assert RULE_ALIAS in rules_of(report, "c2verilog", Severity.WARNING)
    # It still compiles: alias fallback is a cost hazard, not a rejection.
    assert report.is_clean("c2verilog")
    REGISTRY["c2verilog"].compile_source(source)


def test_unbounded_latency_warning_location_points_at_loop():
    source = "int main(int n) { int s = 0;\n  while (n > 0) { s += n; n -= 1; }\n  return s; }"
    report = lint(source, flow="bachc")
    warning = next(d for d in report.warnings("bachc")
                   if d.rule == RULE_UNBOUNDED_LOOP)
    assert warning.location.line == 2


# ---------------------------------------------------------------------------
# Registry wiring
# ---------------------------------------------------------------------------


def test_every_compilable_flow_declares_rules():
    for key in COMPILABLE:
        rules = lint_rules(key)
        assert rules, f"{key} has no lint rules"
        # Feature rules mirror the flow's FORBIDDEN table exactly.
        feature_rules = {r.feature for r in rules if hasattr(r, "feature")}
        assert feature_rules == set(REGISTRY[key].FORBIDDEN)


def test_unknown_flow_raises_keyerror():
    with pytest.raises(KeyError):
        lint("int main() { return 0; }", flow="no-such-flow")


# ---------------------------------------------------------------------------
# Cross-validation: the linter agrees with the compilers (tentpole contract)
# ---------------------------------------------------------------------------
#
# The compiler side of the comparison runs through the matrix runner — the
# same engine behind ``repro sweep`` — so the linter is validated against
# exactly the CellResult verdicts every other consumer sees, and the whole
# matrix compiles once per session instead of once per parametrized case.


@pytest.fixture(scope="module")
def suite_cells():
    from repro.runner import MatrixEngine, suite_tasks

    results = MatrixEngine(jobs=2).run_cells(suite_tasks())
    return {(r.workload, r.flow): r for r in results}


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_linter_matches_compiler_on_suite(workload, suite_cells):
    from repro.runner import REJECTED

    report = lint(workload.source, flows=list(COMPILABLE))
    for key in COMPILABLE:
        cell = suite_cells[(workload.name, key)]
        assert not cell.unexpected, (
            f"{workload.name} x {key}: runner verdict {cell.verdict!r}"
            f" — {cell.note(200)}"
        )
        if report.is_clean(key):
            assert cell.ok, (
                f"linter passed {workload.name} for {key} but the runner"
                f" verdict is {cell.verdict!r}: {cell.note(200)}"
            )
        else:
            assert cell.verdict == REJECTED, (
                f"linter rejected {workload.name} for {key} with"
                f" {report.rules(key, Severity.ERROR)} but the runner"
                f" verdict is {cell.verdict!r}"
            )
        if cell.verdict == REJECTED and cell.rule:
            assert cell.rule in report.rules(key, Severity.ERROR), (
                f"{workload.name} x {key}: compile rejected with"
                f" {cell.rule} but linter predicted"
                f" {report.rules(key, Severity.ERROR)}"
            )


def test_unsupported_feature_carries_rule_and_location():
    source = "int main(int a) { int x = 1; int *p = &x; return *p + a; }"
    with pytest.raises(UnsupportedFeature) as raised:
        REGISTRY["cones"].compile_source(source)
    assert raised.value.rule == RULE_POINTER
    assert raised.value.location is not None
    assert raised.value.location.line == 1
    assert "at <input>:1:" in str(raised.value)
