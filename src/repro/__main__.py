"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run FILE --flow KEY [--args N,N,...]``
    Compile and simulate a program; prints value, cycles, cost.
``compile FILE --flow KEY [-o OUT.v]``
    Compile and emit Verilog.
``matrix FILE [--args ...]``
    Run one program through every flow, printing the comparison table.
``table1``
    Print the regenerated Table 1.
``flows``
    List the registered flows with their concurrency/timing axes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .flows import (
    COMPILABLE,
    REGISTRY,
    FlowError,
    UnsupportedFeature,
    compile_flow,
    table1_rows,
)
from .interp import run_source
from .report import format_table


def _parse_args_list(text: Optional[str]) -> Tuple[int, ...]:
    if not text:
        return ()
    return tuple(int(part) for part in text.split(","))


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(options: argparse.Namespace) -> int:
    source = _read(options.file)
    args = _parse_args_list(options.args)
    design = compile_flow(source, flow=options.flow, function=options.function)
    result = design.run(args=args)
    cost = design.cost()
    print(f"value      : {result.value}")
    if cost.clock_ns > 0:
        print(f"cycles     : {result.cycles}")
        print(f"clock      : {cost.clock_ns:.2f} ns  "
              f"({cost.fmax_mhz:.0f} MHz)")
        print(f"latency    : {result.cycles * cost.clock_ns:.1f} ns")
    else:
        print(f"latency    : {result.time_ns:.1f} ns (unclocked)")
    print(f"area       : {cost.area_ge:.0f} GE")
    if result.globals:
        print(f"globals    : {result.globals}")
    if result.channel_log:
        print(f"channels   : {result.channel_log}")
    return 0


def cmd_compile(options: argparse.Namespace) -> int:
    source = _read(options.file)
    design = compile_flow(source, flow=options.flow, function=options.function)
    verilog = design.verilog()
    if options.output:
        with open(options.output, "w") as handle:
            handle.write(verilog + "\n")
        print(f"wrote {options.output} ({len(verilog.splitlines())} lines)")
    else:
        print(verilog)
    return 0


def cmd_matrix(options: argparse.Namespace) -> int:
    source = _read(options.file)
    args = _parse_args_list(options.args)
    golden = run_source(source, args=args)
    print(f"golden model: value = {golden.value}\n")
    rows: List[List[object]] = []
    for key in COMPILABLE:
        try:
            design = REGISTRY[key].compile_source(source, function=options.function)
            result = design.run(args=args)
        except (UnsupportedFeature, FlowError) as rejection:
            rows.append([key, "rejected", "-", "-", "-",
                         str(rejection).split("] ", 1)[-1][:44]])
            continue
        cost = design.cost()
        status = "OK" if result.value == golden.value else "MISMATCH"
        latency = (
            f"{result.cycles * cost.clock_ns:.0f}"
            if cost.clock_ns > 0 else f"{result.time_ns:.0f}"
        )
        rows.append([key, status,
                     result.cycles if cost.clock_ns > 0 else "-",
                     latency, f"{cost.area_ge:.0f}", ""])
    print(format_table(
        ["flow", "status", "cycles", "latency(ns)", "area(GE)", "note"], rows
    ))
    return 0


def cmd_table1(_: argparse.Namespace) -> int:
    rows = table1_rows()
    print(format_table(
        ["language", "year", "note", "concurrency", "timing"],
        [[r["language"], r["year"], r["note"], r["concurrency"], r["timing"]]
         for r in rows],
        title="Table 1: C-like languages/compilers (chronological order)",
    ))
    return 0


def cmd_flows(_: argparse.Namespace) -> int:
    rows = []
    for key, flow in REGISTRY.items():
        meta = flow.metadata
        rows.append([key, meta.title, meta.concurrency_detail[:44],
                     meta.timing_detail[:44]])
    print(format_table(["key", "language", "concurrency", "timing"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="C-like hardware synthesis framework"
                    " (Edwards, DATE 2005, reproduced)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and simulate")
    run_parser.add_argument("file")
    run_parser.add_argument("--flow", default="c2verilog",
                            choices=sorted(REGISTRY))
    run_parser.add_argument("--function", default="main")
    run_parser.add_argument("--args", help="comma-separated integers")
    run_parser.set_defaults(handler=cmd_run)

    compile_parser = sub.add_parser("compile", help="compile to Verilog")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--flow", default="c2verilog",
                                choices=sorted(REGISTRY))
    compile_parser.add_argument("--function", default="main")
    compile_parser.add_argument("-o", "--output")
    compile_parser.set_defaults(handler=cmd_compile)

    matrix_parser = sub.add_parser("matrix", help="all flows on one program")
    matrix_parser.add_argument("file")
    matrix_parser.add_argument("--function", default="main")
    matrix_parser.add_argument("--args", help="comma-separated integers")
    matrix_parser.set_defaults(handler=cmd_matrix)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        handler=cmd_table1
    )
    sub.add_parser("flows", help="list flows").set_defaults(handler=cmd_flows)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        return options.handler(options)
    except (UnsupportedFeature, FlowError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
