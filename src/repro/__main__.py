"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run FILE --flow KEY [--args N,N,...] [--sim-backend B] [--profile]
[--trace OUT.json]``
    Compile and simulate a program; prints value, cycles, cost, and
    (with ``--profile``) the simulation profile.  ``--sim-backend
    compiled`` specializes FSMD artifacts to closures before running;
    ``batched`` runs the lockstep batch engine (one lane here, many in
    sweeps and fuzz campaigns).
    ``--trace`` records every pipeline phase (parse through sim) and
    writes a Chrome trace_event file for Perfetto.
``compile FILE --flow KEY [-o OUT.v]``
    Compile and emit Verilog.
``matrix FILE [--args ...] [--lint] [--jobs N] [--cache-dir D | --no-cache]
[--trace-summary]``
    Run one program through every flow, printing the comparison table
    with per-cell wall-clock times.  ``--lint`` pre-flights each flow with
    the linter and skips compiles the linter already rejects.
    ``--trace-summary`` traces every cell and aggregates the per-flow,
    per-phase wall-time table.  Exits nonzero if any flow errors, times
    out, or mismatches the golden model (historical rejections are
    expected and exit zero).
``sweep [--jobs N] [--cache-dir D | --no-cache] [--flows ...] [--workloads ...]``
    The full workload × flow matrix through the parallel runner with the
    content-addressed artifact cache; unchanged cells replay from disk.
``lint FILE [--flow KEY | --all] [--format text|json]``
    Predict, per flow, what compile would reject — with rule ids, source
    locations, and fix hints — without running any backend.  ``--format
    json`` emits the machine-readable report (rule id, severity,
    file:line:col, fix hint per diagnostic, verdict per flow).
``check FILE [--flow KEY | --all] [--pipeline-ii N] [--format text|json]``
    The time-sensitive tier: everything ``lint`` checks plus the TIM
    rules — schedule-aware timing/resource obligations (within-budget
    feasibility, rendezvous deadlock shape, lockstep ``par`` conflicts,
    memory-port occupancy, pipeline II floors with ``--pipeline-ii``).
``fuzz [--flows ...] [--seeds N] [--seed-base N] [--time-budget S]
[--jobs N] [--no-reduce] [--update-corpus] [--corpus-dir D]
[--opt-levels 0,2]``
    Differential fuzz campaign: generate programs targeted at each flow's
    accepted subset (every fourth seed probes the reject boundary), derive
    semantics-preserving mutants, run everything through the shared
    engine, reduce divergences to 1-minimal reproducers, and compare
    their signatures against the triaged corpus.  Exits nonzero only on
    divergences the corpus has never seen.
``serve [--host H] [--port P] [--jobs N] [--queue-limit N] [--rate R]
[--burst B] [--timeout S] [--cache-dir D | --no-cache] [--trace OUT.json]``
    Synthesis-as-a-service: an asyncio HTTP/JSON server exposing
    ``/synthesize``, ``/check``, and ``/lint``.  Requests are validated
    into ``SynthesisOptions``, keyed by the artifact cache's content
    address, and deduplicated three ways (warm cache hits, in-flight
    coalescing, bounded pool dispatch).  ``/stats`` reports hit/coalesce/
    miss counters, queue depth, and latency histograms; SIGTERM drains
    gracefully.  See docs/serving.md.
``cache stats|prune|clear [--cache-dir D] [--max-bytes N]``
    Inspect and bound the artifact cache: ``stats`` prints entry count
    and total bytes, ``prune --max-bytes N`` deletes oldest-mtime entries
    (LRU) until the cache fits (N accepts K/M/G suffixes), ``clear``
    removes everything.
``table1``
    Print the regenerated Table 1.
``flows``
    List the registered flows with their concurrency/timing axes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .analysis.lint import Severity, lint
from .flows import (
    COMPILABLE,
    REGISTRY,
    FlowError,
    SynthesisOptions,
    UnsupportedFeature,
    synthesize,
    table1_rows,
)
from .report import format_cell_results, format_table


def _parse_args_list(text: Optional[str]) -> Tuple[int, ...]:
    if not text:
        return ()
    return tuple(int(part) for part in text.split(","))


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def cmd_run(options: argparse.Namespace) -> int:
    source = _read(options.file)
    args = _parse_args_list(options.args)
    compiled = synthesize(source, SynthesisOptions(
        flow=options.flow, function=options.function,
        sim_backend=options.sim_backend, trace=bool(options.trace),
    ))
    profile = None
    if options.profile:
        from .sim import SimProfile

        profile = SimProfile()
    result = compiled.run(args=args, sim_profile=profile)
    cost = compiled.cost()
    if options.trace:
        try:
            compiled.verilog()
        except (NotImplementedError, FlowError):
            pass  # unemittable designs still get the rest of the trace
        compiled.trace.write_chrome(options.trace)
    print(f"value      : {result.value}")
    if cost.clock_ns > 0:
        print(f"cycles     : {result.cycles}")
        print(f"clock      : {cost.clock_ns:.2f} ns  "
              f"({cost.fmax_mhz:.0f} MHz)")
        print(f"latency    : {result.cycles * cost.clock_ns:.1f} ns")
    else:
        print(f"latency    : {result.time_ns:.1f} ns (unclocked)")
    print(f"area       : {cost.area_ge:.0f} GE")
    if result.globals:
        print(f"globals    : {result.globals}")
    if result.channel_log:
        print(f"channels   : {result.channel_log}")
    if profile is not None and profile.cycles:
        print()
        print(profile.render())
    if options.trace:
        spans = compiled.trace.span_count()
        print(f"trace      : {options.trace} ({spans} spans)")
    return 0


def cmd_compile(options: argparse.Namespace) -> int:
    source = _read(options.file)
    compiled = synthesize(source, SynthesisOptions(
        flow=options.flow, function=options.function,
    ))
    verilog = compiled.verilog()
    if options.output:
        with open(options.output, "w") as handle:
            handle.write(verilog + "\n")
        print(f"wrote {options.output} ({len(verilog.splitlines())} lines)")
    else:
        print(verilog)
    return 0


def _selected_flows(options: argparse.Namespace) -> List[str]:
    if options.flow and not options.all:
        return [options.flow]
    return list(COMPILABLE)


def _print_report(report, selected, options, title: str) -> int:
    """Shared lint/check output: a per-flow verdict table plus rendered
    diagnostics, or the machine-readable JSON report with ``--format
    json``.  Exit code is 1 when a single requested flow has errors."""
    if getattr(options, "format", "text") == "json":
        print(report.to_json())
    else:
        summary: List[List[object]] = []
        for key in selected:
            errors = report.errors(key)
            warnings = report.warnings(key)
            if errors:
                verdict = "reject"
                first = f"{errors[0].rule}: {errors[0].message}"[:52]
            elif warnings:
                verdict = "warn"
                first = f"{warnings[0].rule}: {warnings[0].message}"[:52]
            else:
                verdict = "clean"
                first = ""
            summary.append([key, verdict, len(errors), len(warnings), first])
        print(format_table(
            ["flow", "verdict", "errors", "warnings", "first diagnostic"],
            summary,
            title=title,
        ))
        if report.diagnostics:
            print()
            print(report.render())
    if options.flow and not options.all:
        return 1 if report.errors(options.flow) else 0
    return 0


def cmd_lint(options: argparse.Namespace) -> int:
    source = _read(options.file)
    selected = _selected_flows(options)
    report = lint(source, flows=selected, function=options.function,
                  filename=options.file)
    return _print_report(report, selected, options,
                         title=f"lint: {options.file}")


def cmd_check(options: argparse.Namespace) -> int:
    from .analysis.timing import CheckOptions, check

    source = _read(options.file)
    selected = _selected_flows(options)
    check_options = CheckOptions(
        pipeline_ii=options.pipeline_ii,
        clock_budget_ns=options.clock_budget,
        memory_ports=options.memory_ports,
    )
    report = check(source, flows=selected, function=options.function,
                   filename=options.file, options=check_options)
    return _print_report(report, selected, options,
                         title=f"check: {options.file}")


def _make_cache(options: argparse.Namespace):
    from .runner import DEFAULT_CACHE_DIR, ArtifactCache

    if getattr(options, "no_cache", False):
        return None
    return ArtifactCache(getattr(options, "cache_dir", None) or DEFAULT_CACHE_DIR)


def _make_engine(options: argparse.Namespace):
    from .runner import MatrixEngine

    return MatrixEngine(
        jobs=getattr(options, "jobs", 1),
        cache=_make_cache(options),
        timeout_s=getattr(options, "timeout", None) or 60.0,
        trace=getattr(options, "trace_summary", False),
    )


def _print_summary(results, engine) -> None:
    from .report import summarize_cells

    summary = summarize_cells(results)
    verdicts = "  ".join(
        f"{name}: {count}" for name, count in sorted(summary["verdicts"].items())
    )
    line = (
        f"\n{summary['cells']} cells ({verdicts})"
        f"  |  {summary['cached']} cached / {summary['fresh']} fresh"
        f"  |  cell wall time {summary['wall_s']:.2f}s"
    )
    if engine.cache is not None:
        line += f"  |  cache: {engine.cache.hits} hits, {engine.cache.misses} misses"
    print(line)


def cmd_matrix(options: argparse.Namespace) -> int:
    from .runner import CellTask, file_tasks

    source = _read(options.file)
    args = _parse_args_list(options.args)
    engine = _make_engine(options)
    probe = CellTask(workload=options.file, source=source, flow="probe",
                     function=options.function, args=args)
    golden = engine.golden_observable(probe)
    if golden is None:
        print("golden model: interpreter could not run this program")
    else:
        print(f"golden model: value = {golden[0]}\n")

    selected = list(COMPILABLE)
    lint_cells = []
    if options.lint or options.check:
        from .runner import CellResult

        if options.check:
            from .analysis.timing import check as run_check

            label = "check:reject"
            report = run_check(source, flows=selected,
                               function=options.function,
                               filename=options.file)
        else:
            label = "lint:reject"
            report = lint(source, flows=selected, function=options.function,
                          filename=options.file)
        for key in list(selected):
            if not report.is_clean(key):
                first = report.errors(key)[0]
                lint_cells.append(CellResult(
                    workload=options.file, flow=key, args=args,
                    verdict=label,
                    diagnostics=[f"{first.rule}: {first.message}"],
                ))
                selected.remove(key)

    tasks = file_tasks(source, name=options.file, flows=selected,
                       function=options.function, args=args,
                       sim_backend=options.sim_backend,
                       opt_level=options.opt_level)
    results = engine.run_cells(tasks)
    print(format_cell_results(results + lint_cells, show_workload=False))
    if options.trace_summary:
        from .report import format_trace_summary

        print()
        print(format_trace_summary(results, title="phase wall time by flow"))
    _print_summary(results, engine)
    # Historical rejections are the paper working as documented; anything
    # else (error, timeout, golden-model mismatch) fails the run.
    return 1 if any(cell.unexpected for cell in results) else 0


def cmd_sweep(options: argparse.Namespace) -> int:
    from .report import summarize_cells
    from .runner import suite_tasks
    from .workloads import suite as workload_suite

    flows = None
    if options.flows:
        flows = [key.strip() for key in options.flows.split(",") if key.strip()]
        for key in flows:
            if key not in REGISTRY:
                print(f"error: unknown flow {key!r}", file=sys.stderr)
                return 2
    workloads = None
    if options.workloads:
        names = [n.strip() for n in options.workloads.split(",") if n.strip()]
        try:
            workloads = [workload_suite.get(name) for name in names]
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    engine = _make_engine(options)
    tasks = suite_tasks(workloads=workloads, flows=flows,
                        sim_backend=options.sim_backend,
                        opt_level=options.opt_level)
    results = engine.run_cells(tasks)
    print(format_cell_results(
        results,
        title=f"sweep: {len(results)} cells, jobs={engine.jobs}",
    ))
    if options.trace_summary:
        from .report import format_trace_summary

        print()
        print(format_trace_summary(results, title="phase wall time by flow"))
    _print_summary(results, engine)
    summary = summarize_cells(results)
    return 1 if summary["unexpected"] else 0


def cmd_fuzz(options: argparse.Namespace) -> int:
    from .fuzz import FuzzOptions, promote, run_campaign

    flows = None
    if options.flows and options.flows != "all":
        flows = [key.strip() for key in options.flows.split(",") if key.strip()]
        for key in flows:
            if key not in COMPILABLE:
                print(f"error: unknown flow {key!r}", file=sys.stderr)
                return 2

    cache_dir = ""
    if not options.no_cache:
        from .runner import DEFAULT_CACHE_DIR

        cache_dir = str(options.cache_dir or DEFAULT_CACHE_DIR)

    opt_levels = ()
    if options.opt_levels:
        try:
            opt_levels = tuple(
                int(part) for part in options.opt_levels.split(",") if part
            )
        except ValueError:
            print(f"error: bad --opt-levels {options.opt_levels!r}",
                  file=sys.stderr)
            return 2

    profiles = tuple(
        part.strip() for part in (options.profiles or "").split(",")
        if part.strip()
    )
    if options.shard_index is not None and options.shards <= 1:
        print("error: --shard-index needs --shards > 1", file=sys.stderr)
        return 2

    fuzz_options = FuzzOptions(
        flows=tuple(flows) if flows is not None else None,
        profiles=profiles,
        seeds=options.seeds,
        seed_base=options.seed_base,
        campaign_seed=options.campaign_seed,
        jobs=options.jobs,
        time_budget_s=options.time_budget or 0.0,
        reduce=not options.no_reduce,
        mutations=options.mutations,
        timeout_s=options.timeout or 20.0,
        cache_dir=cache_dir,
        corpus_dir=options.corpus_dir,
        sim_backend=options.sim_backend,
        input_lanes=max(1, options.input_lanes),
        opt_levels=opt_levels,
        coverage=not options.no_coverage,
        shards=max(1, options.shards),
        shard_index=options.shard_index,
        shard_dir=options.shard_dir or "",
    )
    report = run_campaign(fuzz_options)

    if options.format == "json":
        print(report.to_json(), end="")
    else:
        print("\n".join(report.summary_lines()))
        if report.budget_exhausted:
            print(f"(stopped at --time-budget {options.time_budget}s)")
        for divergence in report.divergences:
            print()
            print(divergence.describe())

    if options.update_corpus and report.divergences:
        # Shard-delta mode writes only this run's *new* signatures into
        # the shard dir; the merge step folds them into the corpus.
        only = (
            set(report.new_signatures)
            if fuzz_options.shard_dir else None
        )
        written = promote(report, fuzz_options.promote_path, only=only)
        for relative in written:
            print(f"corpus += {relative}", file=sys.stderr
                  if options.format == "json" else sys.stdout)

    if options.format != "json":
        if report.known_signatures:
            print(f"\n{len(report.known_signatures)} known signature(s) "
                  "already triaged in the corpus")
        if report.new_signatures:
            print(f"\n{len(report.new_signatures)} NEW divergence "
                  "signature(s) not in the corpus:")
            for signature_id in report.new_signatures:
                print(f"  {signature_id}")
            if options.update_corpus:
                print("triaged; review and commit the new entries")
            else:
                print("re-run with --update-corpus to triage them into"
                      " tests/corpus/")
    if report.new_signatures and not options.update_corpus:
        return 1
    return 0


def cmd_fuzz_merge(options: argparse.Namespace) -> int:
    from .fuzz import merge_corpus_dirs

    report = merge_corpus_dirs(options.sources, options.dest)
    for relative in report.copied:
        print(f"corpus += {relative}")
    for relative in report.conflicts:
        print(f"conflict (smaller bytes kept): {relative}")
    print(report.summary())
    return 0


def cmd_serve(options: argparse.Namespace) -> int:
    from .serve import ServeConfig
    from .serve import run as serve_run

    config = ServeConfig(
        host=options.host,
        port=options.port,
        jobs=max(1, options.jobs),
        queue_limit=options.queue_limit,
        rate=options.rate,
        burst=options.burst,
        timeout_s=options.timeout or 20.0,
        max_source_bytes=_parse_bytes(options.max_source),
        cache_dir=options.cache_dir,
        no_cache=options.no_cache,
        trace_out=options.trace,
        drain_grace_s=options.drain_grace,
    )
    return serve_run(config)


def _parse_bytes(text: str) -> int:
    """``"64K"``/``"512M"``/``"2G"`` (or a plain integer) to bytes."""
    value = str(text).strip().upper()
    scale = 1
    for suffix, factor in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if value.endswith(suffix):
            value, scale = value[: -len(suffix)], factor
            break
    try:
        return int(float(value) * scale)
    except ValueError:
        raise SystemExit(f"error: bad byte size {text!r} (use e.g. 500M)")


def cmd_cache(options: argparse.Namespace) -> int:
    import json as json_module

    from .runner import DEFAULT_CACHE_DIR, ArtifactCache

    cache = ArtifactCache(options.cache_dir or DEFAULT_CACHE_DIR)
    if options.cache_command == "stats":
        stats = cache.stats()
        if options.format == "json":
            print(json_module.dumps(stats.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"cache root : {stats.root}")
            print(f"entries    : {stats.entries}")
            print(f"total size : {stats.total_bytes} bytes"
                  f" ({stats.total_bytes / (1 << 20):.2f} MiB)")
            if stats.orphan_tmp_files:
                print(f"orphan tmp : {stats.orphan_tmp_files}"
                      " (a prune sweeps ones older than an hour)")
        return 0
    if options.cache_command == "prune":
        report = cache.prune(_parse_bytes(options.max_bytes))
        if options.format == "json":
            print(json_module.dumps(report.to_dict(), indent=2,
                                    sort_keys=True))
        else:
            print(f"pruned {report.removed} entr"
                  f"{'y' if report.removed == 1 else 'ies'}"
                  f" ({report.freed_bytes} bytes); kept {report.kept}"
                  f" ({report.kept_bytes} bytes <= {report.max_bytes})")
            if report.tmp_swept:
                print(f"swept {report.tmp_swept} orphaned tmp file(s)")
        return 0
    removed = cache.clear()
    print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def cmd_table1(_: argparse.Namespace) -> int:
    rows = table1_rows()
    print(format_table(
        ["language", "year", "note", "concurrency", "timing"],
        [[r["language"], r["year"], r["note"], r["concurrency"], r["timing"]]
         for r in rows],
        title="Table 1: C-like languages/compilers (chronological order)",
    ))
    return 0


def cmd_flows(_: argparse.Namespace) -> int:
    rows = []
    for key, flow in REGISTRY.items():
        meta = flow.metadata
        rows.append([key, meta.title, meta.concurrency_detail[:44],
                     meta.timing_detail[:44]])
    print(format_table(["key", "language", "concurrency", "timing"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="C-like hardware synthesis framework"
                    " (Edwards, DATE 2005, reproduced)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and simulate")
    run_parser.add_argument("file")
    run_parser.add_argument("--flow", default="c2verilog",
                            choices=sorted(REGISTRY))
    run_parser.add_argument("--function", default="main")
    run_parser.add_argument("--args", help="comma-separated integers")
    run_parser.add_argument("--sim-backend", default="interp",
                            choices=("interp", "compiled", "batched"),
                            help="FSMD simulation engine (default interp)")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print the simulation profile (cycles/sec, hot states)",
    )
    run_parser.add_argument(
        "--trace", metavar="OUT.json",
        help="record a phase trace of the whole pipeline and write it in"
             " Chrome trace_event format (open in Perfetto/about:tracing)",
    )
    run_parser.set_defaults(handler=cmd_run)

    compile_parser = sub.add_parser("compile", help="compile to Verilog")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--flow", default="c2verilog",
                                choices=sorted(REGISTRY))
    compile_parser.add_argument("--function", default="main")
    compile_parser.add_argument("-o", "--output")
    compile_parser.set_defaults(handler=cmd_compile)

    def add_runner_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial)")
        p.add_argument("--cache-dir",
                       help="artifact cache directory"
                            " (default: $REPRO_CACHE_DIR or ~/.cache/repro/matrix)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed artifact cache")
        p.add_argument("--timeout", type=float,
                       help="per-cell wall-clock deadline in seconds (default 60)")
        p.add_argument("--sim-backend", default="interp",
                       choices=("interp", "compiled", "batched"),
                       help="FSMD simulation engine for every cell"
                            " (default interp; part of the cache key;"
                            " 'batched' coalesces cells that differ only"
                            " in inputs into lockstep batches)")
        p.add_argument("--trace-summary", action="store_true",
                       help="trace every cell and print the per-flow,"
                            " per-phase wall-time table")

    def add_opt_level_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--opt-level", type=int, default=None, metavar="N",
            help="IR optimization level for every cell (default: the"
                 " flows' own default; 2 = liveness fixpoint pipeline;"
                 " part of the cache key)",
        )

    matrix_parser = sub.add_parser("matrix", help="all flows on one program")
    matrix_parser.add_argument("file")
    matrix_parser.add_argument("--function", default="main")
    matrix_parser.add_argument("--args", help="comma-separated integers")
    matrix_parser.add_argument(
        "--lint", action="store_true",
        help="pre-flight each flow with the linter; skip predicted rejects",
    )
    matrix_parser.add_argument(
        "--check", action="store_true",
        help="pre-flight with the time-sensitive checker (lint + TIM"
             " rules); skip flows whose obligations the schedule cannot"
             " meet",
    )
    add_runner_flags(matrix_parser)
    add_opt_level_flag(matrix_parser)
    matrix_parser.set_defaults(handler=cmd_matrix)

    sweep_parser = sub.add_parser(
        "sweep", help="the full workload x flow matrix through the runner"
    )
    sweep_parser.add_argument(
        "--flows", help="comma-separated flow keys (default: all compilable)"
    )
    sweep_parser.add_argument(
        "--workloads", help="comma-separated workload names (default: all)"
    )
    add_runner_flags(sweep_parser)
    add_opt_level_flag(sweep_parser)
    sweep_parser.set_defaults(handler=cmd_sweep)

    lint_parser = sub.add_parser(
        "lint", help="predict per-flow rejections without compiling"
    )
    lint_parser.add_argument("file")
    lint_parser.add_argument("--flow", choices=sorted(COMPILABLE))
    lint_parser.add_argument(
        "--all", action="store_true",
        help="lint against every compilable flow (the default)",
    )
    lint_parser.add_argument("--function", default="main")
    lint_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="output format (json = machine-readable report)",
    )
    lint_parser.set_defaults(handler=cmd_lint)

    check_parser = sub.add_parser(
        "check", help="lint plus schedule-aware timing/resource obligations"
    )
    check_parser.add_argument("file")
    check_parser.add_argument("--flow", choices=sorted(COMPILABLE))
    check_parser.add_argument(
        "--all", action="store_true",
        help="check against every compilable flow (the default)",
    )
    check_parser.add_argument("--function", default="main")
    check_parser.add_argument(
        "--pipeline-ii", type=int, metavar="N",
        help="requested loop initiation interval; TIM301 checks it"
             " against every pipelineable loop's MII floor",
    )
    check_parser.add_argument(
        "--clock-budget", type=float, default=25.0, metavar="NS",
        help="combinational budget per implicit cycle before TIM103"
             " warns (default 25.0 ns)",
    )
    check_parser.add_argument(
        "--memory-ports", type=int, default=1, metavar="N",
        help="ports per RAM the TIM302 occupancy check assumes (default 1)",
    )
    check_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="output format (json = machine-readable report)",
    )
    check_parser.set_defaults(handler=cmd_check)

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential fuzz campaign over the flow matrix"
    )
    fuzz_parser.add_argument(
        "--flows", default="all",
        help="comma-separated flow keys, or 'all' (default)",
    )
    fuzz_parser.add_argument("--seeds", type=int, default=100,
                             help="seeds per flow (default 100)")
    fuzz_parser.add_argument("--seed-base", type=int, default=0,
                             help="first seed (campaigns are pure in seeds)")
    fuzz_parser.add_argument("--time-budget", type=float,
                             help="stop generating after this many seconds")
    fuzz_parser.add_argument("--no-reduce", action="store_true",
                             help="skip delta-debugging reduction")
    fuzz_parser.add_argument("--update-corpus", action="store_true",
                             help="write new findings into the corpus")
    fuzz_parser.add_argument("--corpus-dir", default="tests/corpus",
                             help="triaged corpus root (default tests/corpus)")
    fuzz_parser.add_argument(
        "--input-lanes", type=int, default=1, metavar="K",
        help="argument sets simulated per clean program (default 1);"
             " combine with --sim-backend batched to run them as one"
             " lockstep batch per program",
    )
    fuzz_parser.add_argument(
        "--opt-levels", default="", metavar="L,L",
        help="cross-level mode: comma-separated opt_levels (e.g. 0,2);"
             " every clean program also compiles and runs at each listed"
             " level, and any divergence from the default-level cell is"
             " triaged as an opt-diverge finding",
    )
    fuzz_parser.add_argument(
        "--profiles", default="", metavar="P,P",
        help="restrict clean-side generation to these grammar profiles"
             " (default: every profile the flow's mask allows)",
    )
    fuzz_parser.add_argument(
        "--campaign-seed", type=int, default=0, metavar="N",
        help="root of every derived random stream: pool scheduling,"
             " minted child seeds, and the shard split (default 0)",
    )
    fuzz_parser.add_argument(
        "--mutations", type=int, default=2, metavar="N",
        help="base metamorphic mutants per clean program (default 2);"
             " coverage mode adds more for high-novelty parents",
    )
    fuzz_parser.add_argument(
        "--no-coverage", action="store_true",
        help="disable coverage guidance and run the classic fixed-profile"
             " seed plan",
    )
    fuzz_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="split the campaign into N deterministic shards; without"
             " --shard-index, all shards run here in subprocesses and"
             " merge",
    )
    fuzz_parser.add_argument(
        "--shard-index", type=int, default=None, metavar="I",
        help="run only shard I of --shards (CI matrix mode); the slice"
             " is a pure function of --campaign-seed, never of order",
    )
    fuzz_parser.add_argument(
        "--shard-dir", default="", metavar="DIR",
        help="with --update-corpus: write this shard's new findings into"
             " DIR instead of the corpus (merge them with 'fuzz-merge')",
    )
    fuzz_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="output format (json = the stable repro-fuzz-report/1"
             " schema)",
    )
    add_runner_flags(fuzz_parser)
    fuzz_parser.set_defaults(handler=cmd_fuzz)

    fuzz_merge_parser = sub.add_parser(
        "fuzz-merge",
        help="idempotently fold shard corpus deltas into a corpus",
    )
    fuzz_merge_parser.add_argument(
        "sources", nargs="+",
        help="shard corpus directories (missing ones are skipped)",
    )
    fuzz_merge_parser.add_argument(
        "--dest", default="tests/corpus",
        help="corpus to merge into (default tests/corpus)",
    )
    fuzz_merge_parser.set_defaults(handler=cmd_fuzz_merge)

    serve_parser = sub.add_parser(
        "serve", help="synthesis-as-a-service HTTP server"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8787,
                              help="listen port (0 = pick a free one)")
    serve_parser.add_argument("--jobs", type=int, default=2,
                              help="compile worker processes (default 2)")
    serve_parser.add_argument("--queue-limit", type=int, default=16,
                              help="compiles allowed to queue beyond the"
                                   " workers before 503 (default 16)")
    serve_parser.add_argument("--rate", type=float, default=0.0,
                              help="per-client requests/second"
                                   " (default 0 = unlimited)")
    serve_parser.add_argument("--burst", type=float, default=20.0,
                              help="per-client token-bucket capacity"
                                   " (default 20)")
    serve_parser.add_argument("--timeout", type=float, default=20.0,
                              help="per-compile worker deadline in seconds"
                                   " (default 20)")
    serve_parser.add_argument("--max-source", default="64K",
                              help="largest accepted source (default 64K;"
                                   " K/M/G suffixes)")
    serve_parser.add_argument("--cache-dir",
                              help="artifact cache directory (default:"
                                   " $REPRO_CACHE_DIR or ~/.cache/repro/matrix)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="disable the warm-hit tier")
    serve_parser.add_argument("--trace", metavar="OUT.json",
                              help="record per-request spans; written as a"
                                   " Chrome trace on drain")
    serve_parser.add_argument("--drain-grace", type=float, default=10.0,
                              help="seconds to wait for in-flight requests"
                                   " on SIGTERM (default 10)")
    serve_parser.set_defaults(handler=cmd_serve)

    cache_parser = sub.add_parser(
        "cache", help="inspect and bound the artifact cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    for name, description in (
        ("stats", "entry count, total bytes, age span"),
        ("prune", "LRU-evict oldest entries down to --max-bytes"),
        ("clear", "remove every cache entry"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=description)
        cache_cmd.add_argument("--cache-dir",
                               help="cache directory (default:"
                                    " $REPRO_CACHE_DIR or"
                                    " ~/.cache/repro/matrix)")
        cache_cmd.add_argument("--format", default="text",
                               choices=("text", "json"))
        if name == "prune":
            cache_cmd.add_argument("--max-bytes", required=True,
                                   help="target size, e.g. 500M or 2G")
    cache_parser.set_defaults(handler=cmd_cache)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        handler=cmd_table1
    )
    sub.add_parser("flows", help="list flows").set_defaults(handler=cmd_flows)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        return options.handler(options)
    except (UnsupportedFeature, FlowError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
