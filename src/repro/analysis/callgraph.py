"""Call-graph construction and queries over a type-checked program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..lang.semantic import SemanticInfo


@dataclass
class CallGraph:
    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def reachable(self, root: str) -> Set[str]:
        seen: Set[str] = set()
        work = [root]
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            work.extend(self.edges.get(current, ()))
        return seen

    def is_recursive(self, root: str) -> bool:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}

        def visit(name: str) -> bool:
            color[name] = GRAY
            for callee in sorted(self.edges.get(name, ())):
                state = color.get(callee, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE and visit(callee):
                    return True
            color[name] = BLACK
            return False

        return visit(root)

    def max_call_depth(self, root: str, limit: int = 64) -> Optional[int]:
        """Longest acyclic call chain from root; None when recursive."""
        if self.is_recursive(root):
            return None
        depth_cache: Dict[str, int] = {}

        def depth(name: str) -> int:
            if name in depth_cache:
                return depth_cache[name]
            best = 0
            for callee in self.edges.get(name, ()):
                best = max(best, 1 + depth(callee))
            depth_cache[name] = best
            return best

        return depth(root)


def build_callgraph(info: SemanticInfo) -> CallGraph:
    graph = CallGraph()
    for name, fn_info in info.functions.items():
        graph.edges[name] = set(fn_info.callees)
    return graph
