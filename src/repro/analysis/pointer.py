"""Flow-insensitive (Andersen-style) pointer analysis and memory planning.

The paper: *"C's arrays are a side effect of its pointer semantics, which
enables simple, efficient implementations, but also demands compilers with
aggressive optimization to perform costly pointer analysis"* — and — *"C's
memory model is an undifferentiated array of bytes, yet many small, varied
memories are most effective in hardware."*

This module makes both claims executable.  Given an inlined function, it
computes points-to sets for every pointer variable and produces a
:class:`PointerPlan` telling the CDFG builder how to lower memory:

* a pointer whose points-to set is a **single array** is *resolved*: it
  becomes a plain index register and its dereferences become accesses to
  that array's own small memory;
* a pointer always bound to a **single scalar** (no arithmetic) is resolved
  to direct register accesses;
* everything else falls back to the **unified memory**: all potentially
  aliased objects are laid out in one big RAM (the "undifferentiated array
  of bytes"), and every access to them — by name or through a pointer —
  becomes a load/store on that single-ported monolith.

Disabling the analysis (``enable_analysis=False``) forces the unified
fallback for *every* address-taken object, which is what the E10 benchmark
ablates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast_nodes as ast
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, IntType, PointerType, Type

_MEMORY_ELEMENT = IntType(32, signed=True)


@dataclass
class PointerStats:
    """Cost/precision measurements for the E10 experiment."""

    pointer_count: int = 0
    constraint_count: int = 0
    iterations: int = 0
    max_points_to: int = 0
    resolved_count: int = 0
    unified_count: int = 0


@dataclass
class PointerPlan:
    """How the builder should lower pointers and memory objects."""

    mode: str = "none"  # 'none' | 'resolved' | 'unified' | 'mixed'
    # Resolved pointers: pointer symbol -> ('array'|'scalar', base symbol).
    bases: Dict[Symbol, Tuple[str, Symbol]] = field(default_factory=dict)
    # Objects that live in the unified memory (accessed only via LOAD/STORE
    # on memory_symbol, even when named directly).
    in_memory: Set[Symbol] = field(default_factory=set)
    layout: Dict[Symbol, int] = field(default_factory=dict)
    memory_symbol: Optional[Symbol] = None
    memory_size: int = 0
    stats: PointerStats = field(default_factory=PointerStats)

    def address_of(self, symbol: Symbol) -> int:
        if symbol not in self.layout:
            raise KeyError(f"{symbol.name!r} is not in the unified memory")
        return self.layout[symbol]

    def initial_memory(self, global_inits: Dict[str, object]) -> List[int]:
        """Initial contents of the unified memory from global initializers."""
        words = [0] * self.memory_size
        for symbol, base in self.layout.items():
            init = global_inits.get(symbol.name)
            if init is None:
                continue
            if isinstance(init, list):
                for i, value in enumerate(init):
                    words[base + i] = value
            else:
                words[base] = init
        return words


@dataclass
class _Constraints:
    """Andersen inclusion constraints gathered from the AST."""

    # p ⊇ {obj}
    direct: List[Tuple[Symbol, Symbol]] = field(default_factory=list)
    # p ⊇ q
    copy: List[Tuple[Symbol, Symbol]] = field(default_factory=list)
    # pointers that undergo arithmetic (p = q + n, p[i], ...)
    arithmetic: Set[Symbol] = field(default_factory=set)
    pointers: Set[Symbol] = field(default_factory=set)
    address_taken: Set[Symbol] = field(default_factory=set)


def _root_pointer(expr: ast.Expr) -> Optional[Symbol]:
    """The pointer variable at the root of a pointer-typed expression, with
    arithmetic peeled off; None for &-expressions and literals."""
    if isinstance(expr, ast.Identifier) and isinstance(expr.type, PointerType):
        return expr.symbol  # type: ignore[attr-defined]
    if isinstance(expr, ast.BinaryOp) and isinstance(expr.type, PointerType):
        left = _root_pointer(expr.left)
        return left if left is not None else _root_pointer(expr.right)
    return None


def _collect_pointer_expr(
    expr: ast.Expr, target: Symbol, constraints: _Constraints, with_arith: bool
) -> None:
    """Record constraints for ``target = expr`` where expr is pointer-typed."""
    if isinstance(expr, ast.UnaryOp) and expr.op == "&":
        base = expr.operand
        if isinstance(base, ast.Identifier):
            obj: Symbol = base.symbol  # type: ignore[attr-defined]
            constraints.direct.append((target, obj))
            constraints.address_taken.add(obj)
            if not isinstance(obj.type, ArrayType) and with_arith:
                constraints.arithmetic.add(target)
            return
        if isinstance(base, ast.ArrayIndex) and isinstance(base.base, ast.Identifier):
            obj = base.base.symbol  # type: ignore[attr-defined]
            constraints.direct.append((target, obj))
            constraints.address_taken.add(obj)
            constraints.arithmetic.add(target)
            return
        # &*p and friends: conservative copy from the inner pointer
        inner = _root_pointer(base)
        if inner is not None:
            constraints.copy.append((target, inner))
            constraints.arithmetic.add(target)
        return
    if isinstance(expr, ast.Identifier):
        source: Symbol = expr.symbol  # type: ignore[attr-defined]
        constraints.copy.append((target, source))
        # Array name decaying to a pointer.
        if isinstance(source.type, ArrayType):
            constraints.direct.append((target, source))
            constraints.address_taken.add(source)
            constraints.copy.pop()
        return
    if isinstance(expr, ast.BinaryOp):
        constraints.arithmetic.add(target)
        root = _root_pointer(expr)
        if root is not None:
            constraints.copy.append((target, root))
        return
    if isinstance(expr, ast.Conditional):
        _collect_pointer_expr(expr.then, target, constraints, with_arith)
        _collect_pointer_expr(expr.otherwise, target, constraints, with_arith)
        return
    # Literals (null pointers) contribute nothing.


def _gather_constraints(fn: ast.FunctionDef) -> _Constraints:
    constraints = _Constraints()
    for stmt in ast.walk_stmts(fn.body):
        if isinstance(stmt, ast.VarDecl):
            symbol: Symbol = stmt.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, PointerType):
                constraints.pointers.add(symbol)
                if stmt.init is not None:
                    _collect_pointer_expr(stmt.init, symbol, constraints, with_arith=False)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Identifier) and isinstance(
                stmt.target.type, PointerType
            ):
                target: Symbol = stmt.target.symbol  # type: ignore[attr-defined]
                constraints.pointers.add(target)
                _collect_pointer_expr(stmt.value, target, constraints, with_arith=False)
        # Address-taken objects also arise from &x used in any expression
        # (e.g. passed through substitution during inlining).
        for expr in ast.stmt_expressions(stmt):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, ast.UnaryOp) and sub.op == "&":
                    operand = sub.operand
                    if isinstance(operand, ast.Identifier):
                        constraints.address_taken.add(operand.symbol)  # type: ignore[attr-defined]
                    elif isinstance(operand, ast.ArrayIndex) and isinstance(
                        operand.base, ast.Identifier
                    ):
                        constraints.address_taken.add(operand.base.symbol)  # type: ignore[attr-defined]
                if isinstance(sub, ast.ArrayIndex) and isinstance(
                    sub.base.type if sub.base is not None else None, PointerType
                ):
                    root = _root_pointer(sub.base)
                    if root is not None:
                        constraints.arithmetic.add(root)
    return constraints


def _solve(constraints: _Constraints, stats: PointerStats) -> Dict[Symbol, Set[Symbol]]:
    points_to: Dict[Symbol, Set[Symbol]] = {p: set() for p in constraints.pointers}
    for pointer, obj in constraints.direct:
        points_to.setdefault(pointer, set()).add(obj)
    stats.constraint_count = len(constraints.direct) + len(constraints.copy)
    changed = True
    while changed:
        changed = False
        stats.iterations += 1
        for dst, src in constraints.copy:
            src_set = points_to.get(src, set())
            dst_set = points_to.setdefault(dst, set())
            before = len(dst_set)
            dst_set |= src_set
            if len(dst_set) != before:
                changed = True
        # Arithmetic taints propagate along copies too.
        for dst, src in constraints.copy:
            if src in constraints.arithmetic and dst not in constraints.arithmetic:
                constraints.arithmetic.add(dst)
                changed = True
    return points_to


def plan_pointers(
    fn: ast.FunctionDef,
    global_symbols: Optional[List[Symbol]] = None,
    enable_analysis: bool = True,
) -> PointerPlan:
    """Compute a lowering plan for ``fn`` (which must already be inlined).

    ``enable_analysis=False`` models a compiler without pointer analysis:
    every address-taken object is forced into the unified memory.
    """
    constraints = _gather_constraints(fn)
    plan = PointerPlan()
    plan.stats.pointer_count = len(constraints.pointers)
    if not constraints.pointers and not constraints.address_taken:
        plan.mode = "none"
        return plan

    points_to = (
        _solve(constraints, plan.stats) if enable_analysis else
        {p: set(constraints.address_taken) for p in constraints.pointers}
    )
    if not enable_analysis:
        constraints.arithmetic |= constraints.pointers
        plan.stats.iterations = 0

    unresolved_objects: Set[Symbol] = set()
    for pointer in sorted(constraints.pointers, key=lambda s: s.unique_name):
        targets = points_to.get(pointer, set())
        plan.stats.max_points_to = max(plan.stats.max_points_to, len(targets))
        if enable_analysis and len(targets) == 1:
            (obj,) = targets
            if isinstance(obj.type, ArrayType):
                plan.bases[pointer] = ("array", obj)
                plan.stats.resolved_count += 1
                continue
            if pointer not in constraints.arithmetic:
                plan.bases[pointer] = ("scalar", obj)
                plan.stats.resolved_count += 1
                continue
        plan.stats.unified_count += 1
        unresolved_objects |= targets if targets else constraints.address_taken

    # Objects reachable from unresolved pointers live in the unified memory;
    # resolved pointers keep their private memories/registers.
    if unresolved_objects:
        offset = 0
        for obj in sorted(unresolved_objects, key=lambda s: s.unique_name):
            plan.in_memory.add(obj)
            plan.layout[obj] = offset
            size = obj.type.size if isinstance(obj.type, ArrayType) else 1
            offset += size
        plan.memory_size = max(offset, 1)
        plan.memory_symbol = Symbol(
            "__mem", ArrayType(_MEMORY_ELEMENT, plan.memory_size), SymbolKind.LOCAL
        )

    if plan.bases and plan.in_memory:
        plan.mode = "mixed"
    elif plan.bases:
        plan.mode = "resolved"
    elif plan.in_memory:
        plan.mode = "unified"
    else:
        plan.mode = "none"
    return plan
