"""Dependence statistics over CDFG blocks.

Thin analysis layer over :func:`repro.scheduling.base.build_dependence_graph`
that quantifies *why* a block's parallelism is what it is — the raw material
of the concurrency discussion (E2/E3): how many dependence edges are flow,
memory, or fence; how deep the critical path is; how wide the block could
issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.cdfg import BasicBlock, FunctionCDFG
from ..ir.ops import OpKind, VReg
from ..scheduling.asap import unit_asap
from ..scheduling.base import build_dependence_graph, unit_latency


@dataclass
class BlockDependenceStats:
    label: str
    op_count: int
    flow_edges: int
    memory_edges: int
    fence_edges: int
    critical_path: int
    max_width: int          # widest ASAP step
    average_width: float    # ops / critical path

    @property
    def total_edges(self) -> int:
        return self.flow_edges + self.memory_edges + self.fence_edges


def block_stats(block: BasicBlock) -> BlockDependenceStats:
    """Classify and count dependences in one block."""
    graph = build_dependence_graph(block)
    by_id = {op.id: op for op in block.ops}
    producers = {
        op.dest: op for op in block.ops if op.dest is not None
    }
    flow = memory = fence = 0
    for op in block.ops:
        producer_ids = {
            producers[o].id for o in op.operands
            if isinstance(o, VReg) and o in producers
        }
        for pred_id in graph.predecessors(op):
            pred = by_id[pred_id]
            if pred_id in producer_ids:
                flow += 1
            elif pred.is_memory() and op.is_memory():
                memory += 1
            else:
                fence += 1
    if block.ops:
        asap = unit_asap(block, graph)
        widths: Dict[int, int] = {}
        for op in block.ops:
            widths[asap.op_step[op.id]] = widths.get(asap.op_step[op.id], 0) + 1
        critical = asap.n_steps
        max_width = max(widths.values())
    else:
        critical = 1
        max_width = 0
    return BlockDependenceStats(
        label=block.label,
        op_count=len(block.ops),
        flow_edges=flow,
        memory_edges=memory,
        fence_edges=fence,
        critical_path=critical,
        max_width=max_width,
        average_width=len(block.ops) / critical if critical else 0.0,
    )


def function_stats(cdfg: FunctionCDFG) -> List[BlockDependenceStats]:
    return [block_stats(b) for b in cdfg.reachable_blocks()]
