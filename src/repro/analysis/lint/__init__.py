"""Flow-aware synthesizability linter.

``lint(source, flow=...)`` predicts, per flow, which constructs that
flow's ``compile()`` would reject — with stable rule ids, source
locations, and fix hints — plus warnings for hazards the paper calls out
(shared-variable races, unified-memory fallback, unbounded latency).
"""

from .diagnostics import (
    ALL_FLOWS,
    Diagnostic,
    FEATURE_TO_RULE,
    LintReport,
    RULE_ALIAS,
    RULE_CHANNEL,
    RULE_COMB_CYCLE,
    RULE_DELAY,
    RULE_DOCS,
    RULE_DYNAMIC_MEMORY,
    RULE_INTERNAL,
    RULE_PAR,
    RULE_PARSE,
    RULE_POINTER,
    RULE_PROCESS,
    RULE_RECURSION,
    RULE_SHARED_RACE,
    RULE_STRUCTURE,
    RULE_UNBOUNDED_LOOP,
    RULE_WAIT,
    RULE_WITHIN,
    Severity,
)
from .engine import lint, lint_file
from .rules import LintContext, Rule

__all__ = [
    "ALL_FLOWS",
    "Diagnostic",
    "FEATURE_TO_RULE",
    "LintContext",
    "LintReport",
    "RULE_ALIAS",
    "RULE_CHANNEL",
    "RULE_COMB_CYCLE",
    "RULE_DELAY",
    "RULE_DOCS",
    "RULE_DYNAMIC_MEMORY",
    "RULE_INTERNAL",
    "RULE_PAR",
    "RULE_PARSE",
    "RULE_POINTER",
    "RULE_PROCESS",
    "RULE_RECURSION",
    "RULE_SHARED_RACE",
    "RULE_STRUCTURE",
    "RULE_UNBOUNDED_LOOP",
    "RULE_WAIT",
    "RULE_WITHIN",
    "Rule",
    "Severity",
    "lint",
    "lint_file",
]
