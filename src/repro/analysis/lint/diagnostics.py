"""The structured diagnostics model shared by the linter and the flows.

A :class:`Diagnostic` is one finding: a stable rule id (``SYN101-recursion``),
a severity, the flow it applies to, a source location, and a fix hint.  A
:class:`LintReport` aggregates findings across flows so callers can ask "is
this program clean for flow X?" without re-running anything.

Severity semantics are load-bearing:

* ``ERROR`` predicts a compile rejection — the flow's ``compile()`` would
  raise ``UnsupportedFeature``/``FlowError`` for the same construct, with the
  same rule id.  ``LintReport.is_clean(flow)`` means "no errors", and the
  property suite asserts clean programs compile.
* ``WARNING`` marks constructs that compile but carry a hazard the paper
  calls out: shared-variable races, unified-memory pointer fallback,
  statically unbounded latency.

Rule ids are grouped by layer: ``SYN1xx`` are AST/feature rules, ``SYN2xx``
are CDFG-level rules, ``SYN3xx`` are frontend failures.

The time-sensitive checking tier (:mod:`repro.analysis.timing`) adds the
``TIM`` families on top: ``TIM1xx`` timing obligations (fixed-latency
contexts), ``TIM2xx`` concurrency obligations (rendezvous legality,
same-cycle conflicts under ``par``), ``TIM3xx`` resource obligations
(memory ports, initiation intervals).  A ``TIM`` **ERROR** means the flow's
schedule cannot meet (or cannot even state) the obligation; unlike ``SYN``
errors it does not always predict a compile-time rejection — some violations
compile into hardware that is unrealizable or deadlocks, which is exactly
the paper's point.  Each TIM rule documents which observable outcome
validates it (see ``TIM_VALIDATES``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ...lang.errors import SourceLocation, UNKNOWN_LOCATION
from ...lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_DELAY,
    FEATURE_PAR,
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WAIT,
    FEATURE_WITHIN,
)

# ---------------------------------------------------------------------------
# Rule ids
# ---------------------------------------------------------------------------

RULE_RECURSION = "SYN101-recursion"
RULE_POINTER = "SYN102-pointer"
RULE_ALIAS = "SYN103-alias"
RULE_DYNAMIC_MEMORY = "SYN104-dynamic-memory"
RULE_UNBOUNDED_LOOP = "SYN105-unbounded-loop"
RULE_PROCESS = "SYN106-process"
RULE_CHANNEL = "SYN107-channel"
RULE_PAR = "SYN108-par"
RULE_WAIT = "SYN109-wait"
RULE_DELAY = "SYN110-delay"
RULE_WITHIN = "SYN111-within"
RULE_STRUCTURE = "SYN112-structure"
RULE_COMB_CYCLE = "SYN201-comb-cycle"
RULE_SHARED_RACE = "SYN202-shared-race"
RULE_PARSE = "SYN301-parse"
RULE_INTERNAL = "SYN999-internal"

# Time-sensitive checking tier (repro.analysis.timing).  Stable ids, same
# contract as SYN ids: tests, corpus entries, and CLI output all key on them.
RULE_TIM_UNBOUNDED_IN_WITHIN = "TIM101-unbounded-in-within"
RULE_TIM_WITHIN_INFEASIBLE = "TIM102-within-infeasible"
RULE_TIM_CYCLE_BUDGET = "TIM103-cycle-budget"
RULE_TIM_RENDEZVOUS = "TIM201-rendezvous"
RULE_TIM_PAR_SHARED_CYCLE = "TIM202-par-shared-cycle"
RULE_TIM_II_CONFLICT = "TIM301-ii-port-conflict"
RULE_TIM_PORT_OVERSUBSCRIBED = "TIM302-port-oversubscribed"

TIM_RULES = (
    RULE_TIM_UNBOUNDED_IN_WITHIN,
    RULE_TIM_WITHIN_INFEASIBLE,
    RULE_TIM_CYCLE_BUDGET,
    RULE_TIM_RENDEZVOUS,
    RULE_TIM_PAR_SHARED_CYCLE,
    RULE_TIM_II_CONFLICT,
    RULE_TIM_PORT_OVERSUBSCRIBED,
)

# Language features (as recorded by semantic analysis) that map one-to-one
# onto rejection rules.  ``Flow.check_features`` and the linter's FeatureRule
# both read this table, so the exception a flow raises and the diagnostic the
# linter predicts always carry the same id.
FEATURE_TO_RULE: Dict[str, str] = {
    FEATURE_RECURSION: RULE_RECURSION,
    FEATURE_POINTERS: RULE_POINTER,
    FEATURE_CHANNELS: RULE_CHANNEL,
    FEATURE_PAR: RULE_PAR,
    FEATURE_WAIT: RULE_WAIT,
    FEATURE_DELAY: RULE_DELAY,
    FEATURE_WITHIN: RULE_WITHIN,
}

# One-line documentation per rule (DESIGN.md maps these onto paper claims).
RULE_DOCS: Dict[str, str] = {
    RULE_RECURSION: "recursive call cycle; no stack in hardware",
    RULE_POINTER: "pointer construct outside this flow's subset",
    RULE_ALIAS: "pointer analysis fell back to the unified memory",
    RULE_DYNAMIC_MEMORY: "dynamic allocation has no hardware equivalent",
    RULE_UNBOUNDED_LOOP: "loop bound is not a compile-time constant",
    RULE_PROCESS: "concurrent processes unsupported by this flow",
    RULE_CHANNEL: "channel communication unsupported by this flow",
    RULE_PAR: "par construct unsupported by this flow",
    RULE_WAIT: "wait() unsupported by this flow",
    RULE_DELAY: "delay() unsupported by this flow",
    RULE_WITHIN: "within timing constraints unsupported by this flow",
    RULE_STRUCTURE: "construct shape this flow's translation cannot handle",
    RULE_COMB_CYCLE: "combinational cycle (zero-time loop)",
    RULE_SHARED_RACE: "processes share a variable without a channel",
    RULE_PARSE: "source does not parse or type-check",
    RULE_INTERNAL: "linter rule crashed; prediction incomplete",
    RULE_TIM_UNBOUNDED_IN_WITHIN:
        "rendezvous inside a within block: fixed-cycle budget over an"
        " unbounded-latency operation",
    RULE_TIM_WITHIN_INFEASIBLE:
        "within budget smaller than any feasible schedule of its body",
    RULE_TIM_CYCLE_BUDGET:
        "single-cycle statement implies a combinational path beyond the"
        " clock budget",
    RULE_TIM_RENDEZVOUS:
        "rendezvous channel with a missing or self-paired endpoint:"
        " guaranteed deadlock",
    RULE_TIM_PAR_SHARED_CYCLE:
        "par lockstep merge puts conflicting accesses to one memory in the"
        " same cycle",
    RULE_TIM_II_CONFLICT:
        "requested initiation interval below the loop's resource/recurrence"
        " minimum",
    RULE_TIM_PORT_OVERSUBSCRIBED:
        "one cycle needs more memory ports than the RAM has",
}

# What observable outcome validates each TIM error (the cross-validation
# harness asserts these; docs/timing.md documents them per flow).
TIM_VALIDATES: Dict[str, str] = {
    RULE_TIM_UNBOUNDED_IN_WITHIN:
        "the compiled schedule carries a SEND/RECV inside a constraint group",
    RULE_TIM_WITHIN_INFEASIBLE:
        "compile rejects with the same rule id (TimingInfeasible)",
    RULE_TIM_CYCLE_BUDGET:
        "estimated combinational delay of the statement exceeds the budget",
    RULE_TIM_RENDEZVOUS:
        "simulation raises a rendezvous-deadlock error",
    RULE_TIM_PAR_SHARED_CYCLE:
        "a compiled FSMD state holds >=2 accesses to one memory, one a write,"
        " from different par branches",
    RULE_TIM_II_CONFLICT:
        "modulo scheduling reports MII above the requested II",
    RULE_TIM_PORT_OVERSUBSCRIBED:
        "a compiled FSMD state's measured port occupancy exceeds the RAM's",
}

# Diagnostics with this flow key apply to every flow (frontend failures).
ALL_FLOWS = "*"


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, addressed to one flow (or ``ALL_FLOWS``)."""

    flow: str
    rule: str
    severity: Severity
    message: str
    location: SourceLocation = UNKNOWN_LOCATION
    hint: str = ""

    def applies_to(self, flow: str) -> bool:
        return self.flow == flow or self.flow == ALL_FLOWS

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (``repro lint/check --format json``)."""
        return {
            "flow": self.flow,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.location.filename,
            "line": self.location.line,
            "column": self.location.column,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple:
        """Deterministic (location, rule id) ordering: reports must be
        byte-stable across runs and hash-cacheable."""
        return (
            self.location.filename,
            self.location.line,
            self.location.column,
            self.rule,
            self.flow,
            self.severity.rank,
            self.message,
        )

    def __str__(self) -> str:
        text = (
            f"{self.location}: {self.severity.value}"
            f" {self.rule} [{self.flow}] {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


@dataclass
class LintReport:
    """All diagnostics the linter produced for one source buffer."""

    filename: str = "<input>"
    flows: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def for_flow(self, flow: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.applies_to(flow)]

    def errors(self, flow: Optional[str] = None) -> List[Diagnostic]:
        found = self.diagnostics if flow is None else self.for_flow(flow)
        return [d for d in found if d.severity is Severity.ERROR]

    def warnings(self, flow: Optional[str] = None) -> List[Diagnostic]:
        found = self.diagnostics if flow is None else self.for_flow(flow)
        return [d for d in found if d.severity is Severity.WARNING]

    def is_clean(self, flow: str) -> bool:
        """No errors for ``flow``: its compile() is predicted to succeed."""
        return not self.errors(flow)

    def rules(self, flow: str, severity: Optional[Severity] = None) -> Set[str]:
        return {
            d.rule
            for d in self.for_flow(flow)
            if severity is None or d.severity is severity
        }

    def sorted(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def to_dict(self) -> Dict[str, object]:
        """The whole report, JSON-ready and deterministically ordered."""
        return {
            "filename": self.filename,
            "flows": list(self.flows),
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "verdicts": {
                flow: ("reject" if not self.is_clean(flow)
                       else "warn" if self.warnings(flow) else "clean")
                for flow in self.flows
            },
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Plain-text listing, grouped by flow, for terminals and tests."""
        lines: List[str] = []
        for diagnostic in self.sorted():
            lines.append(str(diagnostic))
        if not lines:
            lines.append(f"{self.filename}: clean for all linted flows")
        return "\n".join(lines)
