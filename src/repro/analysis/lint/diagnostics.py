"""The structured diagnostics model shared by the linter and the flows.

A :class:`Diagnostic` is one finding: a stable rule id (``SYN101-recursion``),
a severity, the flow it applies to, a source location, and a fix hint.  A
:class:`LintReport` aggregates findings across flows so callers can ask "is
this program clean for flow X?" without re-running anything.

Severity semantics are load-bearing:

* ``ERROR`` predicts a compile rejection — the flow's ``compile()`` would
  raise ``UnsupportedFeature``/``FlowError`` for the same construct, with the
  same rule id.  ``LintReport.is_clean(flow)`` means "no errors", and the
  property suite asserts clean programs compile.
* ``WARNING`` marks constructs that compile but carry a hazard the paper
  calls out: shared-variable races, unified-memory pointer fallback,
  statically unbounded latency.

Rule ids are grouped by layer: ``SYN1xx`` are AST/feature rules, ``SYN2xx``
are CDFG-level rules, ``SYN3xx`` are frontend failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ...lang.errors import SourceLocation, UNKNOWN_LOCATION
from ...lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_DELAY,
    FEATURE_PAR,
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WAIT,
    FEATURE_WITHIN,
)

# ---------------------------------------------------------------------------
# Rule ids
# ---------------------------------------------------------------------------

RULE_RECURSION = "SYN101-recursion"
RULE_POINTER = "SYN102-pointer"
RULE_ALIAS = "SYN103-alias"
RULE_DYNAMIC_MEMORY = "SYN104-dynamic-memory"
RULE_UNBOUNDED_LOOP = "SYN105-unbounded-loop"
RULE_PROCESS = "SYN106-process"
RULE_CHANNEL = "SYN107-channel"
RULE_PAR = "SYN108-par"
RULE_WAIT = "SYN109-wait"
RULE_DELAY = "SYN110-delay"
RULE_WITHIN = "SYN111-within"
RULE_STRUCTURE = "SYN112-structure"
RULE_COMB_CYCLE = "SYN201-comb-cycle"
RULE_SHARED_RACE = "SYN202-shared-race"
RULE_PARSE = "SYN301-parse"
RULE_INTERNAL = "SYN999-internal"

# Language features (as recorded by semantic analysis) that map one-to-one
# onto rejection rules.  ``Flow.check_features`` and the linter's FeatureRule
# both read this table, so the exception a flow raises and the diagnostic the
# linter predicts always carry the same id.
FEATURE_TO_RULE: Dict[str, str] = {
    FEATURE_RECURSION: RULE_RECURSION,
    FEATURE_POINTERS: RULE_POINTER,
    FEATURE_CHANNELS: RULE_CHANNEL,
    FEATURE_PAR: RULE_PAR,
    FEATURE_WAIT: RULE_WAIT,
    FEATURE_DELAY: RULE_DELAY,
    FEATURE_WITHIN: RULE_WITHIN,
}

# One-line documentation per rule (DESIGN.md maps these onto paper claims).
RULE_DOCS: Dict[str, str] = {
    RULE_RECURSION: "recursive call cycle; no stack in hardware",
    RULE_POINTER: "pointer construct outside this flow's subset",
    RULE_ALIAS: "pointer analysis fell back to the unified memory",
    RULE_DYNAMIC_MEMORY: "dynamic allocation has no hardware equivalent",
    RULE_UNBOUNDED_LOOP: "loop bound is not a compile-time constant",
    RULE_PROCESS: "concurrent processes unsupported by this flow",
    RULE_CHANNEL: "channel communication unsupported by this flow",
    RULE_PAR: "par construct unsupported by this flow",
    RULE_WAIT: "wait() unsupported by this flow",
    RULE_DELAY: "delay() unsupported by this flow",
    RULE_WITHIN: "within timing constraints unsupported by this flow",
    RULE_STRUCTURE: "construct shape this flow's translation cannot handle",
    RULE_COMB_CYCLE: "combinational cycle (zero-time loop)",
    RULE_SHARED_RACE: "processes share a variable without a channel",
    RULE_PARSE: "source does not parse or type-check",
    RULE_INTERNAL: "linter rule crashed; prediction incomplete",
}

# Diagnostics with this flow key apply to every flow (frontend failures).
ALL_FLOWS = "*"


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    @property
    def rank(self) -> int:
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, addressed to one flow (or ``ALL_FLOWS``)."""

    flow: str
    rule: str
    severity: Severity
    message: str
    location: SourceLocation = UNKNOWN_LOCATION
    hint: str = ""

    def applies_to(self, flow: str) -> bool:
        return self.flow == flow or self.flow == ALL_FLOWS

    def __str__(self) -> str:
        text = (
            f"{self.location}: {self.severity.value}"
            f" {self.rule} [{self.flow}] {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


@dataclass
class LintReport:
    """All diagnostics the linter produced for one source buffer."""

    filename: str = "<input>"
    flows: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def for_flow(self, flow: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.applies_to(flow)]

    def errors(self, flow: Optional[str] = None) -> List[Diagnostic]:
        found = self.diagnostics if flow is None else self.for_flow(flow)
        return [d for d in found if d.severity is Severity.ERROR]

    def warnings(self, flow: Optional[str] = None) -> List[Diagnostic]:
        found = self.diagnostics if flow is None else self.for_flow(flow)
        return [d for d in found if d.severity is Severity.WARNING]

    def is_clean(self, flow: str) -> bool:
        """No errors for ``flow``: its compile() is predicted to succeed."""
        return not self.errors(flow)

    def rules(self, flow: str, severity: Optional[Severity] = None) -> Set[str]:
        return {
            d.rule
            for d in self.for_flow(flow)
            if severity is None or d.severity is severity
        }

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.flow,
                d.severity.rank,
                d.location.line,
                d.location.column,
                d.rule,
            ),
        )

    def render(self) -> str:
        """Plain-text listing, grouped by flow, for terminals and tests."""
        lines: List[str] = []
        for diagnostic in self.sorted():
            lines.append(str(diagnostic))
        if not lines:
            lines.append(f"{self.filename}: clean for all linted flows")
        return "\n".join(lines)
