"""The lint driver: parse once, run each flow's declared rule set.

``lint(source, flow=...)`` is the pre-flight counterpart of
``Flow.compile``: it answers "what would this flow reject, and where?"
without running any backend.  Frontend failures (lex/parse/semantic) apply
to every flow and are reported once under the ``*`` flow key; a rule that
crashes is downgraded to a ``SYN999-internal`` warning so one bad rule
never hides the others.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ...lang.errors import FrontendError, UNKNOWN_LOCATION
from .diagnostics import (
    ALL_FLOWS,
    Diagnostic,
    LintReport,
    RULE_DYNAMIC_MEMORY,
    RULE_INTERNAL,
    RULE_PARSE,
    Severity,
)
from .rules import LintContext

_ALLOCATORS = ("malloc", "calloc", "realloc", "free")


def _frontend_diagnostic(error: FrontendError) -> Diagnostic:
    """Classify a frontend failure.  Calls to the C heap allocators surface
    as 'unknown function' semantic errors; those get their own rule id
    because the paper treats dynamic memory as its own rejection class."""
    message = error.message
    rule = RULE_PARSE
    hint = ""
    if "unknown function" in message and any(
        f"'{name}'" in message for name in _ALLOCATORS
    ):
        rule = RULE_DYNAMIC_MEMORY
        hint = "allocate storage as fixed-size global or local arrays"
    return Diagnostic(
        flow=ALL_FLOWS,
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        location=error.location or UNKNOWN_LOCATION,
        hint=hint,
    )


def lint(
    source: str,
    flow: Optional[str] = None,
    flows: Optional[Sequence[str]] = None,
    function: str = "main",
    filename: str = "<input>",
    extra_rules: Optional[Callable[[str], Sequence]] = None,
) -> LintReport:
    """Lint ``source`` for one flow, an explicit list, or (default) every
    compilable flow in the registry.

    ``extra_rules`` maps a flow key to additional :class:`Rule` instances to
    run after the registry's set — how the time-sensitive checking tier
    (``repro.analysis.timing.check``) layers TIM rules onto the same engine,
    context caches, and crash isolation."""
    # Imported lazily: flows.base imports this package for the shared
    # rule-id table, so a module-level import would be a cycle.
    from ...flows import registry

    if flow is not None:
        selected: List[str] = [flow]
    elif flows is not None:
        selected = list(flows)
    else:
        selected = list(registry.COMPILABLE)
    for key in selected:
        registry.get_flow(key)  # unknown flow raises, same as compile paths

    report = LintReport(filename=filename, flows=selected)

    from ...lang import parse

    try:
        program, info = parse(source, filename=filename)
    except FrontendError as error:
        report.add(_frontend_diagnostic(error))
        return report

    if not any(fn.name == function for fn in program.functions):
        report.add(
            Diagnostic(
                flow=ALL_FLOWS,
                rule=RULE_PARSE,
                severity=Severity.ERROR,
                message=f"entry function {function!r} is not defined",
            )
        )
        return report

    ctx = LintContext(program, info, function=function, filename=filename)
    for key in selected:
        rules = list(registry.lint_rules(key))
        if extra_rules is not None:
            rules.extend(extra_rules(key))
        for rule in rules:
            if rule.requires_inline and ctx.has_recursion:
                # Inlining would not terminate; the recursion feature rule
                # carries the rejection for every flow that has one.
                continue
            try:
                report.extend(rule.check(ctx, key))
            except Exception as error:  # noqa: BLE001 - isolate rule crashes
                report.add(
                    Diagnostic(
                        flow=key,
                        rule=RULE_INTERNAL,
                        severity=Severity.WARNING,
                        message=(
                            f"rule {type(rule).__name__} crashed:"
                            f" {type(error).__name__}: {error}"
                        ),
                    )
                )
    return report


def lint_file(
    path: str,
    flow: Optional[str] = None,
    flows: Optional[Sequence[str]] = None,
    function: str = "main",
) -> LintReport:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint(source, flow=flow, flows=flows, function=function,
                filename=path)
