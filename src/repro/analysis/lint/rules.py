"""Lint rules: each one predicts a class of flow rejections or hazards.

A rule inspects the AST or the CDFG through a shared :class:`LintContext`
(which caches the expensive intermediate artifacts — inlined programs,
unroll attempts, per-process CDFGs) and yields :class:`Diagnostic` objects
addressed to one flow.  The per-flow rule sets are declared next to the
flows themselves in :mod:`repro.flows.registry`, so each flow's linter
configuration and its ``compile()`` behaviour live side by side.

The contract that makes the linter trustworthy: an ``ERROR`` diagnostic with
rule id R means the flow's ``compile()`` raises an exception carrying the
same rule id R (feature rules share the :data:`FEATURE_TO_RULE` table with
``Flow.check_features``, structural rules replicate the flow's own pipeline
checks), and a program with no errors compiles.  ``tests/property`` holds
both directions over the whole workload suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...ir import build_function
from ...ir.cdfg import FunctionCDFG
from ...ir.ops import OpKind
from ...ir.passes import inline_program, try_full_unroll
from ...ir.passes.unroll import loop_trip_count
from ...lang import ast_nodes as ast
from ...lang.errors import SourceLocation, UNKNOWN_LOCATION
from ...lang.semantic import (
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    SemanticInfo,
)
from ...lang.symtab import Symbol
from ..pointer import plan_pointers
from .diagnostics import (
    Diagnostic,
    FEATURE_TO_RULE,
    RULE_ALIAS,
    RULE_COMB_CYCLE,
    RULE_PROCESS,
    RULE_SHARED_RACE,
    RULE_STRUCTURE,
    RULE_UNBOUNDED_LOOP,
    Severity,
)

_LOOP_STMTS = (ast.While, ast.DoWhile, ast.For)


class LintContext:
    """One analyzed program plus caches shared by all rules and flows."""

    def __init__(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        filename: str = "<input>",
    ):
        self.program = program
        self.info = info
        self.function = function
        self.filename = filename
        self.roots: List[str] = [function] + [
            p.name for p in program.processes if p.name != function
        ]
        self._features: Optional[Set[str]] = None
        self._inlined: Dict[Tuple[str, ...], ast.Program] = {}
        self._unrolled = None
        self._cdfgs: Dict[str, FunctionCDFG] = {}

    # -- program facts -----------------------------------------------------

    @property
    def features(self) -> Set[str]:
        """Features used by the whole design (all roots, transitively)."""
        if self._features is None:
            used: Set[str] = set()
            for root in self.roots:
                if root in self.info.functions:
                    used |= self.info.features_of(root)
            self._features = used
        return self._features

    @property
    def has_recursion(self) -> bool:
        return FEATURE_RECURSION in self.features

    def feature_site(self, feature: str) -> SourceLocation:
        """Where the design first uses ``feature`` (first root that has it)."""
        for root in self.roots:
            site = self.info.feature_site(root, feature)
            if site != UNKNOWN_LOCATION:
                return site
        return UNKNOWN_LOCATION

    def reachable_functions(self) -> List[ast.FunctionDef]:
        """Function definitions reachable from the roots (call graph)."""
        seen: Set[str] = set()
        work = list(self.roots)
        while work:
            name = work.pop()
            if name in seen or name not in self.info.functions:
                continue
            seen.add(name)
            work.extend(self.info.functions[name].callees)
        return [fn for fn in self.program.functions if fn.name in seen]

    # -- cached expensive artifacts ---------------------------------------

    def inlined(self, roots: Optional[List[str]] = None) -> ast.Program:
        """The program with all calls inlined (flows do this first)."""
        key = tuple(roots if roots is not None else self.roots)
        if key not in self._inlined:
            program, _stats = inline_program(
                self.program, self.info, roots=list(key)
            )
            self._inlined[key] = program
        return self._inlined[key]

    def entry_unrolled(self, max_iterations: int = 4096):
        """(fn, unrolled, resisted) after the Cones pipeline's full-unroll
        attempt on the entry function."""
        if self._unrolled is None:
            fn = self.inlined(roots=[self.function]).function(self.function)
            self._unrolled = try_full_unroll(fn, max_iterations=max_iterations)
        return self._unrolled

    def cdfg(self, root: str) -> FunctionCDFG:
        """The CDFG of one root (entry function or process), post-inline."""
        if root not in self._cdfgs:
            fn = self.inlined().function(root)
            plan = plan_pointers(fn)
            self._cdfgs[root] = build_function(fn, self.info, plan)
        return self._cdfgs[root]


class Rule:
    """Base class: one predicted rejection (error) or hazard (warning)."""

    rule: str = RULE_STRUCTURE
    severity: Severity = Severity.ERROR
    # Rules that inline/lower first cannot run on recursive programs; the
    # engine skips them (the recursion feature rule already errors there).
    requires_inline: bool = False

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        flow_key: str,
        message: str,
        location: SourceLocation = UNKNOWN_LOCATION,
        hint: str = "",
        rule: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        return Diagnostic(
            flow=flow_key,
            rule=rule or self.rule,
            severity=severity or self.severity,
            message=message,
            location=location,
            hint=hint,
        )


_FEATURE_HINTS: Dict[str, str] = {
    "pointers": "rewrite pointer accesses as explicit array indexing",
    "recursion": "convert the recursion into an iterative loop",
    "channels": "use a CSP-capable flow (handelc, systemc, bachc, ...)"
                " or share data through function arguments",
    "par": "use a flow with explicit concurrency, or let a scheduled flow"
           " rediscover the parallelism from sequential code",
    "wait": "remove explicit cycle boundaries or pick a flow with"
            " designer-visible timing",
    "delay": "remove explicit cycle boundaries or pick a flow with"
             " designer-visible timing",
    "within": "drop the constraint block or use the hardwarec flow",
}


class FeatureRule(Rule):
    """A language feature the flow's historical tool rejected outright.

    Shares :data:`FEATURE_TO_RULE` with ``Flow.check_features``, so the
    diagnostic's rule id equals the ``UnsupportedFeature.rule`` the flow
    raises for the same program.
    """

    def __init__(self, feature: str, reason: str):
        self.feature = feature
        self.reason = reason
        self.rule = FEATURE_TO_RULE[feature]

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if self.feature in ctx.features:
            yield self.diag(
                flow_key,
                self.reason,
                location=ctx.feature_site(self.feature),
                hint=_FEATURE_HINTS.get(self.feature, ""),
            )


class NoProcessRule(Rule):
    """Single-program flows (Cones, CASH) reject ``process`` functions."""

    rule = RULE_PROCESS

    def __init__(self, reason: str):
        self.reason = reason

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        for process in ctx.program.processes:
            yield self.diag(
                flow_key,
                f"{self.reason} (process {process.name!r})",
                location=process.location,
                hint="inline the process's work into the entry function",
            )


class StaticLoopBoundRule(Rule):
    """Cones unrolls every loop at compile time; a loop that resists the
    full-unroll pass (dynamic bound, while/do-while shape) is a hard error.

    Replicates the flow's own pipeline — inline, then
    :func:`try_full_unroll` — and reports each surviving loop statement.
    """

    rule = RULE_UNBOUNDED_LOOP
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        fn, _unrolled, resisted = ctx.entry_unrolled()
        if not resisted:
            return
        seen: Set[Tuple[int, int]] = set()
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, _LOOP_STMTS):
                spot = (stmt.location.line, stmt.location.column)
                if spot in seen:
                    continue
                seen.add(spot)
                kind = type(stmt).__name__.lower()
                yield self.diag(
                    flow_key,
                    f"{kind} loop bound cannot be evaluated at compile time;"
                    " this flow unrolls every loop",
                    location=stmt.location,
                    hint="make the bound a compile-time constant, or use"
                         " a clocked (FSMD) flow",
                )


class UnboundedLatencyRule(Rule):
    """Warning for clocked flows: a loop without a static trip count means
    the design's latency depends on its inputs (the paper's unbounded-loop
    claim).  The program still compiles — severity is WARNING."""

    rule = RULE_UNBOUNDED_LOOP
    severity = Severity.WARNING

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        for fn in ctx.reachable_functions():
            for stmt in ast.walk_stmts(fn.body):
                if isinstance(stmt, (ast.While, ast.DoWhile)):
                    kind = type(stmt).__name__.lower()
                    yield self.diag(
                        flow_key,
                        f"{kind} loop has no static trip count:"
                        " latency is input-dependent",
                        location=stmt.location,
                        hint="bound the loop with a counted for if a latency"
                             " guarantee is needed",
                    )
                elif isinstance(stmt, ast.For):
                    if loop_trip_count(stmt) is None:
                        yield self.diag(
                            flow_key,
                            "for loop bound is not a compile-time constant:"
                            " latency is input-dependent",
                            location=stmt.location,
                            hint="bound the loop with constants if a latency"
                                 " guarantee is needed",
                        )


class ConesCombCycleRule(Rule):
    """CDFG-level check for Cones: after full unrolling the control-flow
    graph must be acyclic, or the flattened netlist would contain a
    combinational cycle."""

    rule = RULE_COMB_CYCLE
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if FEATURE_POINTERS in ctx.features:
            return  # pointer rule already fired; CDFG plan would differ
        fn, _unrolled, resisted = ctx.entry_unrolled()
        if resisted:
            return  # SYN105 already explains the surviving loops
        plan = plan_pointers(fn)
        cdfg = build_function(fn, ctx.info, plan)
        order = cdfg.reachable_blocks()
        position = {block.id: i for i, block in enumerate(order)}
        for block in order:
            for successor in block.successors():
                if position[successor.id] <= position[block.id]:
                    location = UNKNOWN_LOCATION
                    for op in successor.ops:
                        if op.location is not None:
                            location = op.location
                            break
                    yield self.diag(
                        flow_key,
                        f"control-flow cycle {block.label} ->"
                        f" {successor.label} survives unrolling: the"
                        " flattened netlist would be a combinational cycle",
                        location=location,
                    )


# ---------------------------------------------------------------------------
# Handel-C structural rules (the syntax-directed translation's shape limits)
# ---------------------------------------------------------------------------


def _consumes_cycle(stmt: ast.Stmt) -> bool:
    """Statements Handel-C charges a clock cycle for (assign/delay rule)."""
    if isinstance(stmt, (ast.Assign, ast.Send, ast.Wait, ast.Delay)):
        return True
    if isinstance(stmt, ast.VarDecl):
        return stmt.init is not None or bool(stmt.array_init)
    if isinstance(stmt, ast.ExprStmt):
        return isinstance(stmt.expr, ast.Receive)
    return False


class _ZeroTimePaths:
    """Can control traverse a loop body back to its header without passing a
    cycle-consuming statement?  That back edge would be a combinational
    cycle in Handel-C's enable-chain hardware.

    Path states are ``"nc"`` (no cycle consumed yet) and ``"cyc"``; nested
    loops are approximated conservatively (a nested while/for may pass
    through in zero iterations, a nested do-while runs its body at least
    once)."""

    def __init__(self, step_consumes: bool):
        self.step_consumes = step_consumes
        self.hit = False

    def scan(self, body: ast.Stmt) -> bool:
        fall = self._stmt(body, {"nc"}, None)
        if not self.step_consumes and "nc" in fall:
            self.hit = True
        return self.hit

    def _seq(self, stmts, states: Set[str], exits: Optional[Set[str]]) -> Set[str]:
        for stmt in stmts:
            states = self._stmt(stmt, states, exits)
            if not states:
                break
        return states

    def _stmt(self, stmt: ast.Stmt, states: Set[str],
              exits: Optional[Set[str]]) -> Set[str]:
        if not states:
            return states
        if _consumes_cycle(stmt):
            return {"cyc"}
        if isinstance(stmt, ast.Block):
            return self._seq(stmt.statements, states, exits)
        if isinstance(stmt, ast.Seq):
            return self._stmt(stmt.body, states, exits)
        if isinstance(stmt, ast.If):
            then_states = self._stmt(stmt.then, set(states), exits)
            if stmt.otherwise is not None:
                else_states = self._stmt(stmt.otherwise, set(states), exits)
            else:
                else_states = set(states)
            return then_states | else_states
        if isinstance(stmt, ast.Return):
            return set()  # leaves the machine entirely
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if exits is not None:
                exits |= states  # binds to the nested loop: falls out of it
                return set()
            if isinstance(stmt, ast.Break):
                return set()  # leaves the loop under test
            # continue: straight back to the header (via the step for `for`)
            if not self.step_consumes and "nc" in states:
                self.hit = True
            return set()
        if isinstance(stmt, (ast.While, ast.For)):
            # May run zero iterations (state passes through) or consume.
            return states | {"cyc"}
        if isinstance(stmt, ast.DoWhile):
            inner_exits: Set[str] = set()
            fall = self._stmt(stmt.body, set(states), inner_exits)
            return fall | inner_exits | {"cyc"}
        if isinstance(stmt, ast.Par):
            if any(
                _consumes_cycle(inner)
                for branch in stmt.branches
                for inner in ast.walk_stmts(branch)
            ):
                return {"cyc"}
            return states
        if isinstance(stmt, ast.Within):
            return self._seq(stmt.body.statements, states, exits)
        return states  # empty declarations, pure expressions: zero cycles


class ZeroTimeLoopRule(Rule):
    """Handel-C: a loop that can iterate without an assignment or delay is a
    combinational cycle (only assignments and delays take a clock cycle)."""

    rule = RULE_COMB_CYCLE
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        for fn in self.inlined_functions(ctx):
            for stmt in ast.walk_stmts(fn.body):
                if not isinstance(stmt, _LOOP_STMTS):
                    continue
                step_consumes = (
                    isinstance(stmt, ast.For) and stmt.step is not None
                )
                if _ZeroTimePaths(step_consumes).scan(stmt.body):
                    yield self.diag(
                        flow_key,
                        "zero-time loop: the body can repeat without an"
                        " assignment or delay, a combinational cycle in"
                        " hardware",
                        location=stmt.location,
                        hint="add an assignment or `delay;` to the loop body",
                    )

    def inlined_functions(self, ctx: LintContext) -> List[ast.FunctionDef]:
        inlined = ctx.inlined()
        wanted = set(ctx.roots)
        return [fn for fn in inlined.functions if fn.name in wanted]


class ParStructureRule(Rule):
    """Handel-C ``par`` branches run in lockstep and must be straight-line
    statement chains — no control flow, no early exits."""

    rule = RULE_STRUCTURE
    requires_inline = True

    _CONTROL = (ast.If, ast.While, ast.DoWhile, ast.For,
                ast.Break, ast.Continue, ast.Return)

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        inlined = ctx.inlined()
        wanted = set(ctx.roots)
        for fn in inlined.functions:
            if fn.name not in wanted:
                continue
            for stmt in ast.walk_stmts(fn.body):
                if not isinstance(stmt, ast.Par):
                    continue
                for branch in stmt.branches:
                    offender = next(
                        (
                            inner
                            for inner in ast.walk_stmts(branch)
                            if isinstance(inner, self._CONTROL)
                        ),
                        None,
                    )
                    if offender is not None:
                        yield self.diag(
                            flow_key,
                            "par branches must be straight-line code"
                            f" ({type(offender).__name__.lower()} inside a"
                            " par branch)",
                            location=offender.location,
                            hint="move control flow into a process and"
                                 " communicate over a channel",
                        )
                        break  # one diagnostic per par is enough


class ReceivePositionRule(Rule):
    """Handel-C's ``c ? x`` form: a receive must stand alone — as a plain
    statement, an initializer, or the whole right-hand side of an
    assignment — never inside a larger expression."""

    rule = RULE_STRUCTURE

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        for fn in ctx.reachable_functions():
            for stmt in ast.walk_stmts(fn.body):
                allowed = self._allowed_roots(stmt)
                for expr in ast.stmt_expressions(stmt):
                    for sub in ast.walk_expr(expr):
                        if isinstance(sub, ast.Receive) and not any(
                            sub is ok for ok in allowed
                        ):
                            yield self.diag(
                                flow_key,
                                "recv() must stand alone"
                                " (use `x = recv(c);` then the variable)",
                                location=sub.location,
                            )

    @staticmethod
    def _allowed_roots(stmt: ast.Stmt) -> List[ast.Expr]:
        allowed: List[ast.Expr] = []
        if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.Receive):
            allowed.append(stmt.expr)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Receive):
            allowed.append(stmt.value)
        if isinstance(stmt, ast.VarDecl) and isinstance(stmt.init, ast.Receive):
            allowed.append(stmt.init)
        return allowed


class AliasFallbackRule(Rule):
    """Pointer-accepting flows: objects the Andersen analysis cannot resolve
    collapse into the unified memory, serializing every access through its
    single port.  Compiles, but the paper's cost claim applies — WARNING."""

    rule = RULE_ALIAS
    severity = Severity.WARNING
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if FEATURE_POINTERS not in ctx.features:
            return
        fn = ctx.inlined(roots=[ctx.function]).function(ctx.function)
        plan = plan_pointers(fn)
        if plan.stats.unified_count:
            yield self.diag(
                flow_key,
                f"{plan.stats.unified_count} object(s) fall back to the"
                f" unified memory (mode={plan.mode}); accesses serialize"
                " through one port",
                location=ctx.feature_site(FEATURE_POINTERS),
                hint="keep each pointer aimed at a single array so the"
                     " analysis can privatize it",
            )


class SharedRaceRule(Rule):
    """Concurrent flows: two processes touching the same global variable
    (at least one writing) with no channel between them race — the paper's
    nondeterministic-shared-variable claim.  CDFG-level: reads/writes and
    channel endpoints come from the lowered ops, locations from the
    builder's source tracking."""

    rule = RULE_SHARED_RACE
    severity = Severity.WARNING
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if len(ctx.roots) < 2:
            return
        facts = []
        for root in ctx.roots:
            cdfg = ctx.cdfg(root)
            channels: Set[Symbol] = {
                op.channel
                for op in cdfg.iter_ops()
                if op.kind in (OpKind.SEND, OpKind.RECV)
                and op.channel is not None
            }
            facts.append((root, cdfg, channels))
        for i in range(len(facts)):
            for j in range(i + 1, len(facts)):
                root_a, cdfg_a, chans_a = facts[i]
                root_b, cdfg_b, chans_b = facts[j]
                if chans_a & chans_b:
                    continue  # a rendezvous orders their accesses
                shared = (
                    cdfg_a.globals_written
                    & (cdfg_b.globals_read | cdfg_b.globals_written)
                ) | (
                    cdfg_b.globals_written
                    & (cdfg_a.globals_read | cdfg_a.globals_written)
                )
                for symbol in sorted(shared, key=lambda s: s.name):
                    location = (
                        cdfg_a.global_write_sites.get(symbol)
                        or cdfg_b.global_write_sites.get(symbol)
                        or UNKNOWN_LOCATION
                    )
                    yield self.diag(
                        flow_key,
                        f"processes {root_a!r} and {root_b!r} share global"
                        f" {symbol.name!r} with no channel between them"
                        " (nondeterministic interleaving)",
                        location=location,
                        hint="synchronize the access through a channel"
                             " send/recv pair",
                    )
