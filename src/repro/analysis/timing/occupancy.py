"""Measured per-cycle resource occupancy of compiled artifacts.

The scheduled flows expose occupancy through
:meth:`repro.scheduling.base.BlockSchedule.step_occupancy`; syntax-directed
FSMDs (Handel-C) have no schedule object, so occupancy is measured straight
off the machine's states.  Both the TIM3xx checker rules and the
cross-validation harness use these helpers, which is what makes the
checker's claims testable: the rule *predicts* an oversubscribed cycle, the
harness *measures* it on the artifact the flow actually built.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...lang.errors import SourceLocation
from ...scheduling.resources import FREE, MEMORY_PREFIX, classify


def state_memory_occupancy(fsmd) -> List[Dict[str, int]]:
    """Per-state memory-class usage of one FSMD: ``{"mem:<name>": count}``
    per state, in state order (non-memory classes excluded)."""
    usage: List[Dict[str, int]] = []
    for state in fsmd.states:
        counts: Dict[str, int] = {}
        for op in state.ops:
            resource = classify(op)
            if resource.startswith(MEMORY_PREFIX):
                counts[resource] = counts.get(resource, 0) + 1
        usage.append(counts)
    return usage


def fsmd_port_violations(
    fsmd, memory_ports: int = 1
) -> List[Tuple[int, str, int, Optional[SourceLocation]]]:
    """States whose measured memory occupancy exceeds the RAM's ports:
    ``(state_id, class, used, location)``, location being the first
    source-tracked access of the oversubscribed memory in that state."""
    violations: List[Tuple[int, str, int, Optional[SourceLocation]]] = []
    for state, counts in zip(fsmd.states, state_memory_occupancy(fsmd)):
        for resource, used in sorted(counts.items()):
            if used <= memory_ports:
                continue
            location = next(
                (
                    op.location
                    for op in state.ops
                    if classify(op) == resource and op.location is not None
                ),
                None,
            )
            violations.append((state.id, resource, used, location))
    return violations


def system_port_violations(
    system, memory_ports: int = 1
) -> List[Tuple[str, int, str, int, Optional[SourceLocation]]]:
    """Port violations across every machine of an :class:`FSMDSystem`:
    ``(fsmd_name, state_id, class, used, location)``."""
    found = []
    for fsmd in system.fsmds:
        for state_id, resource, used, location in fsmd_port_violations(
            fsmd, memory_ports
        ):
            found.append((fsmd.name, state_id, resource, used, location))
    return found


def peak_schedule_occupancy(design) -> Dict[str, int]:
    """Worst per-step usage of each resource class across a scheduled
    design's artifacts (FREE excluded); empty for designs without
    schedules."""
    peak: Dict[str, int] = {}
    for artifact in getattr(design, "artifacts", ()):
        for resource, used in artifact.schedule.peak_occupancy().items():
            if resource == FREE:
                continue
            if used > peak.get(resource, 0):
                peak[resource] = used
    return peak


def constrained_channel_ops(design) -> List[Tuple[str, Optional[SourceLocation]]]:
    """SEND/RECV operations carrying a ``within`` constraint group in a
    compiled scheduled design — the measured artifact fact that validates
    TIM101 (an unbounded-latency rendezvous under a fixed-cycle budget).
    Returns ``(op kind name, location)`` pairs."""
    from ...ir.ops import OpKind

    found: List[Tuple[str, Optional[SourceLocation]]] = []
    for artifact in getattr(design, "artifacts", ()):
        for op in artifact.cdfg.iter_ops():
            if op.kind in (OpKind.SEND, OpKind.RECV) and op.constraint is not None:
                found.append((op.kind.name, op.location))
    return found
