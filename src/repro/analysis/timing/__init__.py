"""Time-sensitive checking tier: schedule-aware timing/resource obligations.

Where the ``SYN`` linter predicts *compile-time* rejections (Table 1's
feature restrictions), this tier checks the obligations a flow's *schedule*
must meet — the paper's deeper point that C-like source fixes far less of
the timing/concurrency contract than hardware needs:

* ``TIM1xx`` — timing obligations: ``within`` budgets vs. feasible
  schedules, unbounded-latency operations under fixed-cycle constraints,
  implicit one-cycle rules vs. the clock budget;
* ``TIM2xx`` — concurrency obligations: rendezvous endpoint legality,
  same-cycle memory conflicts under lockstep ``par``;
* ``TIM3xx`` — resource obligations: memory-port occupancy, pipeline
  initiation-interval floors.

Entry points:

* :func:`check` — lint + TIM rules in one :class:`LintReport`;
* :func:`repro.analysis.timing.harness.cross_validate_matrix` — checker
  verdicts vs. actual schedule/simulation outcomes over the matrix;
* ``repro check`` / ``repro matrix --check`` on the CLI.

Every TIM **error** is validated against an observable outcome (see
``TIM_VALIDATES`` in the diagnostics module and ``docs/timing.md``): a
compile-time :class:`~repro.flows.base.TimingInfeasible`, a simulated
rendezvous deadlock, or a measured property of the compiled artifact
(constraint groups spanning channel ops, per-state port occupancy, modulo
MII).  The cross-validation harness asserts those outcomes cell by cell.
"""

from ..lint.diagnostics import TIM_RULES, TIM_VALIDATES
from .checker import CheckRejected, check, check_file, enforce
from .obligations import (
    CHAIN_FLOWS,
    CheckOptions,
    IMPLICIT_CYCLE_FLOWS,
    LIST_FLOWS,
    TimingObligations,
    obligations_for,
)
from .occupancy import fsmd_port_violations, state_memory_occupancy
from .rules import timing_rules_for

__all__ = [
    "CHAIN_FLOWS",
    "CheckOptions",
    "CheckRejected",
    "IMPLICIT_CYCLE_FLOWS",
    "LIST_FLOWS",
    "TIM_RULES",
    "TIM_VALIDATES",
    "TimingObligations",
    "check",
    "check_file",
    "enforce",
    "fsmd_port_violations",
    "obligations_for",
    "state_memory_occupancy",
    "timing_rules_for",
]
