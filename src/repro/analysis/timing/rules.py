"""The TIM rule set: schedule-aware obligations checked before compiling.

Each rule runs inside the lint engine (via ``lint(extra_rules=...)``), so it
shares :class:`~repro.analysis.lint.rules.LintContext` caches, the
``requires_inline`` recursion guard, and SYN999 crash isolation with the
structural rules.  Unlike the registry's cached rule tuples, TIM rules are
built fresh per check around a :class:`_TimingScratch`, because they
replicate pieces of the flows' own pipelines (optimized CDFGs, list
schedules, Handel-C FSMDs) whose cost is worth paying once per source
buffer but not worth carrying across checks.

The validation contract (``TIM_VALIDATES``): every error these rules emit
corresponds to an observable outcome on the real flow — a
:class:`~repro.flows.base.TimingInfeasible` at compile time, a rendezvous
deadlock in simulation, or a measurable property of the compiled artifact.
``tests/test_timing.py`` and the cross-validation harness hold that line.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...ir import build_function
from ...ir.cdfg import FunctionCDFG
from ...ir.passes.pipeline import optimize
from ...lang import ast_nodes as ast
from ...lang.errors import SourceLocation, UNKNOWN_LOCATION
from ...lang.semantic import FEATURE_CHANNELS, FEATURE_WITHIN
from ...rtl import tech as T
from ...rtl.tech import DEFAULT_TECH
from ...scheduling.base import ConstraintInfeasible
from ...scheduling.list_scheduler import list_schedule_function
from ...scheduling.modulo import (
    find_pipelineable_loops,
    loop_carried_dependences,
    recurrence_mii,
    resource_mii,
)
from ..lint.diagnostics import (
    Diagnostic,
    RULE_TIM_CYCLE_BUDGET,
    RULE_TIM_II_CONFLICT,
    RULE_TIM_PAR_SHARED_CYCLE,
    RULE_TIM_PORT_OVERSUBSCRIBED,
    RULE_TIM_RENDEZVOUS,
    RULE_TIM_UNBOUNDED_IN_WITHIN,
    RULE_TIM_WITHIN_INFEASIBLE,
    Severity,
)
from ..lint.rules import LintContext, Rule
from ..pointer import plan_pointers
from .obligations import CheckOptions, TimingObligations, obligations_for
from .occupancy import fsmd_port_violations


class _TimingScratch:
    """Per-check caches shared by every TIM rule (and, via ``check()``,
    across flows): the optimized CDFG and the Handel-C FSMD of each root.
    ``LintContext.cdfg`` stays untouched — optimization mutates the CDFG,
    and other rules rely on the unoptimized shared copy."""

    def __init__(self) -> None:
        self._cdfgs: Dict[str, FunctionCDFG] = {}
        self._handelc: Dict[str, object] = {}

    def optimized_cdfg(self, ctx: LintContext, root: str) -> FunctionCDFG:
        if root not in self._cdfgs:
            fn = ctx.inlined().function(root)
            plan = plan_pointers(fn)
            cdfg = build_function(fn, ctx.info, plan)
            optimize(cdfg, max_iterations=8)
            self._cdfgs[root] = cdfg
        return self._cdfgs[root]

    def handelc_builder(self, ctx: LintContext, root: str):
        """The built :class:`_HandelCBuilder` for one root, or None when
        Handel-C's own translation rejects the program (a SYN rule already
        reports that)."""
        if root not in self._handelc:
            from ...flows.handelc import _HandelCBuilder

            try:
                fn = ctx.inlined().function(root)
                builder = _HandelCBuilder(fn)
                builder.fsmd = builder.build()  # type: ignore[attr-defined]
            except Exception:  # noqa: BLE001 - mirror of the flow's rejection
                builder = None
            self._handelc[root] = builder
        return self._handelc[root]


class TimingRule(Rule):
    """Base for TIM rules: carries the check options, the flow obligations,
    and the shared scratch."""

    def __init__(
        self,
        options: CheckOptions,
        obligations: TimingObligations,
        scratch: _TimingScratch,
    ):
        self.options = options
        self.obligations = obligations
        self.scratch = scratch

    def inlined_roots(self, ctx: LintContext) -> List[ast.FunctionDef]:
        inlined = ctx.inlined()
        wanted = set(ctx.roots)
        return [fn for fn in inlined.functions if fn.name in wanted]


def _rendezvous_in(stmt: ast.Stmt) -> Iterable[Tuple[str, SourceLocation]]:
    """Channel endpoints directly inside one statement (no recursion into
    child statements): ``("send"|"recv", location)``."""
    if isinstance(stmt, ast.Send):
        yield "send", stmt.location
    for expr in ast.stmt_expressions(stmt):
        for sub in ast.walk_expr(expr):
            if isinstance(sub, ast.Receive):
                yield "recv", sub.location


class UnboundedInWithinRule(TimingRule):
    """TIM101: a rendezvous inside a ``within`` block.  The budget is a
    fixed cycle count; a blocking send/recv's latency depends on the peer
    and is statically unbounded, so no schedule can *guarantee* the budget.
    The flows still compile it (the constraint group simply spans the
    channel op — which is what the harness measures), making this the
    tier's sharpest compiles-but-cannot-promise case."""

    rule = RULE_TIM_UNBOUNDED_IN_WITHIN
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if FEATURE_WITHIN not in ctx.features:
            return
        for fn in self.inlined_roots(ctx):
            for stmt in ast.walk_stmts(fn.body):
                if not isinstance(stmt, ast.Within):
                    continue
                for inner in ast.walk_stmts(stmt.body):
                    for kind, location in _rendezvous_in(inner):
                        yield self.diag(
                            flow_key,
                            f"{kind} inside a within({stmt.cycles}) block:"
                            " rendezvous latency depends on the peer, so the"
                            " cycle budget cannot be guaranteed",
                            location=location,
                            hint="move the channel operation outside the"
                                 " constrained block",
                        )


class WithinInfeasibleRule(TimingRule):
    """TIM102: replicate the flow's own scheduling pipeline (inline ->
    CDFG -> optimize -> list schedule under the flow's resources/clock) and
    report when no schedule fits a ``within`` budget.  The flow's compile
    raises :class:`TimingInfeasible` with this rule id for the same
    program, so the matrix verdict is REJECTED exactly when this fires."""

    rule = RULE_TIM_WITHIN_INFEASIBLE
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if FEATURE_WITHIN not in ctx.features:
            return
        for fn in self.inlined_roots(ctx):
            cdfg = self.scratch.optimized_cdfg(ctx, fn.name)
            if not cdfg.constraints:
                continue
            try:
                list_schedule_function(
                    cdfg, self.obligations.resources, DEFAULT_TECH,
                    self.obligations.clock_ns,
                )
            except ConstraintInfeasible as error:
                location = next(
                    (
                        stmt.location
                        for stmt in ast.walk_stmts(fn.body)
                        if isinstance(stmt, ast.Within)
                    ),
                    UNKNOWN_LOCATION,
                )
                yield self.diag(
                    flow_key,
                    f"no schedule meets the within constraint: {error}",
                    location=location,
                    hint="widen the cycle budget or shrink the"
                         " constrained block",
                )


def _binary_tech_class(op: str) -> str:
    if op in ("+", "-"):
        return T.ADD
    if op == "*":
        return T.MULTIPLY
    if op in ("/", "%"):
        return T.DIVIDE
    if op in ("<<", ">>"):
        return T.SHIFT
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return T.COMPARE
    return T.LOGIC


def _expr_delay_ns(expr: ast.Expr, tech=DEFAULT_TECH) -> float:
    """Combinational-depth estimate of an expression (32-bit operators),
    mirroring how the chain scheduler prices a packed cycle.  AST-level on
    purpose: TIM103 must warn before any flow pipeline runs."""
    if isinstance(expr, ast.UnaryOp):
        unit = T.ADD if expr.op == "-" else T.LOGIC
        return _expr_delay_ns(expr.operand, tech) + tech.delay_ns(unit, 32)
    if isinstance(expr, ast.BinaryOp):
        depth = max(
            _expr_delay_ns(expr.left, tech), _expr_delay_ns(expr.right, tech)
        )
        return depth + tech.delay_ns(_binary_tech_class(expr.op), 32)
    if isinstance(expr, ast.Conditional):
        depth = max(
            _expr_delay_ns(expr.cond, tech),
            _expr_delay_ns(expr.then, tech),
            _expr_delay_ns(expr.otherwise, tech),
        )
        return depth + tech.delay_ns(T.SELECT, 32)
    if isinstance(expr, ast.ArrayIndex):
        return _expr_delay_ns(expr.index, tech) + tech.delay_ns(T.MEM_READ, 32)
    return 0.0  # literals, identifiers, receives: register/port reads


class CycleBudgetRule(TimingRule):
    """TIM103 (warning): under a one-cycle-per-statement timing model, a
    deep expression silently stretches the clock period — the paper's
    "recode to meet timing" experience with Handel-C and Transmogrifier.
    Compiles and simulates correctly; the cost model simply reports a slow
    clock, so this is a hazard, not a rejection."""

    rule = RULE_TIM_CYCLE_BUDGET
    severity = Severity.WARNING
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        budget = self.options.clock_budget_ns
        for fn in self.inlined_roots(ctx):
            for stmt in ast.walk_stmts(fn.body):
                if isinstance(stmt, ast.Assign):
                    value, location = stmt.value, stmt.location
                elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
                    value, location = stmt.init, stmt.location
                else:
                    continue
                depth = _expr_delay_ns(value)
                if depth > budget:
                    yield self.diag(
                        flow_key,
                        f"single-cycle statement implies a ~{depth:.1f} ns"
                        f" combinational path (budget {budget:.1f} ns):"
                        " the whole design's clock stretches to fit it",
                        location=location,
                        hint="split the expression across several"
                             " assignments to pipeline the path",
                    )


class RendezvousRule(TimingRule):
    """TIM201: a rendezvous channel whose endpoints cannot meet.  Two
    shapes: an *orphan* endpoint (a send with no receiver anywhere, or the
    reverse) and a *self-rendezvous* (one sequential machine holds both
    ends — it cannot be on both sides of a blocking handshake).  Either way
    the simulation deadlocks the moment the endpoint executes."""

    rule = RULE_TIM_RENDEZVOUS
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        if FEATURE_CHANNELS not in ctx.features:
            return
        # channel symbol -> list of (kind, root, location).
        endpoints: Dict[object, List[Tuple[str, str, SourceLocation]]] = {}
        for fn in self.inlined_roots(ctx):
            for stmt in ast.walk_stmts(fn.body):
                if isinstance(stmt, ast.Send):
                    symbol = stmt.symbol  # type: ignore[attr-defined]
                    endpoints.setdefault(symbol, []).append(
                        ("send", fn.name, stmt.location)
                    )
                for expr in ast.stmt_expressions(stmt):
                    for sub in ast.walk_expr(expr):
                        if isinstance(sub, ast.Receive):
                            symbol = sub.symbol  # type: ignore[attr-defined]
                            endpoints.setdefault(symbol, []).append(
                                ("recv", fn.name, sub.location)
                            )
        for symbol in sorted(endpoints, key=lambda s: s.name):
            uses = endpoints[symbol]
            sends = [u for u in uses if u[0] == "send"]
            recvs = [u for u in uses if u[0] == "recv"]
            if sends and not recvs:
                yield self.diag(
                    flow_key,
                    f"channel {symbol.name!r} is sent on but never"
                    " received: the sender blocks forever",
                    location=sends[0][2],
                    hint="add a receiving process, or drop the send",
                )
            elif recvs and not sends:
                yield self.diag(
                    flow_key,
                    f"channel {symbol.name!r} is received on but never"
                    " sent: the receiver blocks forever",
                    location=recvs[0][2],
                    hint="add a sending process, or drop the recv",
                )
            elif {root for _, root, _ in uses} == {uses[0][1]}:
                yield self.diag(
                    flow_key,
                    f"channel {symbol.name!r} has both endpoints in"
                    f" {uses[0][1]!r}: one sequential machine cannot"
                    " rendezvous with itself",
                    location=sends[0][2],
                    hint="move one endpoint into a separate process",
                )


class ParSharedCycleRule(TimingRule):
    """TIM202 (Handel-C): the lockstep ``par`` merge puts the k-th
    statements of every branch into one cycle; when two branches touch the
    same memory in the same cycle — at least one writing — the single-port
    RAM cannot serve both.  The frontend's race check only catches
    whole-variable write-write pairs, so write-read array overlap compiles;
    the builder counts exactly these merges (``par_memory_conflicts``)."""

    rule = RULE_TIM_PAR_SHARED_CYCLE
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        for fn in self.inlined_roots(ctx):
            builder = self.scratch.handelc_builder(ctx, fn.name)
            if builder is None or not builder.par_memory_conflicts:
                continue
            for site in builder.par_conflict_sites:
                yield self.diag(
                    flow_key,
                    "par branches access one memory in the same lockstep"
                    " cycle (at least one write): a single-port RAM cannot"
                    " serve both",
                    location=site or UNKNOWN_LOCATION,
                    hint="stagger the accesses with a delay, or split the"
                         " array per branch",
                )


class IIConflictRule(TimingRule):
    """TIM301: a requested loop initiation interval below the loop's MII
    floor (resource-limited or recurrence-limited).  Only meaningful when
    the caller asked for pipelining (``CheckOptions.pipeline_ii``); the
    modulo scheduler provably cannot do better than max(ResMII, RecMII)."""

    rule = RULE_TIM_II_CONFLICT
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        requested = self.options.pipeline_ii
        if requested is None:
            return
        for fn in self.inlined_roots(ctx):
            cdfg = self.scratch.optimized_cdfg(ctx, fn.name)
            for loop in find_pipelineable_loops(cdfg):
                res = resource_mii(loop, self.obligations.resources)
                rec = recurrence_mii(
                    loop, carried=loop_carried_dependences(loop)
                )
                floor = max(res, rec, 1)
                if requested < floor:
                    location = next(
                        (
                            op.location
                            for op in loop.ops
                            if op.location is not None
                        ),
                        UNKNOWN_LOCATION,
                    )
                    yield self.diag(
                        flow_key,
                        f"requested II={requested} is below loop"
                        f" {loop.label!r}'s floor of {floor}"
                        f" (ResMII={res}, RecMII={rec})",
                        location=location,
                        hint="raise the target II, add memory ports, or"
                             " break the recurrence",
                    )


class PortOversubscribedRule(TimingRule):
    """TIM302 (Handel-C): the one-cycle-per-assignment rule can demand more
    memory ports in a single cycle than the RAM has — e.g. an assignment
    reading one array three times.  The design still simulates (the model
    is tolerant), but the implied hardware needs a multi-port RAM the
    single-port contract does not provide; measured straight off the built
    FSMD's states."""

    rule = RULE_TIM_PORT_OVERSUBSCRIBED
    requires_inline = True

    def check(self, ctx: LintContext, flow_key: str) -> Iterable[Diagnostic]:
        ports = self.options.memory_ports
        for fn in self.inlined_roots(ctx):
            builder = self.scratch.handelc_builder(ctx, fn.name)
            if builder is None:
                continue
            seen: Set[Tuple[str, object]] = set()
            for _state, resource, used, location in fsmd_port_violations(
                builder.fsmd, ports
            ):
                spot = (resource, location)
                if spot in seen:
                    continue
                seen.add(spot)
                name = resource.split(":", 1)[1]
                yield self.diag(
                    flow_key,
                    f"one cycle makes {used} accesses to memory"
                    f" {name!r} ({ports} port(s) available)",
                    location=location or UNKNOWN_LOCATION,
                    hint="split the statement so each cycle touches the"
                         " array at most once per port",
                )


def timing_rules_for(
    flow: str,
    options: Optional[CheckOptions] = None,
    scratch: Optional[_TimingScratch] = None,
) -> List[Rule]:
    """Fresh TIM rule instances for one flow.  ``scratch`` may be shared
    across flows of one ``check()`` call (the cached artifacts are
    flow-independent); a fresh one is made otherwise."""
    options = options or CheckOptions()
    scratch = scratch or _TimingScratch()
    obligations = obligations_for(flow, options)
    rules: List[Rule] = []
    if obligations.enforces_within:
        rules.append(UnboundedInWithinRule(options, obligations, scratch))
        rules.append(WithinInfeasibleRule(options, obligations, scratch))
    if obligations.implicit_cycle:
        rules.append(CycleBudgetRule(options, obligations, scratch))
    if obligations.rendezvous:
        rules.append(RendezvousRule(options, obligations, scratch))
    if obligations.lockstep_par:
        rules.append(ParSharedCycleRule(options, obligations, scratch))
        rules.append(PortOversubscribedRule(options, obligations, scratch))
    if obligations.pipelined and options.pipeline_ii is not None:
        rules.append(IIConflictRule(options, obligations, scratch))
    return rules
