"""Per-flow timing/resource obligations, derived from the registry.

A flow's *obligations* are the schedule-level contract its execution model
imposes: does it enforce ``within`` budgets, does it rendezvous over
channels, does it merge ``par`` branches in lockstep, which resource set
does its scheduler pack against.  The feature-dependent bits are derived
from each flow's ``FORBIDDEN`` table (the same source the linter and the
fuzzer masks use), so a changed restriction retargets the checker with no
checker change; only the scheduler *style* is declared here, mirroring the
``scheduler=`` argument each flow passes to
:func:`repro.flows.scheduled.synthesize_fsmd_system`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ...lang.semantic import FEATURE_CHANNELS, FEATURE_WITHIN
from ...scheduling.resources import ResourceSet

# Scheduler style per flow (mirrors each flow module's pipeline wiring).
#: Flows that list-schedule a CDFG under resource limits and honour
#: ``within`` constraint groups (enforce_constraints=True, 5 ns clock).
LIST_FLOWS: Tuple[str, ...] = (
    "hardwarec", "c2verilog", "cyber", "specc", "bachc",
)
#: Syntax-directed flows: one state per block (or per assignment), with
#: combinational chaining — the clock period *is* the worst chained path.
CHAIN_FLOWS: Tuple[str, ...] = ("transmogrifier", "systemc")
#: Flows whose timing model charges exactly one cycle per statement, so a
#: fat expression silently stretches the clock (Handel-C's rule, and the
#: chain flows' per-block variant).
IMPLICIT_CYCLE_FLOWS: Tuple[str, ...] = ("handelc", "transmogrifier", "systemc")
#: The lockstep-par flow (branch k-th statements share one state/cycle).
LOCKSTEP_PAR_FLOWS: Tuple[str, ...] = ("handelc",)
#: Flows whose list scheduler packs against an unlimited functional-unit
#: set (Bach C models a freely-sized datapath); everyone else uses the
#: typical mid-sized datapath.
UNLIMITED_RESOURCE_FLOWS: Tuple[str, ...] = ("bachc",)


@dataclass(frozen=True)
class CheckOptions:
    """Knobs for the time-sensitive checker.

    ``pipeline_ii`` — a requested loop initiation interval; when set, the
    TIM301 rule checks it against every pipelineable loop's MII floor.
    ``clock_ns`` — the clock the list-scheduled flows pack cycles at.
    ``clock_budget_ns`` — the combinational budget a single implicit cycle
    may use before TIM103 warns (the recode-to-meet-timing threshold).
    ``memory_ports`` — ports per RAM the TIM302 occupancy check assumes.
    """

    pipeline_ii: Optional[int] = None
    clock_ns: float = 5.0
    clock_budget_ns: float = 25.0
    memory_ports: int = 1


@dataclass(frozen=True)
class TimingObligations:
    """What one flow's schedule must provide."""

    flow: str
    enforces_within: bool       # schedules under within constraint groups
    rendezvous: bool            # blocking CSP channels can deadlock
    lockstep_par: bool          # par branches merge cycle-by-cycle
    implicit_cycle: bool        # one statement/block = one cycle, any width
    list_scheduled: bool        # resource-limited cycle packing
    chain_scheduled: bool       # combinational chaining per block
    resources: ResourceSet = field(compare=False, default_factory=ResourceSet)
    clock_ns: float = 5.0

    @property
    def pipelined(self) -> bool:
        """Whether loop pipelining (and so an II request) is meaningful."""
        return self.list_scheduled


def obligations_for(flow: str, options: Optional[CheckOptions] = None) -> TimingObligations:
    """The obligations ``flow``'s execution model imposes."""
    from ...flows.registry import get_flow

    options = options or CheckOptions()
    forbidden = get_flow(flow).FORBIDDEN
    list_scheduled = flow in LIST_FLOWS
    return TimingObligations(
        flow=flow,
        enforces_within=FEATURE_WITHIN not in forbidden and list_scheduled,
        rendezvous=FEATURE_CHANNELS not in forbidden,
        lockstep_par=flow in LOCKSTEP_PAR_FLOWS,
        implicit_cycle=flow in IMPLICIT_CYCLE_FLOWS,
        list_scheduled=list_scheduled,
        chain_scheduled=flow in CHAIN_FLOWS,
        resources=(
            ResourceSet.unlimited()
            if flow in UNLIMITED_RESOURCE_FLOWS
            else ResourceSet.typical()
        ),
        clock_ns=options.clock_ns,
    )
