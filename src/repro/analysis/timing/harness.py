"""Cross-validation: checker verdicts vs. actual flow outcomes.

The headline deliverable of the timing tier.  For every (workload, flow)
cell the harness compares what the checker *predicted* with what the flow
*did*, rule family by rule family, because TIM rules validate differently
on purpose (``TIM_VALIDATES``):

* SYN errors and **TIM102** predict a compile rejection — validated against
  the runner verdict (``rejected``);
* **TIM201** predicts a rendezvous deadlock — validated by the simulation
  failing (the runner classifies the deadlock as an error/timeout, never
  ``ok``);
* **TIM101/TIM202/TIM302** predict *measurable artifact properties* of
  designs that still compile (constraint groups spanning channel ops, par
  merge conflicts, per-state port occupancy) — validated by compiling and
  measuring;
* **TIM103** is a hazard warning and never affects verdicts;
* **TIM301** only exists under an explicit II request and is validated by
  the modulo scheduler's MII (see :func:`validate_probe`).

A clean checker report must mean a clean run: checker-clean cells whose
runner verdict is not ``ok`` are *false accepts* and fail the matrix test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...lang.errors import UNKNOWN_LOCATION
from ..lint.diagnostics import (
    LintReport,
    RULE_TIM_II_CONFLICT,
    RULE_TIM_PAR_SHARED_CYCLE,
    RULE_TIM_PORT_OVERSUBSCRIBED,
    RULE_TIM_RENDEZVOUS,
    RULE_TIM_UNBOUNDED_IN_WITHIN,
    RULE_TIM_WITHIN_INFEASIBLE,
)
from .checker import check
from .obligations import CheckOptions, obligations_for
from .occupancy import constrained_channel_ops, system_port_violations

#: Rules validated by compiling the design and measuring the artifact.
MEASURED_RULES = (
    RULE_TIM_UNBOUNDED_IN_WITHIN,
    RULE_TIM_PAR_SHARED_CYCLE,
    RULE_TIM_PORT_OVERSUBSCRIBED,
)
#: Rules validated by the runner verdict being ``rejected``.
REJECTING_RULES = (RULE_TIM_WITHIN_INFEASIBLE,)
#: Rules validated by the simulation failing (deadlock).
DEADLOCK_RULES = (RULE_TIM_RENDEZVOUS,)


@dataclass
class RuleValidation:
    """One predicted obligation violation and whether reality agreed."""

    rule: str
    validated: bool
    detail: str = ""


@dataclass
class CellCheck:
    """One (workload, flow) cell's cross-validation outcome."""

    workload: str
    flow: str
    checker_verdict: str        # "reject" | "warn" | "clean"
    runner_verdict: str         # the matrix engine's verdict string
    validations: List[RuleValidation] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return all(v.validated for v in self.validations)


@dataclass
class MatrixValidation:
    """The whole sweep's cross-validation result."""

    checks: List[CellCheck] = field(default_factory=list)

    @property
    def cells(self) -> int:
        return len(self.checks)

    @property
    def agreements(self) -> int:
        return sum(1 for c in self.checks if c.agreed)

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.cells if self.checks else 1.0

    def disagreements(self) -> List[CellCheck]:
        return [c for c in self.checks if not c.agreed]

    def false_accepts(self) -> List[CellCheck]:
        """Checker said clean/warn but the flow did not run OK — the one
        outcome the tier must never produce."""
        return [
            c for c in self.checks
            if c.checker_verdict != "reject" and c.runner_verdict != "ok"
        ]


def _compile_quietly(source: str, flow: str, function: str):
    """Compile for measurement; (design, error) — never raises."""
    from ...api import SynthesisOptions, synthesize

    try:
        result = synthesize(
            source, SynthesisOptions(flow=flow, function=function)
        )
        return result.design, None
    except Exception as error:  # noqa: BLE001 - measurement probe only
        return None, error


def _measure(rule: str, design, options: CheckOptions) -> Tuple[bool, str]:
    """Measure the artifact property one TIM rule predicts."""
    if rule == RULE_TIM_UNBOUNDED_IN_WITHIN:
        spans = constrained_channel_ops(design)
        return bool(spans), f"{len(spans)} channel op(s) in constraint groups"
    if rule == RULE_TIM_PAR_SHARED_CYCLE:
        conflicts = int(design.stats.get("par_memory_conflicts", 0))
        return conflicts > 0, f"builder counted {conflicts} merge conflict(s)"
    if rule == RULE_TIM_PORT_OVERSUBSCRIBED:
        found = system_port_violations(design.system, options.memory_ports)
        return bool(found), f"{len(found)} oversubscribed state(s)"
    return False, f"no measurement defined for {rule}"


def cross_validate_cell(
    workload: str,
    source: str,
    flow: str,
    runner_verdict: str,
    report: Optional[LintReport] = None,
    options: Optional[CheckOptions] = None,
    function: str = "main",
) -> CellCheck:
    """Validate one cell's checker output against its runner verdict and,
    for measured rules, against the compiled artifact itself."""
    options = options or CheckOptions()
    if report is None:
        report = check(source, flow=flow, function=function, options=options)
    errors = report.errors(flow)
    error_rules = {d.rule for d in errors}
    syn_errors = sorted(r for r in error_rules if r.startswith("SYN"))
    verdict = (
        "reject" if errors else "warn" if report.warnings(flow) else "clean"
    )
    cell = CellCheck(
        workload=workload, flow=flow,
        checker_verdict=verdict, runner_verdict=runner_verdict,
    )

    rejecting = bool(syn_errors) or any(
        r in error_rules for r in REJECTING_RULES
    )
    deadlocking = any(r in error_rules for r in DEADLOCK_RULES)

    if syn_errors:
        cell.validations.append(RuleValidation(
            rule=syn_errors[0],
            validated=runner_verdict == "rejected",
            detail=f"SYN errors {syn_errors} predict a compile rejection",
        ))
    for rule in REJECTING_RULES:
        if rule in error_rules:
            cell.validations.append(RuleValidation(
                rule=rule,
                validated=runner_verdict == "rejected",
                detail="predicts TimingInfeasible at compile",
            ))
    for rule in DEADLOCK_RULES:
        if rule in error_rules:
            cell.validations.append(RuleValidation(
                rule=rule,
                validated=runner_verdict != "ok",
                detail="predicts a rendezvous deadlock in simulation",
            ))

    measured = [r for r in MEASURED_RULES if r in error_rules]
    if measured:
        if rejecting:
            for rule in measured:
                cell.validations.append(RuleValidation(
                    rule=rule, validated=True,
                    detail="not measurable: compile rejected first",
                ))
        else:
            design, error = _compile_quietly(source, flow, function)
            for rule in measured:
                if design is None:
                    cell.validations.append(RuleValidation(
                        rule=rule, validated=False,
                        detail=f"measurement compile failed: {error}",
                    ))
                else:
                    ok, detail = _measure(rule, design, options)
                    cell.validations.append(
                        RuleValidation(rule=rule, validated=ok, detail=detail)
                    )

    if not rejecting and not deadlocking:
        # No verdict-affecting prediction: the flow must have run clean.
        # (Measured-rule errors intentionally coexist with an OK verdict —
        # that asymmetry is the tier's whole point.)
        cell.validations.append(RuleValidation(
            rule="(clean)" if not measured else "(measured-only)",
            validated=runner_verdict == "ok",
            detail="no rejection predicted, so the cell must run OK",
        ))
    return cell


def cross_validate_matrix(
    cells: Dict[Tuple[str, str], str],
    workloads=None,
    flows: Optional[Sequence[str]] = None,
    options: Optional[CheckOptions] = None,
) -> MatrixValidation:
    """Cross-validate the full workload × flow matrix.

    ``cells`` maps ``(workload name, flow key)`` to the runner's verdict
    string (a :class:`repro.runner.CellResult` ``verdict``).  One
    ``check()`` runs per workload (all flows share the parse and scratch),
    then each cell is validated per the rule-family semantics above."""
    from ...flows import COMPILABLE
    from ...workloads import WORKLOADS

    options = options or CheckOptions()
    selected = list(workloads) if workloads is not None else list(WORKLOADS)
    flow_keys = list(flows) if flows is not None else list(COMPILABLE)
    result = MatrixValidation()
    for w in selected:
        report = check(w.source, flows=flow_keys, options=options)
        for key in flow_keys:
            verdict = cells.get((w.name, key))
            if verdict is None:
                continue
            result.checks.append(cross_validate_cell(
                w.name, w.source, key, verdict,
                report=report, options=options,
            ))
    return result


# ---------------------------------------------------------------------------
# Probe validation (the fuzzer's timing-boundary cross-check)
# ---------------------------------------------------------------------------


@dataclass
class ProbeOutcome:
    """What happened when one timing-boundary probe met the checker and
    the real flow."""

    kind: str
    flow: str
    seed: int
    rule: str
    rejected: bool = False        # checker emitted the predicted rule id
    located: bool = False         # ... with a real source location
    outcome_validated: bool = False  # the real flow/simulator agreed
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.rejected and self.located and self.outcome_validated


def validate_probe(probe, options: Optional[CheckOptions] = None) -> ProbeOutcome:
    """Run one :class:`repro.fuzz.timing.TimingProbe` through the checker
    and cross-check the predicted outcome against the real flow."""
    options = options or CheckOptions(pipeline_ii=probe.pipeline_ii)
    report = check(probe.source, flow=probe.flow, options=options)
    hits = [d for d in report.errors(probe.flow) if d.rule == probe.rule]
    outcome = ProbeOutcome(
        kind=probe.kind, flow=probe.flow, seed=probe.seed, rule=probe.rule,
        rejected=bool(hits),
        located=any(h.location != UNKNOWN_LOCATION for h in hits),
    )
    if not hits:
        others = sorted({d.rule for d in report.for_flow(probe.flow)})
        outcome.detail = f"predicted rule missing; got {others}"
        return outcome
    outcome.outcome_validated, outcome.detail = _validate_probe_outcome(
        probe, options
    )
    return outcome


def _validate_probe_outcome(probe, options: CheckOptions) -> Tuple[bool, str]:
    from ...flows.base import TimingInfeasible

    if probe.rule == RULE_TIM_WITHIN_INFEASIBLE:
        design, error = _compile_quietly(probe.source, probe.flow, "main")
        if isinstance(error, TimingInfeasible):
            return True, f"compile raised TimingInfeasible: {error.reason}"
        return False, f"expected TimingInfeasible, got {error or 'a design'}"

    if probe.rule == RULE_TIM_RENDEZVOUS:
        design, error = _compile_quietly(probe.source, probe.flow, "main")
        if design is None:
            return False, f"compile failed before simulation: {error}"
        try:
            design.run(args=tuple(probe.args), max_cycles=10_000)
        except Exception as sim_error:  # noqa: BLE001 - deadlock expected
            text = str(sim_error)
            if "deadlock" in text:
                return True, f"simulation deadlocked: {text}"
            return False, f"simulation failed differently: {text}"
        return False, "simulation completed; no deadlock"

    if probe.rule == RULE_TIM_II_CONFLICT:
        from ...lang import parse
        from ...scheduling.modulo import find_pipelineable_loops, modulo_schedule
        from ..lint.rules import LintContext
        from .rules import _TimingScratch

        program, info = parse(probe.source)
        ctx = LintContext(program, info)
        cdfg = _TimingScratch().optimized_cdfg(ctx, "main")
        resources = obligations_for(probe.flow, options).resources
        loops = find_pipelineable_loops(cdfg)
        if not loops:
            return False, "no pipelineable loop found"
        for loop in loops:
            result = modulo_schedule(loop, resources)
            floor = result.mii
            if options.pipeline_ii is not None and floor > options.pipeline_ii:
                achieved = result.achieved_ii
                return True, (
                    f"modulo MII={floor} > requested {options.pipeline_ii}"
                    f" (achieved II={achieved})"
                )
        return False, "no loop's MII exceeds the requested II"

    # Measured rules: compile and measure the artifact.
    design, error = _compile_quietly(probe.source, probe.flow, "main")
    if design is None:
        return False, f"measurement compile failed: {error}"
    return _measure(probe.rule, design, options)
