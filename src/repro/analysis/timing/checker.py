"""The time-sensitive checker's entry points.

``check()`` is ``lint()`` plus the TIM tier: one parse, the registry's SYN
rules, then the flow's TIM rules layered through the engine's
``extra_rules`` hook — same context caches, same deterministic report.
``enforce()`` is the synthesize-facade gate: with
``SynthesisOptions(check=True)`` the pipeline refuses to compile a program
whose obligations the flow's schedule cannot meet, surfacing the rejection
as :class:`CheckRejected` (a :class:`FlowError`, so the matrix engine
classifies it as a rejection with the rule id attached).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...flows.base import FlowError
from ..lint.diagnostics import Diagnostic, LintReport
from ..lint.engine import lint
from .obligations import CheckOptions
from .rules import _TimingScratch, timing_rules_for


class CheckRejected(FlowError):
    """The pre-compile check found obligations this flow cannot meet.

    Carries the triggering diagnostics (``diagnostics``) and the full
    report (``report``); ``rule``/``location`` come from the first error
    in deterministic report order, so the exception text matches what
    ``repro check`` prints first."""

    def __init__(self, flow: str, errors: List[Diagnostic], report: LintReport):
        first = errors[0]
        super().__init__(
            flow,
            f"check rejected: {first.message}"
            + (f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""),
            rule=first.rule,
            location=first.location,
        )
        self.diagnostics = list(errors)
        self.report = report

    def __reduce__(self):
        # FlowError's field-replay reduce does not fit this signature;
        # rebuild from the diagnostics (the report shrinks to just them).
        report = LintReport(
            filename=self.report.filename,
            flows=list(self.report.flows),
            diagnostics=list(self.diagnostics),
        )
        return (self.__class__, (self.flow, self.diagnostics, report))


def check(
    source: str,
    flow: Optional[str] = None,
    flows: Optional[Sequence[str]] = None,
    function: str = "main",
    filename: str = "<input>",
    options: Optional[CheckOptions] = None,
    **kwargs,
) -> LintReport:
    """Lint plus the TIM tier for one flow, a list, or every compilable
    flow.  ``options`` (or loose :class:`CheckOptions` keywords such as
    ``pipeline_ii=2``) parameterize the timing rules.  One scratch is
    shared across flows: the expensive replicated artifacts (optimized
    CDFGs, Handel-C FSMDs) are flow-independent."""
    if options is None:
        options = CheckOptions(**kwargs)
    elif kwargs:
        raise TypeError("pass either options= or loose keywords, not both")
    scratch = _TimingScratch()
    return lint(
        source,
        flow=flow,
        flows=flows,
        function=function,
        filename=filename,
        extra_rules=lambda key: timing_rules_for(key, options, scratch),
    )


def check_file(
    path: str,
    flow: Optional[str] = None,
    flows: Optional[Sequence[str]] = None,
    function: str = "main",
    options: Optional[CheckOptions] = None,
) -> LintReport:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return check(source, flow=flow, flows=flows, function=function,
                 filename=path, options=options)


def enforce(
    source: str,
    flow: str,
    function: str = "main",
    options: Optional[CheckOptions] = None,
) -> LintReport:
    """Run the checker for one flow and raise :class:`CheckRejected` when
    it finds errors; returns the (possibly warning-bearing) report
    otherwise.  This is what ``SynthesisOptions(check=True)`` calls before
    handing the program to ``Flow.compile``."""
    report = check(source, flow=flow, function=function, options=options)
    errors = [d for d in report.sorted() if d in set(report.errors(flow))]
    if errors:
        raise CheckRejected(flow, errors, report)
    return report
