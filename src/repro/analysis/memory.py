"""Memory-architecture analysis: monolithic vs. partitioned memories (E8).

The paper: *"C's memory model is an undifferentiated array of bytes, yet
many small, varied memories are most effective in hardware."*

Two lowering plans make the claim measurable on any workload:

* :func:`partitioned_plan` — each array gets its own (single-ported)
  memory: accesses to different arrays schedule in the same cycle;
* :func:`monolithic_plan` — every array (and address-taken scalar) is laid
  out in **one** unified memory with one port: every access serializes,
  exactly as a faithful translation of C's flat address space would.

The schedule-length and cycle-count gap between the two is the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..lang import ast_nodes as ast
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, IntType
from .pointer import PointerPlan, plan_pointers


def arrays_of(fn: ast.FunctionDef) -> List[Symbol]:
    """Every array symbol the (inlined) function touches, in first-use
    order: locals, globals, and array parameters."""
    seen: Dict[Symbol, None] = {}
    for param in fn.params:
        symbol: Symbol = param.symbol  # type: ignore[attr-defined]
        if isinstance(symbol.type, ArrayType):
            seen.setdefault(symbol, None)
    for stmt in ast.walk_stmts(fn.body):
        if isinstance(stmt, ast.VarDecl):
            symbol = stmt.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, ArrayType):
                seen.setdefault(symbol, None)
        for expr in ast.stmt_expressions(stmt):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, ast.Identifier) and isinstance(
                    sub.type, ArrayType
                ):
                    seen.setdefault(sub.symbol, None)  # type: ignore[attr-defined]
    return list(seen)


def partitioned_plan(fn: ast.FunctionDef, enable_pointer_analysis: bool = True) -> PointerPlan:
    """The normal plan: pointer analysis decides; arrays keep their own
    memories wherever possible."""
    return plan_pointers(fn, enable_analysis=enable_pointer_analysis)


def monolithic_plan(fn: ast.FunctionDef) -> PointerPlan:
    """Force C's flat memory model: one RAM, one port, everything inside."""
    base_plan = plan_pointers(fn, enable_analysis=False)
    arrays = arrays_of(fn)
    objects: List[Symbol] = []
    seen: Set[Symbol] = set()
    for symbol in list(base_plan.in_memory) + arrays:
        if symbol not in seen:
            seen.add(symbol)
            objects.append(symbol)
    plan = PointerPlan(mode="unified")
    offset = 0
    for symbol in sorted(objects, key=lambda s: s.unique_name):
        plan.in_memory.add(symbol)
        plan.layout[symbol] = offset
        offset += symbol.type.size if isinstance(symbol.type, ArrayType) else 1
    plan.memory_size = max(offset, 1)
    plan.memory_symbol = Symbol(
        "__mem", ArrayType(IntType(32, signed=True), plan.memory_size),
        SymbolKind.LOCAL,
    )
    plan.stats = base_plan.stats
    return plan


@dataclass
class MemoryComparison:
    """One workload's E8 row."""

    workload: str
    partitioned_cycles: int
    monolithic_cycles: int
    partitioned_memories: int
    monolithic_words: int

    @property
    def slowdown(self) -> float:
        if self.partitioned_cycles == 0:
            return 1.0
        return self.monolithic_cycles / self.partitioned_cycles


def compare_memory_models(
    source: str,
    args=(),
    function: str = "main",
    clock_ns: float = 5.0,
) -> MemoryComparison:
    """Synthesize a program under both memory models and measure cycles."""
    from ..flows.scheduled import synthesize_fsmd_system
    from ..lang import parse
    from ..scheduling.resources import ResourceSet

    program, info = parse(source)
    results = {}
    metadata = {}
    for mode, factory in (
        ("partitioned", partitioned_plan),
        ("monolithic", monolithic_plan),
    ):
        design = synthesize_fsmd_system(
            program, info, function,
            flow_key=f"memory-{mode}",
            resources=ResourceSet.unlimited(),
            clock_ns=clock_ns,
            plan_override=factory,
        )
        run = design.run(args=args)
        results[mode] = run.cycles
        if mode == "partitioned":
            metadata["memories"] = sum(
                len(a.cdfg.arrays) for a in design.artifacts
            )
        else:
            metadata["words"] = sum(
                a.plan.memory_size for a in design.artifacts
            )
    return MemoryComparison(
        workload=function,
        partitioned_cycles=results["partitioned"],
        monolithic_cycles=results["monolithic"],
        partitioned_memories=metadata.get("memories", 0),
        monolithic_words=metadata.get("words", 0),
    )
