"""Program analyses: pointers/memory planning, ILP limits, dependences,
liveness, call graphs, and the synthesizability linter."""

from .callgraph import CallGraph, build_callgraph
from .dependence import BlockDependenceStats, block_stats, function_stats
from .ilp import ILPProfile, Trace, ilp, ilp_profile, trace_execution
from .liveness import LivenessInfo, analyze_liveness
from .memory import (
    MemoryComparison,
    arrays_of,
    compare_memory_models,
    monolithic_plan,
    partitioned_plan,
)
from .pointer import PointerPlan, PointerStats, plan_pointers

# The linter builds CDFGs, so importing it here eagerly would close a cycle
# (ir.builder imports analysis.pointer).  Re-export lazily instead; ``lint``
# resolves to the subpackage, whose ``lint()`` function is the entry point.
_LINT_EXPORTS = ("Diagnostic", "LintReport", "Severity", "lint", "lint_file")

# The time-sensitive tier compiles through the flows, so it is lazy too;
# ``timing`` resolves to the subpackage, the rest to its entry points.
_TIMING_EXPORTS = (
    "CheckOptions",
    "CheckRejected",
    "TimingObligations",
    "check",
    "check_file",
    "enforce",
    "obligations_for",
    "timing",
)


def __getattr__(name: str):
    if name in _LINT_EXPORTS:
        import importlib

        module = importlib.import_module(".lint", __name__)
        if name == "lint":
            return module
        return getattr(module, name)
    if name in _TIMING_EXPORTS:
        import importlib

        module = importlib.import_module(".timing", __name__)
        if name == "timing":
            return module
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CheckOptions",
    "CheckRejected",
    "Diagnostic",
    "LintReport",
    "Severity",
    "TimingObligations",
    "check",
    "check_file",
    "enforce",
    "lint",
    "lint_file",
    "obligations_for",
    "timing",
    "BlockDependenceStats",
    "CallGraph",
    "ILPProfile",
    "LivenessInfo",
    "MemoryComparison",
    "PointerPlan",
    "PointerStats",
    "Trace",
    "analyze_liveness",
    "arrays_of",
    "block_stats",
    "build_callgraph",
    "compare_memory_models",
    "function_stats",
    "ilp",
    "ilp_profile",
    "monolithic_plan",
    "partitioned_plan",
    "plan_pointers",
    "trace_execution",
]
