"""Program analyses: pointers/memory planning, ILP limits, dependences,
liveness, and call graphs."""

from .callgraph import CallGraph, build_callgraph
from .dependence import BlockDependenceStats, block_stats, function_stats
from .ilp import ILPProfile, Trace, ilp, ilp_profile, trace_execution
from .liveness import LivenessInfo, analyze_liveness
from .memory import (
    MemoryComparison,
    arrays_of,
    compare_memory_models,
    monolithic_plan,
    partitioned_plan,
)
from .pointer import PointerPlan, PointerStats, plan_pointers

__all__ = [
    "BlockDependenceStats",
    "CallGraph",
    "ILPProfile",
    "LivenessInfo",
    "MemoryComparison",
    "PointerPlan",
    "PointerStats",
    "Trace",
    "analyze_liveness",
    "arrays_of",
    "block_stats",
    "build_callgraph",
    "compare_memory_models",
    "function_stats",
    "ilp",
    "ilp_profile",
    "monolithic_plan",
    "partitioned_plan",
    "plan_pointers",
    "trace_execution",
]
