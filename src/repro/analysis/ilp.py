"""Instruction-level parallelism limit study (Wall, ASPLOS 1991 style).

The paper: *"Now the preferred approach in the computer architecture
community, it seems that ILP beyond about five simultaneous instructions is
unlikely due to fundamental limits [Wall]."*

This module reproduces the experiment's method on our workloads: execute a
program once to obtain its **dynamic operation trace** with exact
dependences (flow dependences through registers and wires, plus
address-exact memory dependences — the "perfect disambiguation" oracle),
then replay the trace under different machine idealizations:

* ``control='perfect'`` — branches predicted perfectly: only data
  dependences constrain issue (Wall's upper-bound oracle);
* ``control='real'`` — no speculation: an operation cannot issue before the
  branch that decided its basic block resolved (the basic-block-limited
  model the paper contrasts with);

and under a finite **instruction window**: each cycle the scheduler may
issue only ready operations among the next W un-issued ones in program
order.  ILP(W) rises with W and flattens into the plateau the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.machine import eval_binary, eval_unary, wrap
from ..lang.errors import InterpError
from ..lang.symtab import Symbol
from ..lang.types import ArrayType
from ..ir.cdfg import FunctionCDFG
from ..ir.ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg, VarRead


@dataclass
class DynamicOp:
    """One executed operation instance."""

    index: int
    kind: str
    data_deps: List[int] = field(default_factory=list)
    control_dep: Optional[int] = None  # branch instance gating this op


@dataclass
class Trace:
    ops: List[DynamicOp] = field(default_factory=list)
    value: Optional[int] = None

    def __len__(self) -> int:
        return len(self.ops)


class _TraceExecutor:
    """Runs a CDFG, recording per-instance dependences."""

    def __init__(
        self,
        cdfg: FunctionCDFG,
        args: Sequence[int],
        register_init: Optional[Dict[Symbol, int]] = None,
        memory_init: Optional[Dict[Symbol, List[int]]] = None,
        max_ops: int = 400_000,
    ):
        self.cdfg = cdfg
        self.max_ops = max_ops
        self.registers: Dict[Symbol, int] = {s: 0 for s in cdfg.registers}
        self.reg_producer: Dict[Symbol, int] = {}
        self.memories: Dict[Symbol, List[int]] = {}
        self.mem_producer: Dict[Tuple[str, int], int] = {}  # (mem, addr) -> store
        for array in cdfg.arrays:
            assert isinstance(array.type, ArrayType)
            self.memories[array] = [0] * array.type.size
        if register_init:
            for symbol, value in register_init.items():
                self.registers[symbol] = wrap(value, symbol.type)
        if memory_init:
            for symbol, values in memory_init.items():
                words = self.memories.setdefault(symbol, [0] * len(values))
                for i, v in enumerate(values):
                    words[i] = v
        scalar_params = [p for p in cdfg.params if not isinstance(p.type, ArrayType)]
        if len(args) != len(scalar_params):
            raise InterpError(
                f"{cdfg.name} expects {len(scalar_params)} arguments,"
                f" got {len(args)}"
            )
        for symbol, value in zip(scalar_params, args):
            self.registers[symbol] = wrap(value, symbol.type)
        self.trace = Trace()
        self.last_branch: Optional[int] = None

    def _record(self, kind: str, deps: List[int]) -> int:
        index = len(self.trace.ops)
        if index >= self.max_ops:
            raise InterpError(f"trace budget of {self.max_ops} ops exceeded")
        self.trace.ops.append(
            DynamicOp(
                index=index,
                kind=kind,
                data_deps=sorted(set(d for d in deps if d >= 0)),
                control_dep=self.last_branch,
            )
        )
        return index

    def run(self) -> Trace:
        block = self.cdfg.entry
        assert block is not None
        while True:
            values: Dict[VReg, int] = {}
            producers: Dict[VReg, int] = {}
            entry_registers = dict(self.registers)
            entry_producers = dict(self.reg_producer)

            def read(operand: Operand) -> Tuple[int, int]:
                """(value, producing instance or -1)."""
                if isinstance(operand, Const):
                    return operand.value, -1
                if isinstance(operand, VarRead):
                    return (
                        entry_registers.get(operand.var, 0),
                        entry_producers.get(operand.var, -1),
                    )
                return values[operand], producers[operand]

            for op in block.ops:
                reads = [read(o) for o in op.operands]
                deps = [p for _, p in reads]
                vals = [v for v, _ in reads]
                if op.kind is OpKind.BINARY:
                    assert op.dest is not None
                    result = eval_binary(op.op, vals[0], vals[1], op.dest.type)
                elif op.kind is OpKind.UNARY:
                    assert op.dest is not None
                    result = eval_unary(op.op, vals[0], op.dest.type)
                elif op.kind is OpKind.CAST:
                    assert op.dest is not None
                    result = wrap(vals[0], op.dest.type)
                elif op.kind is OpKind.SELECT:
                    assert op.dest is not None
                    result = wrap(vals[1] if vals[0] else vals[2], op.dest.type)
                elif op.kind is OpKind.LOAD:
                    assert op.dest is not None and op.array is not None
                    memory = self.memories[op.array]
                    address = vals[0]
                    if not 0 <= address < len(memory):
                        raise InterpError("out-of-bounds load in trace")
                    result = memory[address]
                    deps.append(
                        self.mem_producer.get((op.array.unique_name, address), -1)
                    )
                elif op.kind is OpKind.STORE:
                    assert op.array is not None
                    memory = self.memories[op.array]
                    address = vals[0]
                    if not 0 <= address < len(memory):
                        raise InterpError("out-of-bounds store in trace")
                    memory[address] = vals[1]
                    index = self._record("store", deps)
                    self.mem_producer[(op.array.unique_name, address)] = index
                    continue
                elif op.kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.NOP):
                    continue
                else:
                    raise InterpError(f"trace cannot execute {op.kind}")
                index = self._record(op.kind.value, deps)
                if op.dest is not None:
                    values[op.dest] = result
                    producers[op.dest] = index
            # Latch registers (copies are free: producer flows through).
            latched = []
            for var, value in block.var_writes.items():
                raw, producer = read(value)
                latched.append((var, wrap(raw, var.type), producer))
            for var, raw, producer in latched:
                self.registers[var] = raw
                self.reg_producer[var] = producer
            terminator = block.terminator
            if isinstance(terminator, Jump):
                block = terminator.target
            elif isinstance(terminator, Branch):
                cond_value, cond_producer = read(terminator.cond)
                branch_index = self._record(
                    "branch", [cond_producer]
                )
                self.last_branch = branch_index
                block = terminator.if_true if cond_value else terminator.if_false
            elif isinstance(terminator, Ret):
                if terminator.value is not None:
                    raw, _ = read(terminator.value)
                    self.trace.value = (
                        wrap(raw, self.cdfg.return_type)
                        if self.cdfg.return_type.bit_width
                        else raw
                    )
                return self.trace
            else:
                raise InterpError(f"{block.label} has no terminator")


def trace_execution(
    cdfg: FunctionCDFG,
    args: Sequence[int] = (),
    register_init: Optional[Dict[Symbol, int]] = None,
    memory_init: Optional[Dict[Symbol, List[int]]] = None,
    max_ops: int = 400_000,
) -> Trace:
    """Execute once and return the dynamic dependence trace."""
    return _TraceExecutor(
        cdfg, args, register_init, memory_init, max_ops
    ).run()


def _issue_times(
    trace: Trace, window: Optional[int], control: str
) -> Tuple[int, List[int]]:
    """Greedy issue: each cycle, issue every ready op within the window.
    Returns (cycles, per-op issue time)."""
    n = len(trace.ops)
    if n == 0:
        return 1, []
    issue = [-1] * n
    next_unissued = 0
    cycle = 0
    guard = 0
    while next_unissued < n:
        guard += 1
        if guard > 4 * n + 16:
            raise RuntimeError("issue simulation failed to make progress")
        limit = n if window is None else min(n, next_unissued + window)
        issued_any = False
        for i in range(next_unissued, limit):
            if issue[i] >= 0:
                continue
            ready = True
            for dep in trace.ops[i].data_deps:
                if issue[dep] < 0 or issue[dep] >= cycle:
                    ready = False
                    break
            if ready and control == "real":
                gate = trace.ops[i].control_dep
                if gate is not None and (issue[gate] < 0 or issue[gate] >= cycle):
                    ready = False
            if ready:
                issue[i] = cycle
                issued_any = True
        while next_unissued < n and issue[next_unissued] >= 0:
            next_unissued += 1
        cycle += 1
        if not issued_any and next_unissued < n:
            continue  # dependences resolve next cycle
    return cycle, issue


def ilp(trace: Trace, window: Optional[int] = None, control: str = "perfect") -> float:
    """Average instructions per cycle under the given idealization."""
    if len(trace) == 0:
        return 0.0
    cycles, _ = _issue_times(trace, window, control)
    return len(trace) / max(cycles, 1)


@dataclass
class ILPProfile:
    """The E2 curve for one workload."""

    workload: str
    trace_length: int
    dataflow_limit: float                  # perfect control, infinite window
    no_speculation_limit: float            # real control, infinite window
    by_window: Dict[int, float] = field(default_factory=dict)   # perfect control


def ilp_profile(
    name: str,
    cdfg: FunctionCDFG,
    args: Sequence[int] = (),
    windows: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
    register_init: Optional[Dict[Symbol, int]] = None,
    memory_init: Optional[Dict[Symbol, List[int]]] = None,
) -> ILPProfile:
    """The full ILP study for one compiled workload."""
    trace = trace_execution(cdfg, args, register_init, memory_init)
    profile = ILPProfile(
        workload=name,
        trace_length=len(trace),
        dataflow_limit=ilp(trace, None, "perfect"),
        no_speculation_limit=ilp(trace, None, "real"),
    )
    for window in windows:
        profile.by_window[window] = ilp(trace, window, "perfect")
    return profile
