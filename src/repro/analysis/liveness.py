"""Variable liveness across CDFG blocks.

Classic backward dataflow: a variable is live-in to a block if the block
reads it before (re)writing it, or it flows out to a successor that needs
it.  Used to report register pressure — how many architectural registers a
design really needs at once — and to sanity-check allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from ..lang.symtab import Symbol
from ..ir.cdfg import BasicBlock, FunctionCDFG
from ..ir.ops import Branch, Ret, VarRead


def _block_uses(block: BasicBlock) -> Set[Symbol]:
    """Variables whose block-entry value the block observes (VarRead is
    always the entry value in this IR, so every read is an upward use)."""
    uses: Set[Symbol] = set()
    for op in block.ops:
        for operand in op.operands:
            if isinstance(operand, VarRead):
                uses.add(operand.var)
    terminator = block.terminator
    if isinstance(terminator, Branch) and isinstance(terminator.cond, VarRead):
        uses.add(terminator.cond.var)
    elif isinstance(terminator, Ret) and isinstance(terminator.value, VarRead):
        uses.add(terminator.value.var)
    for value in block.var_writes.values():
        if isinstance(value, VarRead):
            uses.add(value.var)
    return uses


@dataclass
class LivenessInfo:
    live_in: Dict[int, Set[Symbol]] = field(default_factory=dict)
    live_out: Dict[int, Set[Symbol]] = field(default_factory=dict)

    def pressure(self) -> int:
        """Peak number of simultaneously live variables at block borders."""
        peak = 0
        for live in list(self.live_in.values()) + list(self.live_out.values()):
            peak = max(peak, len(live))
        return peak


def analyze_liveness(cdfg: FunctionCDFG) -> LivenessInfo:
    """Iterative backward liveness to a fixed point."""
    blocks = cdfg.reachable_blocks()
    uses = {b.id: _block_uses(b) for b in blocks}
    defs = {b.id: set(b.var_writes) for b in blocks}
    info = LivenessInfo(
        live_in={b.id: set() for b in blocks},
        live_out={b.id: set() for b in blocks},
    )
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out: Set[Symbol] = set()
            for successor in block.successors():
                out |= info.live_in.get(successor.id, set())
            new_in = uses[block.id] | (out - defs[block.id])
            if out != info.live_out[block.id] or new_in != info.live_in[block.id]:
                info.live_out[block.id] = out
                info.live_in[block.id] = new_in
                changed = True
    return info
