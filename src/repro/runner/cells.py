"""The matrix cell model: one (workload, flow) pair in, one verdict out.

A *cell* is the unit the whole reproduction is built from — compile one
program with one flow, simulate it, and compare against the reference C
interpreter.  :class:`CellTask` describes the work and :class:`CellResult`
the outcome; both are plain data so they cross process boundaries (the
parallel engine) and survive on disk (the artifact cache) unchanged.

``CellResult.identity()`` is the determinism contract: serial, parallel,
and cache-replayed execution of the same task must produce identical
identities.  Wall-clock time and the cached flag are the only fields
excluded — they describe *how* the cell was obtained, not *what* it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

# Bumped whenever the on-disk result layout changes; stale cache entries
# are treated as misses rather than migrated.  v3: the default opt_level
# moved from the (renumbered) fixed-point pipeline to level 1, and level 2
# now selects the liveness-driven fixpoint mid-end.
SCHEMA_VERSION = 3

# Verdicts, from best to worst.
OK = "ok"                # compiled, simulated, observables match the golden model
MISMATCH = "mismatch"    # compiled and ran but disagrees with the interpreter
REJECTED = "rejected"    # the historical tool's restrictions reject the program
ERROR = "error"          # the flow raised something other than a FlowError
TIMEOUT = "timeout"      # the per-cell deadline expired

VERDICTS = (OK, MISMATCH, REJECTED, ERROR, TIMEOUT)

# Verdicts that are deterministic functions of the task and may be replayed
# from the cache.  Errors and timeouts are recomputed every run: an error
# may be a transient environment problem and a timeout depends on the host.
CACHEABLE_VERDICTS = (OK, MISMATCH, REJECTED)

# Verdicts that should fail a sweep.  A rejection is the paper's expected
# behaviour (Table 1's restrictions working as documented); anything else
# means the reproduction itself broke.
UNEXPECTED_VERDICTS = (MISMATCH, ERROR, TIMEOUT)


def canonical_observable(obs) -> object:
    """Normalize an observable tuple to the JSON-stable nested-list form.

    Both :meth:`FlowResult.observable` and the interpreter's
    :meth:`ExecutionResult.observable` return nested tuples; JSON
    round-trips turn tuples into lists, so everything is canonicalized to
    lists before comparison or storage."""
    if isinstance(obs, (tuple, list)):
        return [canonical_observable(item) for item in obs]
    return obs


@dataclass(frozen=True)
class CellTask:
    """One (workload, flow) compile-and-simulate request."""

    workload: str
    source: str
    flow: str
    function: str = "main"
    args: Tuple[int, ...] = ()
    # Flow compile() keyword options as a sorted tuple of pairs so the task
    # is hashable and its cache key is order-independent.
    options: Tuple[Tuple[str, object], ...] = ()
    # FSMD simulation engine ("interp", "compiled", or "batched").  Part
    # of the cache key: all backends must produce identical results, and
    # keeping their artifacts distinct is what lets a sweep prove it.
    # "batched" additionally lets the engine coalesce cells that share
    # (source, flow, function, options) into one lockstep batch.
    sim_backend: str = "interp"
    # Run the time-sensitive checker before compiling (the serving layer's
    # cacheable request flag).  Already part of SynthesisOptions.identity()
    # — the default False leaves every existing cache key unchanged.
    check: bool = False

    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    @staticmethod
    def make_options(options: Optional[Dict[str, object]]) -> Tuple:
        return tuple(sorted((options or {}).items()))

    def synthesis_options(self):
        """This task's option set as a :class:`repro.api.SynthesisOptions`.

        ``opt_level`` rides inside the legacy ``options`` tuple for
        constructor compatibility; here it is lifted into its proper
        field and everything else becomes ``flow_options``."""
        from ..api import DEFAULT_OPT_LEVEL, SynthesisOptions

        extra = self.options_dict()
        opt_level = extra.pop("opt_level", DEFAULT_OPT_LEVEL)
        return SynthesisOptions(
            flow=self.flow,
            function=self.function,
            sim_backend=self.sim_backend,
            opt_level=int(opt_level),  # type: ignore[arg-type]
            check=self.check,
            flow_options=self.make_options(extra),
        )

    @classmethod
    def from_options(cls, workload: str, source: str, options,
                     args: Tuple[int, ...] = ()) -> "CellTask":
        """Build a task from a :class:`repro.api.SynthesisOptions`."""
        from ..api import DEFAULT_OPT_LEVEL

        extra = dict(options.flow_options)
        if options.opt_level != DEFAULT_OPT_LEVEL:
            extra["opt_level"] = options.opt_level
        return cls(
            workload=workload,
            source=source,
            flow=options.flow,
            function=options.function,
            args=tuple(args),
            options=cls.make_options(extra),
            sim_backend=options.sim_backend,
            check=options.check,
        )

    def identity(self) -> Dict[str, object]:
        """The JSON-stable content the cache key is built from.  Derived
        from :meth:`SynthesisOptions.identity` so the cache key cannot
        drift from the real option set (tracing is excluded there:
        traced and untraced runs share artifacts)."""
        identity = self.synthesis_options().identity()
        identity["args"] = list(self.args)
        return identity


@dataclass
class CellResult:
    """What one cell produced, in plain serializable data."""

    workload: str
    flow: str
    function: str = "main"
    args: Tuple[int, ...] = ()
    sim_backend: str = "interp"
    verdict: str = ERROR
    value: Optional[int] = None
    cycles: int = 0
    clock_ns: float = 0.0
    latency_ns: float = 0.0
    area_ge: float = 0.0
    rtl_hash: str = ""
    observable: object = None          # canonical nested-list form
    diagnostics: List[str] = field(default_factory=list)
    rule: str = ""                     # lint rule id for rejections
    cache_key: str = ""
    wall_s: float = 0.0                # excluded from identity
    cached: bool = False               # excluded from identity
    # Serialized TraceContext dict (``TraceContext.to_dict()``) when the
    # cell ran with tracing; stored next to the cached artifact so warm
    # runs still report where the time went when the cell was computed.
    trace: Optional[Dict[str, object]] = None
    # SimProfile.coverage_stats() when the cell ran with coverage capture
    # ({} for cells whose sim never ran, None when capture was off).  Like
    # trace, it observes the run rather than defining it, so it lives in
    # provenance — coverage-on and coverage-off runs share identities and
    # cache entries written either way stay compatible.
    sim_stats: Optional[Dict[str, object]] = None

    # Fields describing how the result was obtained rather than what it is
    # (cache_key is empty when caching is off, so it is provenance too;
    # the trace records durations, which vary run to run).
    _PROVENANCE = ("wall_s", "cached", "cache_key", "trace", "sim_stats")

    @property
    def ok(self) -> bool:
        return self.verdict == OK

    @property
    def unexpected(self) -> bool:
        return self.verdict in UNEXPECTED_VERDICTS

    def identity(self) -> Dict[str, object]:
        """The deterministic content of the result — every field except
        provenance.  Serial, parallel, and cached runs must agree on it."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in self._PROVENANCE
        }

    def to_dict(self) -> Dict[str, object]:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["args"] = list(self.args)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellResult":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["args"] = tuple(kwargs.get("args", ()))
        kwargs["diagnostics"] = list(kwargs.get("diagnostics", ()))
        return cls(**kwargs)

    def note(self, width: int = 44) -> str:
        """The short human-facing annotation for table cells."""
        if self.diagnostics:
            return self.diagnostics[0][:width]
        return ""
