"""Parallel, content-addressed matrix execution.

The runner is the one code path through which every consumer — the CLI's
``matrix`` and ``sweep`` commands, the T2 benchmark, the differential
co-simulation suite, and the lint cross-validation tests — executes the
workload × flow matrix.  See :mod:`repro.runner.engine` for the execution
model and :mod:`repro.runner.cache` for the artifact cache.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    ArtifactCache,
    CacheStats,
    PruneReport,
    cell_key,
    environment_salt,
    normalized_source,
)
from .cells import (
    CACHEABLE_VERDICTS,
    ERROR,
    MISMATCH,
    OK,
    REJECTED,
    TIMEOUT,
    UNEXPECTED_VERDICTS,
    VERDICTS,
    CellResult,
    CellTask,
    canonical_observable,
)
from .engine import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_TIMEOUT_S,
    MatrixEngine,
    execute_batch,
    execute_cell,
    file_tasks,
    suite_tasks,
)

__all__ = [
    "ArtifactCache",
    "CACHEABLE_VERDICTS",
    "CacheStats",
    "CellResult",
    "CellTask",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_CYCLES",
    "DEFAULT_TIMEOUT_S",
    "ERROR",
    "MISMATCH",
    "MatrixEngine",
    "OK",
    "PruneReport",
    "REJECTED",
    "TIMEOUT",
    "UNEXPECTED_VERDICTS",
    "VERDICTS",
    "canonical_observable",
    "cell_key",
    "environment_salt",
    "execute_batch",
    "execute_cell",
    "file_tasks",
    "normalized_source",
    "suite_tasks",
]
