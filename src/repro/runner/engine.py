"""The matrix execution engine.

One engine runs any set of (workload, flow) cells three ways with
identical results:

* **serial** (``jobs=1``) — in-process, the reference mode;
* **parallel** (``jobs>1``) — a ``concurrent.futures`` process pool with
  per-cell deadlines and crash isolation: a cell that raises becomes an
  ``error`` verdict, a cell that exceeds its deadline becomes ``timeout``,
  and a cell that kills its worker outright is retried in a one-shot pool
  so the rest of the sweep survives;
* **cached** — cells whose content address (see :mod:`.cache`) is already
  on disk replay from the artifact cache without recompiling.

Every cell compares the flow's simulated observables (return value,
globals, channel logs) against the reference C interpreter, so the sweep
is simultaneously a differential co-simulation of all flows.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cache import ArtifactCache, cell_key, environment_salt
from .cells import (
    ERROR,
    MISMATCH,
    OK,
    REJECTED,
    TIMEOUT,
    CellResult,
    CellTask,
    canonical_observable,
)

DEFAULT_TIMEOUT_S = 60.0
DEFAULT_MAX_CYCLES = 2_000_000


class CellTimeout(Exception):
    """Raised inside a worker when the per-cell deadline expires."""


class _Deadline:
    """SIGALRM-based per-cell deadline (POSIX main thread only; elsewhere
    the simulator's ``max_cycles`` bound is the only backstop)."""

    def __init__(self, seconds: float):
        self.seconds = seconds
        self.armed = False

    def __enter__(self):
        usable = (
            self.seconds > 0
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        if usable:
            self._previous = signal.signal(signal.SIGALRM, self._fire)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self.armed = True
        return self

    def __exit__(self, *exc):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False

    @staticmethod
    def _fire(signum, frame):
        raise CellTimeout()


def execute_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Compile, simulate, and judge one cell.  Module-level and dict-in /
    dict-out so it pickles across the process pool unchanged.

    ``payload`` carries the :class:`CellTask` fields plus ``expected`` (the
    golden model's canonical observable, or None when the reference
    interpreter could not run the program), ``timeout_s``, ``max_cycles``,
    ``cache_key``, and ``trace`` (record phase spans into the result)."""
    import hashlib

    from ..api import synthesize
    from ..flows import FlowError
    from ..trace import TraceContext

    task = CellTask(
        workload=payload["workload"],
        source=payload["source"],
        flow=payload["flow"],
        function=payload.get("function", "main"),
        args=tuple(payload.get("args", ())),
        options=tuple((k, v) for k, v in payload.get("options", ())),
        sim_backend=str(payload.get("sim_backend", "interp")),
        check=bool(payload.get("check", False)),
    )
    result = CellResult(
        workload=task.workload,
        flow=task.flow,
        function=task.function,
        args=task.args,
        sim_backend=task.sim_backend,
        cache_key=str(payload.get("cache_key", "")),
    )
    trace = None
    if payload.get("trace"):
        trace = TraceContext(name=f"{task.workload}:{task.flow}")
    profile = None
    if payload.get("coverage"):
        from ..sim.profile import SimProfile

        profile = SimProfile()
    expected = payload.get("expected")
    start = time.perf_counter()
    try:
        with _Deadline(float(payload.get("timeout_s", 0.0))):
            compiled = synthesize(
                task.source, task.synthesis_options(), trace=trace
            )
            run = compiled.run(
                args=task.args,
                max_cycles=int(payload.get("max_cycles", DEFAULT_MAX_CYCLES)),
                sim_profile=profile,
            )
            cost = compiled.cost()
            try:
                rtl = compiled.verilog()
            except NotImplementedError:
                rtl = ""
    except FlowError as rejection:
        result.verdict = REJECTED
        result.rule = rejection.rule
        result.diagnostics = [rejection.reason]
    except CellTimeout:
        result.verdict = TIMEOUT
        result.diagnostics = [
            f"cell exceeded its {payload.get('timeout_s')}s deadline"
        ]
    except Exception:
        result.verdict = ERROR
        result.diagnostics = traceback.format_exc().strip().splitlines()[-3:]
    else:
        observable = canonical_observable(run.observable())
        result.value = run.value
        result.cycles = run.cycles
        result.clock_ns = cost.clock_ns
        result.latency_ns = (
            run.cycles * cost.clock_ns if cost.clock_ns > 0 else run.time_ns
        )
        result.area_ge = cost.area_ge
        result.rtl_hash = (
            hashlib.sha256(rtl.encode()).hexdigest()[:16] if rtl else ""
        )
        result.observable = observable
        if expected is not None and observable != expected:
            result.verdict = MISMATCH
            result.diagnostics = [
                f"observables diverge from golden model: value "
                f"{run.value} vs {expected[0] if expected else '?'}"
            ]
        else:
            result.verdict = OK
    if trace is not None:
        # Rejections keep their partial trace too: the spans up to the
        # rejecting phase show where the flow said no.
        result.trace = trace.to_dict()
    if profile is not None:
        # {} (not None) when the sim never ran, so coverage-aware cache
        # readers can tell "captured, empty" from "never captured".
        result.sim_stats = (
            profile.coverage_stats()
            if result.verdict in (OK, MISMATCH) else {}
        )
    result.wall_s = time.perf_counter() - start
    return result.to_dict()


def execute_batch(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Compile once, simulate every lane, judge each like a scalar cell.

    The batched counterpart of :func:`execute_cell`: cells that share
    ``(source, flow, function, options)`` but differ in inputs coalesce
    into one payload carrying a ``lanes`` list (each lane a dict of
    ``workload`` / ``args`` / ``expected`` / ``cache_key``).  One
    synthesis, one ``run_batch``, one cost/Verilog pass; per-lane sim
    errors become per-lane ``error`` verdicts with the scalar backend's
    exact message instead of poisoning the batch.  Returns one result
    dict per lane, in lane order."""
    import hashlib

    from ..api import synthesize
    from ..flows import FlowError
    from ..trace import TraceContext

    lanes: List[Dict[str, object]] = list(payload["lanes"])  # type: ignore
    task = CellTask(
        workload=str(lanes[0]["workload"]) if lanes else "batch",
        source=payload["source"],
        flow=payload["flow"],
        function=payload.get("function", "main"),
        args=tuple(lanes[0].get("args", ())) if lanes else (),
        options=tuple((k, v) for k, v in payload.get("options", ())),
        sim_backend=str(payload.get("sim_backend", "interp")),
    )
    results = [
        CellResult(
            workload=str(lane["workload"]),
            flow=task.flow,
            function=task.function,
            args=tuple(lane.get("args", ())),
            sim_backend=task.sim_backend,
            cache_key=str(lane.get("cache_key", "")),
        )
        for lane in lanes
    ]
    trace = None
    if payload.get("trace"):
        trace = TraceContext(name=f"{task.workload}:{task.flow}")
    profile = None
    if payload.get("coverage"):
        from ..sim.profile import SimProfile

        profile = SimProfile()
    timeout_s = float(payload.get("timeout_s", 0.0))
    start = time.perf_counter()
    try:
        # The whole batch gets the sum of its lanes' deadlines: one slow
        # lane cannot eat the others' budget share.
        with _Deadline(timeout_s * max(len(lanes), 1)):
            compiled = synthesize(
                task.source, task.synthesis_options(), trace=trace
            )
            outcomes = compiled.run_batch(
                [tuple(lane.get("args", ())) for lane in lanes],
                max_cycles=int(payload.get("max_cycles", DEFAULT_MAX_CYCLES)),
                sim_profile=profile,
            )
            cost = compiled.cost()
            try:
                rtl = compiled.verilog()
            except NotImplementedError:
                rtl = ""
    except FlowError as rejection:
        for result in results:
            result.verdict = REJECTED
            result.rule = rejection.rule
            result.diagnostics = [rejection.reason]
    except CellTimeout:
        for result in results:
            result.verdict = TIMEOUT
            result.diagnostics = [
                f"cell exceeded its {payload.get('timeout_s')}s deadline"
            ]
    except Exception:
        diagnostics = traceback.format_exc().strip().splitlines()[-3:]
        for result in results:
            result.verdict = ERROR
            result.diagnostics = list(diagnostics)
    else:
        rtl_hash = (
            hashlib.sha256(rtl.encode()).hexdigest()[:16] if rtl else ""
        )
        for result, outcome, lane in zip(results, outcomes, lanes):
            if not outcome.ok:
                result.verdict = ERROR
                result.diagnostics = [
                    f"{outcome.error_kind}: {outcome.error}"
                ]
                continue
            run = outcome.result
            observable = canonical_observable(run.observable())
            result.value = run.value
            result.cycles = run.cycles
            result.clock_ns = cost.clock_ns
            result.latency_ns = (
                run.cycles * cost.clock_ns if cost.clock_ns > 0
                else run.time_ns
            )
            result.area_ge = cost.area_ge
            result.rtl_hash = rtl_hash
            result.observable = observable
            expected = lane.get("expected")
            if expected is not None and observable != expected:
                result.verdict = MISMATCH
                result.diagnostics = [
                    f"observables diverge from golden model: value "
                    f"{run.value} vs {expected[0] if expected else '?'}"
                ]
            else:
                result.verdict = OK
    wall_s = (time.perf_counter() - start) / max(len(lanes), 1)
    # The batch shares one profile (lanes run lockstep through one
    # design), so every simulated lane reports the batch-level stats.
    stats = None
    if profile is not None:
        stats = profile.coverage_stats() if profile.state_visits else {}
    for result in results:
        if trace is not None:
            result.trace = trace.to_dict()
        if profile is not None:
            result.sim_stats = (
                stats if result.verdict in (OK, MISMATCH) else {}
            )
        result.wall_s = wall_s
    return [result.to_dict() for result in results]


def _crash_result(payload: Dict[str, object]):
    if "lanes" in payload:
        crashed = []
        for lane in payload["lanes"]:  # type: ignore[union-attr]
            merged = {**payload, **lane}
            merged.pop("lanes", None)
            crashed.append(_crash_result(merged))
        return crashed
    result = CellResult(
        workload=str(payload["workload"]),
        flow=str(payload["flow"]),
        function=str(payload.get("function", "main")),
        args=tuple(payload.get("args", ())),
        sim_backend=str(payload.get("sim_backend", "interp")),
        verdict=ERROR,
        diagnostics=["worker process died while executing this cell"],
        cache_key=str(payload.get("cache_key", "")),
    )
    return result.to_dict()


class MatrixEngine:
    """Runs cell sets serially, in parallel, and through the cache.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs in-process.
    cache:
        An :class:`ArtifactCache`, or None to disable caching.
    timeout_s / max_cycles:
        Per-cell wall-clock deadline and simulation bound.
    worker:
        The cell executor (module-level callable, dict→dict).  Tests
        substitute crashing/slow workers to exercise isolation paths.
    batch_worker:
        The batch executor (dict→list-of-dicts) used for coalesced
        ``sim_backend="batched"`` cells; see :func:`execute_batch`.
    trace:
        Record phase spans for every cell.  Traces ride inside the
        ``CellResult`` (and its cache entry), so a warm re-run still
        reports where each cell's time went; a cache hit written
        *without* a trace is treated as a miss so the stats exist.
    coverage:
        Capture each cell's :meth:`SimProfile.coverage_stats` alongside
        the result (the fuzz campaign's coverage signal).  Same cache
        contract as ``trace``: hits written without stats recompute.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ArtifactCache] = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        worker: Callable[[Dict[str, object]], Dict[str, object]] = execute_cell,
        trace: bool = False,
        batch_worker: Callable[
            [Dict[str, object]], List[Dict[str, object]]
        ] = execute_batch,
        coverage: bool = False,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_cycles = max_cycles
        self.worker = worker
        self.batch_worker = batch_worker
        self.trace = bool(trace)
        self.coverage = bool(coverage)
        self._salt = environment_salt()
        self._golden: Dict[Tuple[str, str, Tuple[int, ...]], Optional[list]] = {}
        # source -> parsed (program, info), or None when unparseable.
        # Parsing dominates the golden model's cost (~12x the actual
        # interpretation on suite kernels), so batches of lanes over one
        # program must not re-parse per lane.
        self._parsed: Dict[str, Optional[tuple]] = {}

    # -- golden model -----------------------------------------------------

    def _parsed_source(self, source: str) -> Optional[tuple]:
        if source not in self._parsed:
            from ..lang import parse

            try:
                self._parsed[source] = parse(source)
            except Exception:
                self._parsed[source] = None
        return self._parsed[source]

    def golden_observable(self, task: CellTask) -> Optional[list]:
        """The reference interpreter's canonical observable for the task's
        program and inputs, memoized per (source, function, args); None when
        the interpreter itself cannot run the program (the flows will then
        report their own rejections).  The parse is memoized separately per
        source, so many-lane batches pay it once."""
        key = (task.source, task.function, task.args)
        if key not in self._golden:
            from ..interp import run_program

            parsed = self._parsed_source(task.source)
            if parsed is None:
                self._golden[key] = None
            else:
                try:
                    golden = run_program(
                        parsed[0], parsed[1], task.function, task.args
                    )
                except Exception:
                    self._golden[key] = None
                else:
                    self._golden[key] = canonical_observable(
                        golden.observable()
                    )
        return self._golden[key]

    # -- execution --------------------------------------------------------

    def _payload(self, task: CellTask, key: str) -> Dict[str, object]:
        return {
            "workload": task.workload,
            "source": task.source,
            "flow": task.flow,
            "function": task.function,
            "args": list(task.args),
            "options": [list(pair) for pair in task.options],
            "sim_backend": task.sim_backend,
            "check": task.check,
            "expected": self.golden_observable(task),
            "timeout_s": self.timeout_s,
            "max_cycles": self.max_cycles,
            "cache_key": key,
            "trace": self.trace,
            "coverage": self.coverage,
        }

    def _lane_entry(self, task: CellTask, key: str) -> Dict[str, object]:
        return {
            "workload": task.workload,
            "args": list(task.args),
            "expected": self.golden_observable(task),
            "cache_key": key,
        }

    def _batch_payload(self, task: CellTask) -> Dict[str, object]:
        return {
            "source": task.source,
            "flow": task.flow,
            "function": task.function,
            "options": [list(pair) for pair in task.options],
            "sim_backend": task.sim_backend,
            "timeout_s": self.timeout_s,
            "max_cycles": self.max_cycles,
            "trace": self.trace,
            "coverage": self.coverage,
            "lanes": [],
        }

    def run_cells(self, tasks: Sequence[CellTask]) -> List[CellResult]:
        """Execute every task, preserving order; cache hits replay from
        disk and fresh deterministic results are written back.

        Cells with ``sim_backend="batched"`` that share
        ``(source, flow, function, options)`` but differ in inputs
        coalesce into one batch payload (even a single such cell runs as
        a one-lane batch, so batch-of-1 and batch-of-K take the same
        code path); cache hits still replay per lane."""
        results: List[Optional[CellResult]] = [None] * len(tasks)
        pending: List[Tuple[object, Dict[str, object]]] = []
        batch_groups: Dict[tuple, int] = {}
        for index, task in enumerate(tasks):
            key = cell_key(task, salt=self._salt) if self.cache is not None else ""
            if self.cache is not None:
                start = time.perf_counter()
                hit = self.cache.load(key)
                # An entry written by an untraced run has no phase stats to
                # report; when tracing, recompute it so the stored artifact
                # gains a trace and later warm runs can replay it.
                if hit is not None and self.trace and hit.trace is None:
                    hit = None
                # Same contract for coverage capture: a hit written without
                # sim stats recomputes so the coverage signal exists.
                if hit is not None and self.coverage and hit.sim_stats is None:
                    hit = None
                if hit is not None:
                    hit.wall_s = time.perf_counter() - start
                    # The key excludes the display label (identical sources
                    # share artifacts), so relabel from the current task.
                    hit.workload = task.workload
                    results[index] = hit
                    continue
            if task.sim_backend == "batched":
                group = (task.source, task.flow, task.function, task.options)
                position = batch_groups.get(group)
                if position is None:
                    position = len(pending)
                    batch_groups[group] = position
                    pending.append(([], self._batch_payload(task)))
                pending[position][0].append(index)  # type: ignore[union-attr]
                pending[position][1]["lanes"].append(  # type: ignore[index]
                    self._lane_entry(task, key)
                )
                continue
            pending.append((index, self._payload(task, key)))
        # Freeze batch index lists into hashable tuples (the pool's
        # bookkeeping puts the index side of each entry in a set).
        pending = [
            (tuple(i) if isinstance(i, list) else i, p) for i, p in pending
        ]

        if pending:
            if self.jobs == 1:
                fresh = [(i, self._worker_for(p)(p)) for i, p in pending]
            else:
                fresh = self._run_pool(pending)
            for index, data in fresh:
                for i, d in (
                    zip(index, data) if isinstance(index, tuple)
                    else [(index, data)]
                ):
                    result = CellResult.from_dict(d)
                    if self.cache is not None and result.cache_key:
                        self.cache.store(result.cache_key, result)
                    results[i] = result
        return [r for r in results if r is not None]

    def _worker_for(self, payload: Dict[str, object]) -> Callable:
        return self.batch_worker if "lanes" in payload else self.worker

    def _run_pool(
        self, pending: List[Tuple[int, Dict[str, object]]]
    ) -> List[Tuple[int, Dict[str, object]]]:
        """Fan pending payloads over a process pool.  A worker death breaks
        the whole pool, so surviving cells are re-run one at a time in
        single-shot pools — the crasher is identified and reported as an
        ``error`` cell instead of aborting the sweep."""
        context = _pool_context()
        out: List[Tuple[int, Dict[str, object]]] = []
        survivors: List[Tuple[int, Dict[str, object]]] = []
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)), mp_context=context
            ) as pool:
                futures = {
                    pool.submit(self._worker_for(payload), payload):
                        (index, payload)
                    for index, payload in pending
                }
                for future in as_completed(futures):
                    index, payload = futures[future]
                    try:
                        out.append((index, future.result()))
                    except BrokenProcessPool:
                        survivors.append((index, payload))
                    except Exception as failure:
                        # A worker that raised instead of returning a result
                        # dict (only possible with substitute workers).
                        crashed = _crash_result(payload)
                        if isinstance(crashed, list):
                            for entry in crashed:
                                entry["diagnostics"] = [repr(failure)]
                        else:
                            crashed["diagnostics"] = [repr(failure)]
                        out.append((index, crashed))
        except BrokenProcessPool:
            done = {index for index, _ in out}
            survivors = [
                (i, p) for i, p in pending
                if i not in done and (i, p) not in survivors
            ]
        for index, payload in survivors:
            out.append((index, self._run_isolated(payload, context)))
        return out

    def _run_isolated(self, payload, context):
        try:
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                return pool.submit(self._worker_for(payload), payload).result()
        except BrokenProcessPool:
            return _crash_result(payload)

    # -- suite-level convenience ------------------------------------------

    def run_suite(
        self,
        workloads=None,
        flows: Optional[Sequence[str]] = None,
        function: str = "main",
        sim_backend: str = "interp",
    ) -> List[CellResult]:
        """The full workload × flow matrix (defaults: the whole suite
        against every compilable flow)."""
        return self.run_cells(
            suite_tasks(workloads=workloads, flows=flows, function=function,
                        sim_backend=sim_backend)
        )


def _pool_context():
    """Prefer fork so workers inherit the warm interpreter state (the
    package import alone would otherwise dominate sub-second sweeps)."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def _level_options(opt_level: Optional[int]) -> Tuple:
    """The CellTask ``options`` tuple selecting ``opt_level`` (empty when
    it is None or the default, keeping identities stable)."""
    from ..api import DEFAULT_OPT_LEVEL

    if opt_level is None or int(opt_level) == DEFAULT_OPT_LEVEL:
        return ()
    return CellTask.make_options({"opt_level": int(opt_level)})


def suite_tasks(
    workloads=None,
    flows: Optional[Sequence[str]] = None,
    function: str = "main",
    sim_backend: str = "interp",
    opt_level: Optional[int] = None,
) -> List[CellTask]:
    """CellTasks for a workload × flow cross product."""
    from ..flows import COMPILABLE
    from ..workloads import WORKLOADS

    selected = list(workloads) if workloads is not None else list(WORKLOADS)
    flow_keys = list(flows) if flows is not None else list(COMPILABLE)
    options = _level_options(opt_level)
    return [
        CellTask(
            workload=w.name,
            source=w.source,
            flow=key,
            function=function,
            args=tuple(w.args),
            options=options,
            sim_backend=sim_backend,
        )
        for w in selected
        for key in flow_keys
    ]


def file_tasks(
    source: str,
    name: str,
    flows: Optional[Sequence[str]] = None,
    function: str = "main",
    args: Sequence[int] = (),
    sim_backend: str = "interp",
    opt_level: Optional[int] = None,
) -> List[CellTask]:
    """CellTasks running one program through many flows (the CLI matrix)."""
    from ..flows import COMPILABLE

    flow_keys = list(flows) if flows is not None else list(COMPILABLE)
    options = _level_options(opt_level)
    return [
        CellTask(workload=name, source=source, flow=key,
                 function=function, args=tuple(args), options=options,
                 sim_backend=sim_backend)
        for key in flow_keys
    ]
