"""Content-addressed artifact cache for matrix cells.

A cell's cache key is the SHA-256 of everything its result can depend on:

* the **token-normalized source** — the lexer's token stream, not the raw
  text, so whitespace and comment edits replay from the cache while any
  token-level change (a constant, an identifier, an operator) misses;
* the **flow key** and compile **options**;
* the entry **function** and simulation **args**;
* the **package version** and the **registry fingerprint** (the set of
  flow classes and their feature tables), so upgrading the compiler or
  editing a flow's semantics invalidates its artifacts.

Entries are one JSON file per key under ``root/<key[:2]>/<key>.json``,
written atomically; a corrupt or stale-schema file is treated as a miss
and removed.  Only deterministic verdicts are stored (see
``cells.CACHEABLE_VERDICTS``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cells import CACHEABLE_VERDICTS, SCHEMA_VERSION, CellResult, CellTask

DEFAULT_CACHE_DIR = pathlib.Path(
    os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro/matrix")
).expanduser()


def normalized_source(source: str) -> str:
    """The cache's view of a program: its token stream.

    Lexing strips whitespace and comments, so two sources that differ only
    in layout normalize identically.  Sources the lexer rejects fall back
    to their raw text — they will fail identically in every flow anyway."""
    from ..lang.errors import FrontendError
    from ..lang.lexer import tokenize

    try:
        tokens = tokenize(source)
    except FrontendError:
        return "raw:" + source
    return "\n".join(f"{tok.kind.name} {tok.text}" for tok in tokens)


def cell_key(task: CellTask, salt: str = "") -> str:
    """SHA-256 content address for one cell.

    The task half of the key is ``CellTask.identity()``, which derives
    from ``SynthesisOptions.identity()`` — one definition of "what can
    change a synthesis result", shared with the API facade, so the cache
    key cannot drift from the real option set.  ``salt`` carries the
    environment part (package version plus registry fingerprint); the
    engine computes it once per run."""
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "source": normalized_source(task.source),
            "task": task.identity(),
            "salt": salt,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def environment_salt() -> str:
    """Package version + registry fingerprint, the non-task key inputs."""
    from .. import __version__
    from ..flows.registry import registry_fingerprint

    return f"{__version__}:{registry_fingerprint()}"


class ArtifactCache:
    """A directory of content-addressed :class:`CellResult` artifacts."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[CellResult]:
        """The cached result for ``key``, or None (counted as a miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != SCHEMA_VERSION
            or data.get("key") != key
        ):
            # Stale or foreign entry: drop it so it cannot shadow a rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        result = CellResult.from_dict(data["result"])
        result.cached = True
        return result

    def store(self, key: str, result: CellResult) -> bool:
        """Persist ``result`` under ``key`` if its verdict is deterministic.

        Concurrent-write safe: the envelope lands in a uniquely named temp
        file (``mkstemp``, so two workers — or two threads sharing a pid —
        storing the same key can never interleave writes) and is published
        with one atomic ``os.replace``.  A reader either sees the old
        complete entry or the new complete entry, never a torn one; losing
        the last-writer race is benign because both writers hold the same
        deterministic content."""
        if result.verdict not in CACHEABLE_VERDICTS:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(envelope, sort_keys=True))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return True

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- capacity management ----------------------------------------------

    def _entries(self) -> List[Tuple[pathlib.Path, int, float]]:
        """(path, size_bytes, mtime) per entry, oldest access first.

        ``load()`` never touches mtime, so this is insertion-order LRU:
        good enough to keep a long-lived server's cache from growing
        without bound, with zero bookkeeping on the hit path."""
        entries: List[Tuple[pathlib.Path, int, float]] = []
        if not self.root.is_dir():
            return entries
        for path in self.root.glob("*/*.json"):
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((path, status.st_size, status.st_mtime))
        entries.sort(key=lambda entry: entry[2])
        return entries

    def stats(self) -> "CacheStats":
        """Entry count, total bytes, and age span of the cache directory."""
        entries = self._entries()
        orphans = 0
        if self.root.is_dir():
            orphans = sum(1 for _ in self.root.glob("*/*.tmp"))
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
            oldest_mtime=entries[0][2] if entries else 0.0,
            newest_mtime=entries[-1][2] if entries else 0.0,
            orphan_tmp_files=orphans,
        )

    def prune(self, max_bytes: int) -> "PruneReport":
        """Delete oldest-mtime entries until the cache fits ``max_bytes``.

        Also sweeps orphaned ``*.tmp`` files older than an hour — debris
        from a writer that died between ``mkstemp`` and ``os.replace``."""
        report = PruneReport(max_bytes=max_bytes)
        now = time.time()
        if self.root.is_dir():
            for tmp in self.root.glob("*/*.tmp"):
                try:
                    if now - tmp.stat().st_mtime > 3600:
                        tmp.unlink()
                        report.tmp_swept += 1
                except OSError:
                    pass
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        for path, size, _mtime in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            report.removed += 1
            report.freed_bytes += size
        report.kept = len(entries) - report.removed
        report.kept_bytes = total
        return report


@dataclass
class CacheStats:
    """What ``repro cache stats`` reports."""

    root: str = ""
    entries: int = 0
    total_bytes: int = 0
    oldest_mtime: float = 0.0
    newest_mtime: float = 0.0
    orphan_tmp_files: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "oldest_mtime": self.oldest_mtime,
            "newest_mtime": self.newest_mtime,
            "orphan_tmp_files": self.orphan_tmp_files,
        }


@dataclass
class PruneReport:
    """What one ``ArtifactCache.prune`` pass removed and kept."""

    max_bytes: int = 0
    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    tmp_swept: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_bytes": self.max_bytes,
            "removed": self.removed,
            "freed_bytes": self.freed_bytes,
            "kept": self.kept,
            "kept_bytes": self.kept_bytes,
            "tmp_swept": self.tmp_swept,
        }
