"""Content-addressed artifact cache for matrix cells.

A cell's cache key is the SHA-256 of everything its result can depend on:

* the **token-normalized source** — the lexer's token stream, not the raw
  text, so whitespace and comment edits replay from the cache while any
  token-level change (a constant, an identifier, an operator) misses;
* the **flow key** and compile **options**;
* the entry **function** and simulation **args**;
* the **package version** and the **registry fingerprint** (the set of
  flow classes and their feature tables), so upgrading the compiler or
  editing a flow's semantics invalidates its artifacts.

Entries are one JSON file per key under ``root/<key[:2]>/<key>.json``,
written atomically; a corrupt or stale-schema file is treated as a miss
and removed.  Only deterministic verdicts are stored (see
``cells.CACHEABLE_VERDICTS``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional

from .cells import CACHEABLE_VERDICTS, SCHEMA_VERSION, CellResult, CellTask

DEFAULT_CACHE_DIR = pathlib.Path(
    os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro/matrix")
).expanduser()


def normalized_source(source: str) -> str:
    """The cache's view of a program: its token stream.

    Lexing strips whitespace and comments, so two sources that differ only
    in layout normalize identically.  Sources the lexer rejects fall back
    to their raw text — they will fail identically in every flow anyway."""
    from ..lang.errors import FrontendError
    from ..lang.lexer import tokenize

    try:
        tokens = tokenize(source)
    except FrontendError:
        return "raw:" + source
    return "\n".join(f"{tok.kind.name} {tok.text}" for tok in tokens)


def cell_key(task: CellTask, salt: str = "") -> str:
    """SHA-256 content address for one cell.

    The task half of the key is ``CellTask.identity()``, which derives
    from ``SynthesisOptions.identity()`` — one definition of "what can
    change a synthesis result", shared with the API facade, so the cache
    key cannot drift from the real option set.  ``salt`` carries the
    environment part (package version plus registry fingerprint); the
    engine computes it once per run."""
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "source": normalized_source(task.source),
            "task": task.identity(),
            "salt": salt,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def environment_salt() -> str:
    """Package version + registry fingerprint, the non-task key inputs."""
    from .. import __version__
    from ..flows.registry import registry_fingerprint

    return f"{__version__}:{registry_fingerprint()}"


class ArtifactCache:
    """A directory of content-addressed :class:`CellResult` artifacts."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[CellResult]:
        """The cached result for ``key``, or None (counted as a miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != SCHEMA_VERSION
            or data.get("key") != key
        ):
            # Stale or foreign entry: drop it so it cannot shadow a rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        result = CellResult.from_dict(data["result"])
        result.cached = True
        return result

    def store(self, key: str, result: CellResult) -> bool:
        """Persist ``result`` under ``key`` if its verdict is deterministic."""
        if result.verdict not in CACHEABLE_VERDICTS:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(envelope, sort_keys=True))
        os.replace(tmp, path)  # atomic: concurrent writers race benignly
        return True

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
