"""Datapath cost estimation: area and achievable clock for a bound design.

Sharing functional units is not free — every shared unit grows operand
multiplexers, and every multiplexer level adds delay.  This module prices
the complete datapath:

* functional units (from the binding);
* architectural + carrier registers (from the allocation);
* operand multiplexers (distinct sources per unit port);
* memories (words × width plus port overhead);
* the clock estimate: the worst state's chained path, plus the mux levels
  in front of the busiest unit, plus register setup and skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..lang.types import ArrayType
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.base import FunctionSchedule
from .fu_binding import FUBinding, bind_functional_units
from .register_alloc import RegisterAllocation, allocate_registers


@dataclass
class DatapathCost:
    fu_area_ge: float
    register_area_ge: float
    mux_area_ge: float
    memory_area_ge: float
    controller_area_ge: float
    critical_path_ns: float
    clock_ns: float

    @property
    def total_area_ge(self) -> float:
        return (
            self.fu_area_ge
            + self.register_area_ge
            + self.mux_area_ge
            + self.memory_area_ge
            + self.controller_area_ge
        )

    @property
    def fmax_mhz(self) -> float:
        return 1000.0 / self.clock_ns if self.clock_ns > 0 else 0.0


def estimate_cost(
    schedule: FunctionSchedule,
    binding: Optional[FUBinding] = None,
    allocation: Optional[RegisterAllocation] = None,
    tech: Technology = DEFAULT_TECH,
) -> DatapathCost:
    """Price a scheduled-and-bound function."""
    binding = binding or bind_functional_units(schedule, tech)
    allocation = allocation or allocate_registers(schedule)

    fu_area = binding.total_area_ge(tech)
    register_area = allocation.total_area_ge(tech)

    mux_area = 0.0
    worst_mux_ns = 0.0
    for unit in binding.units:
        for sources in unit.port_sources:
            mux_area += tech.mux_area_ge(len(sources), unit.width)
            worst_mux_ns = max(worst_mux_ns, tech.mux_delay_ns(len(sources), unit.width))

    memory_area = 0.0
    for array in schedule.cdfg.arrays:
        assert isinstance(array.type, ArrayType)
        ports = 1
        if schedule.resources is not None:
            ports = schedule.resources.memory_ports or 1
        memory_area += tech.memory_area_ge(
            array.type.size, array.type.element.bit_width, ports
        )

    # Controller: a one-hot FSM — a state register plus next-state logic that
    # grows with states × transitions (~8 GE per state edge).
    n_states = schedule.total_steps()
    controller_area = tech.register_area_ge(max(n_states, 1)) / 4.0 + 8.0 * n_states

    from ..scheduling.base import chained_steps

    worst_path_ns = 0.0
    for block_schedule in schedule.blocks.values():
        for op in block_schedule.block.ops:
            finish = block_schedule.op_finish_ns.get(op.id, 0.0)
            if schedule.clock_ns > 0:
                span = chained_steps(op, schedule.clock_ns, tech)
                if span > 1:
                    # Multi-cycle operators are pipelined across their span:
                    # each state sees one clock period of them.
                    finish = schedule.clock_ns
            worst_path_ns = max(worst_path_ns, finish)
    clock = worst_path_ns + worst_mux_ns + tech.register_setup_ns + tech.clock_skew_ns
    if clock <= 0.0:
        clock = tech.register_setup_ns + tech.clock_skew_ns

    return DatapathCost(
        fu_area_ge=fu_area,
        register_area_ge=register_area,
        mux_area_ge=mux_area,
        memory_area_ge=memory_area,
        controller_area_ge=controller_area,
        critical_path_ns=worst_path_ns,
        clock_ns=clock,
    )


def estimate_fsmd_cost(fsmd, tech: Technology = DEFAULT_TECH) -> DatapathCost:
    """Price an FSMD built directly from states (syntax-directed flows).

    Functional units per resource class = the maximum per-state concurrency;
    operand muxes are sized from the sharing factor (ops per unit); the
    clock is the worst per-state chained dataflow path plus mux levels.
    """
    import math

    from ..ir.ops import VReg
    from ..scheduling.resources import FREE, classify, op_delay_ns, op_width, tech_class

    class_total: Dict[str, int] = {}
    class_peak: Dict[str, int] = {}
    class_width: Dict[str, int] = {}
    class_tech: Dict[str, str] = {}
    worst_path = 0.0
    for state in fsmd.states:
        per_state: Dict[str, int] = {}
        finish: Dict[int, float] = {}
        path = 0.0
        for op in state.ops:
            resource = classify(op)
            if resource != FREE:
                per_state[resource] = per_state.get(resource, 0) + 1
                class_total[resource] = class_total.get(resource, 0) + 1
                class_width[resource] = max(
                    class_width.get(resource, 1), op_width(op)
                )
                class_tech.setdefault(resource, tech_class(op))
            ready = 0.0
            for operand in op.operands:
                if isinstance(operand, VReg) and operand.id in finish:
                    ready = max(ready, finish[operand.id])
            done = ready + op_delay_ns(op, tech)
            if op.dest is not None:
                finish[op.dest.id] = done
            path = max(path, done)
        for resource, used in per_state.items():
            class_peak[resource] = max(class_peak.get(resource, 0), used)
        worst_path = max(worst_path, path)

    fu_area = 0.0
    mux_area = 0.0
    worst_mux = 0.0
    for resource, peak in class_peak.items():
        width = class_width[resource]
        pricing = class_tech[resource]
        fu_area += peak * tech.area_ge(pricing, width)
        sharing = max(1, math.ceil(class_total[resource] / peak))
        mux_area += peak * 2 * tech.mux_area_ge(sharing, width)
        worst_mux = max(worst_mux, tech.mux_delay_ns(sharing, width))

    register_area = sum(
        tech.register_area_ge(s.type.bit_width) for s in fsmd.registers
    )
    memory_area = 0.0
    for array in fsmd.arrays:
        assert isinstance(array.type, ArrayType)
        memory_area += tech.memory_area_ge(
            array.type.size, array.type.element.bit_width, 1
        )
    controller_area = tech.register_area_ge(max(fsmd.n_states, 1)) / 4.0 + (
        8.0 * fsmd.n_states
    )
    clock = worst_path + worst_mux + tech.register_setup_ns + tech.clock_skew_ns
    if clock <= 0.0:
        clock = tech.register_setup_ns + tech.clock_skew_ns
    return DatapathCost(
        fu_area_ge=fu_area,
        register_area_ge=register_area,
        mux_area_ge=mux_area,
        memory_area_ge=memory_area,
        controller_area_ge=controller_area,
        critical_path_ns=worst_path,
        clock_ns=clock,
    )
