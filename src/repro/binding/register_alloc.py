"""Register allocation for values that cross control-step boundaries.

Architectural registers (the program's scalar variables) are kept one-to-one
— they carry values across blocks and their lifetimes are whole-program, so
sharing them needs global liveness that buys little on kernel-sized designs.

Carrier registers for block-local VRegs, however, are shared with the
classic **left-edge algorithm**: a VReg whose consumers sit in later control
steps than its producer is live over an interval of steps; sorting intervals
by start and packing each into the first free register yields the minimum
register count for interval graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.symtab import Symbol
from ..ir.ops import Branch, Operand, Ret, VReg
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.base import BlockSchedule, FunctionSchedule


@dataclass
class Lifetime:
    vreg: VReg
    block_id: int
    start: int  # step whose edge latches the value
    end: int    # last step that reads it

    @property
    def width(self) -> int:
        return self.vreg.type.bit_width


@dataclass
class CarrierRegister:
    name: str
    width: int = 1
    occupants: List[Lifetime] = field(default_factory=list)


@dataclass
class RegisterAllocation:
    variable_registers: List[Symbol] = field(default_factory=list)
    carriers: List[CarrierRegister] = field(default_factory=list)
    vreg_carrier: Dict[int, str] = field(default_factory=dict)
    lifetimes: List[Lifetime] = field(default_factory=list)

    def total_area_ge(self, tech: Technology = DEFAULT_TECH) -> float:
        area = sum(
            tech.register_area_ge(s.type.bit_width) for s in self.variable_registers
        )
        area += sum(tech.register_area_ge(c.width) for c in self.carriers)
        return area

    def register_count(self) -> int:
        return len(self.variable_registers) + len(self.carriers)


def _block_lifetimes(block_schedule: BlockSchedule) -> List[Lifetime]:
    """Lifetimes of VRegs that cross a step boundary within the block."""
    block = block_schedule.block
    def_step: Dict[VReg, int] = {}
    last_use: Dict[VReg, int] = {}
    for op in block.ops:
        step = block_schedule.op_step[op.id]
        if op.dest is not None:
            def_step[op.dest] = step
        for operand in op.operands:
            if isinstance(operand, VReg):
                last_use[operand] = max(last_use.get(operand, step), step)
    final_step = block_schedule.n_steps - 1
    for value in block.var_writes.values():
        if isinstance(value, VReg):
            last_use[value] = max(last_use.get(value, final_step), final_step)
    terminator = block.terminator
    terminator_values: List[Operand] = []
    if isinstance(terminator, Branch):
        terminator_values.append(terminator.cond)
    elif isinstance(terminator, Ret) and terminator.value is not None:
        terminator_values.append(terminator.value)
    for operand in terminator_values:
        if isinstance(operand, VReg):
            last_use[operand] = max(last_use.get(operand, final_step), final_step)
    lifetimes = []
    for vreg, start in def_step.items():
        end = last_use.get(vreg, start)
        if end > start:
            lifetimes.append(
                Lifetime(vreg=vreg, block_id=block.id, start=start, end=end)
            )
    return lifetimes


def left_edge_pack(lifetimes: List[Lifetime]) -> List[CarrierRegister]:
    """The left-edge algorithm: minimum carriers for interval lifetimes.

    Lifetimes from different blocks never conflict (one state machine), so
    packing treats (block, interval) pairs as disjoint tracks."""
    carriers: List[CarrierRegister] = []
    ordered = sorted(lifetimes, key=lambda lt: (lt.start, lt.end, lt.vreg.id))
    # Per carrier, the last occupied end step per block.
    last_end: Dict[Tuple[str, int], int] = {}
    for lifetime in ordered:
        placed: Optional[CarrierRegister] = None
        for carrier in carriers:
            key = (carrier.name, lifetime.block_id)
            if last_end.get(key, -1) < lifetime.start:
                placed = carrier
                break
        if placed is None:
            placed = CarrierRegister(name=f"carry{len(carriers)}")
            carriers.append(placed)
        placed.occupants.append(lifetime)
        placed.width = max(placed.width, lifetime.width)
        last_end[(placed.name, lifetime.block_id)] = lifetime.end
    return carriers


def allocate_registers(schedule: FunctionSchedule) -> RegisterAllocation:
    """Allocate architectural + carrier registers for a schedule."""
    allocation = RegisterAllocation(
        variable_registers=list(schedule.cdfg.registers)
    )
    for block_schedule in schedule.blocks.values():
        allocation.lifetimes.extend(_block_lifetimes(block_schedule))
    allocation.carriers = left_edge_pack(allocation.lifetimes)
    for carrier in allocation.carriers:
        for lifetime in carrier.occupants:
            allocation.vreg_carrier[lifetime.vreg.id] = carrier.name
    return allocation
