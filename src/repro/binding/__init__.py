"""Binding and allocation: functional units, registers, datapath cost."""

from .datapath_cost import DatapathCost, estimate_cost
from .fu_binding import FUBinding, FunctionalUnit, bind_functional_units
from .register_alloc import (
    CarrierRegister,
    Lifetime,
    RegisterAllocation,
    allocate_registers,
    left_edge_pack,
)

__all__ = [
    "CarrierRegister",
    "DatapathCost",
    "FUBinding",
    "FunctionalUnit",
    "Lifetime",
    "RegisterAllocation",
    "allocate_registers",
    "bind_functional_units",
    "estimate_cost",
    "left_edge_pack",
]
