"""Functional-unit allocation and binding.

After scheduling, operations that share a resource class and never execute
in the same control step can share one functional unit.  Because an FSMD is
in exactly one state at a time, units are shared freely *across* blocks;
only same-step (and multi-cycle overlapping) operations need distinct
units.  The binder is a greedy interval assigner with a locality heuristic:
an operation prefers the unit that already executes operations reading the
same first operand, which keeps operand multiplexers narrow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.ops import Const, Operand, Operation, VarRead, VReg
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.base import FunctionSchedule, chained_steps
from ..scheduling.resources import FREE, classify, op_width, tech_class


@dataclass
class FunctionalUnit:
    """One allocated datapath unit."""

    name: str
    resource_class: str
    tech_class: str
    width: int = 1
    # Distinct sources seen on each operand port (for mux sizing).
    port_sources: List[Set[Tuple]] = field(default_factory=list)
    op_count: int = 0

    def area_ge(self, tech: Technology) -> float:
        return tech.area_ge(self.tech_class, self.width) if self.tech_class else 0.0


def _source_key(operand: Operand) -> Tuple:
    if isinstance(operand, Const):
        return ("const", operand.value)
    if isinstance(operand, VarRead):
        return ("var", operand.var.unique_name)
    return ("vreg", operand.id)


@dataclass
class FUBinding:
    units: List[FunctionalUnit] = field(default_factory=list)
    op_unit: Dict[int, str] = field(default_factory=dict)

    def unit(self, name: str) -> FunctionalUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise KeyError(name)

    def units_of_class(self, resource_class: str) -> List[FunctionalUnit]:
        return [u for u in self.units if u.resource_class == resource_class]

    def total_area_ge(self, tech: Technology = DEFAULT_TECH) -> float:
        return sum(unit.area_ge(tech) for unit in self.units)


def bind_functional_units(
    schedule: FunctionSchedule, tech: Technology = DEFAULT_TECH
) -> FUBinding:
    """Bind every scheduled operation to a functional unit."""
    binding = FUBinding()
    counters: Dict[str, int] = {}
    # unit name -> set of (block_id, step) it is busy in
    busy: Dict[str, Set[Tuple[int, int]]] = {}

    for block_id, block_schedule in schedule.blocks.items():
        for op in block_schedule.block.ops:
            resource = classify(op)
            if resource == FREE:
                continue
            step = block_schedule.op_step[op.id]
            span = (
                chained_steps(op, schedule.clock_ns, tech)
                if schedule.clock_ns > 0
                else 1
            )
            steps_used = {(block_id, step + k) for k in range(span)}
            candidates = [
                u for u in binding.units_of_class(resource)
                if not (busy[u.name] & steps_used)
            ]
            chosen: Optional[FunctionalUnit] = None
            if candidates:
                # Prefer a unit already fed by our first operand (narrower mux).
                first_source = _source_key(op.operands[0]) if op.operands else None
                for unit in candidates:
                    if (
                        first_source is not None
                        and unit.port_sources
                        and first_source in unit.port_sources[0]
                    ):
                        chosen = unit
                        break
                if chosen is None:
                    chosen = candidates[0]
            else:
                index = counters.get(resource, 0)
                counters[resource] = index + 1
                chosen = FunctionalUnit(
                    name=f"{resource.replace(':', '_')}{index}",
                    resource_class=resource,
                    tech_class=tech_class(op),
                )
                binding.units.append(chosen)
                busy[chosen.name] = set()
            busy[chosen.name] |= steps_used
            binding.op_unit[op.id] = chosen.name
            chosen.width = max(chosen.width, op_width(op))
            chosen.op_count += 1
            while len(chosen.port_sources) < len(op.operands):
                chosen.port_sources.append(set())
            for port, operand in enumerate(op.operands):
                chosen.port_sources[port].add(_source_key(operand))
    return binding
