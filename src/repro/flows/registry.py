"""The flow registry — the executable version of the paper's Table 1.

Every row of Table 1 ("C-like languages/compilers, chronological order")
maps to an implemented flow; :func:`table1_rows` regenerates the table from
the registry, which is what ``benchmarks/bench_table1.py`` prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.lint.rules import (
    AliasFallbackRule,
    ConesCombCycleRule,
    FeatureRule,
    NoProcessRule,
    ParStructureRule,
    ReceivePositionRule,
    Rule,
    SharedRaceRule,
    StaticLoopBoundRule,
    UnboundedLatencyRule,
    ZeroTimeLoopRule,
)
from .base import CompiledDesign, Flow, FlowError, FlowMetadata, FlowResult
from .bachc import BachCFlow
from .c2verilog import C2VerilogFlow
from .cash import CashFlow
from .cones import ConesFlow
from .cyber import CyberFlow
from .handelc import HandelCFlow
from .hardwarec import HardwareCFlow
from .ocapi import OcapiFlow
from .specc import SpecCFlow
from .systemc import SystemCFlow
from .transmogrifier import TransmogrifierFlow

# Chronological, exactly as in Table 1 of the paper.
_FLOW_CLASSES = [
    ConesFlow,          # 1988
    HardwareCFlow,      # 1990
    TransmogrifierFlow, # 1995
    SystemCFlow,        # (1999 lib, 2002 book) — Table 1 position
    OcapiFlow,          # 1998
    C2VerilogFlow,      # 1998
    CyberFlow,          # 1999
    HandelCFlow,        # 1998/2003
    SpecCFlow,          # 2000
    BachCFlow,          # 2001
    CashFlow,           # 2002
]

REGISTRY: Dict[str, Flow] = {cls.metadata.key: cls() for cls in _FLOW_CLASSES}

# Flows that accept C-like source through compile() (Ocapi is structural).
COMPILABLE = [key for key, flow in REGISTRY.items() if key != "ocapi"]


def get_flow(key: str) -> Flow:
    if key not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown flow {key!r}; known flows: {known}")
    return REGISTRY[key]


def compile_flow(
    source: str, flow="c2verilog", function: str = "main", trace=None,
    **options,
) -> CompiledDesign:
    """Parse and synthesize ``source`` with the named flow.

    Legacy shim: new code should use :func:`repro.api.synthesize`.
    ``flow`` also accepts a :class:`repro.api.SynthesisOptions` (no
    deprecation warning on that path); the string + ad-hoc keyword form
    warns once per process."""
    from ..api import SynthesisOptions, synthesize, warn_legacy

    if isinstance(flow, SynthesisOptions):
        chosen = SynthesisOptions.make(flow, **options) if options else flow
        return synthesize(source, chosen, trace=trace).design
    warn_legacy(
        "compile_flow",
        "use repro.api.synthesize(source, SynthesisOptions(flow=...))",
    )
    return synthesize(
        source, flow=flow, function=function, trace=trace, **options
    ).design


def run_flow(
    source: str,
    args: Sequence[int] = (),
    flow="c2verilog",
    function: str = "main",
    process_args=None,
    max_cycles: int = 2_000_000,
    sim_backend: str = "interp",
    sim_profile=None,
    trace=None,
    **options,
) -> FlowResult:
    """Compile and simulate in one call.

    Legacy shim over :func:`repro.api.synthesize` +
    :meth:`repro.api.SynthesisResult.run`; same option handling as
    :func:`compile_flow`."""
    from ..api import SynthesisOptions, synthesize, warn_legacy

    if isinstance(flow, SynthesisOptions):
        chosen = SynthesisOptions.make(flow, **options) if options else flow
        result = synthesize(source, chosen, trace=trace)
    else:
        warn_legacy(
            "run_flow",
            "use repro.api.synthesize(...).run(...)",
        )
        result = synthesize(
            source, flow=flow, function=function, sim_backend=sim_backend,
            trace=trace, **options,
        )
    return result.run(
        args=args, process_args=process_args, max_cycles=max_cycles,
        sim_profile=sim_profile,
    )


# Structural and CDFG-level lint rules per flow, beyond the feature table
# each flow declares in its FORBIDDEN attribute.  Declared here, next to the
# registry, so a flow's lint configuration lives with its Table 1 row.
_STRUCTURAL_RULES: Dict[str, List[Rule]] = {
    "cones": [
        NoProcessRule("Cones has no processes"),
        StaticLoopBoundRule(),
        ConesCombCycleRule(),
    ],
    "cash": [NoProcessRule("CASH compiles a single C program")],
    "handelc": [
        ZeroTimeLoopRule(),
        ParStructureRule(),
        ReceivePositionRule(),
    ],
}

# Flows whose pointer support goes through plan_pointers: warn when the
# analysis falls back to the unified memory.
_POINTER_FLOWS = ("c2verilog", "cash", "specc")

_lint_rule_cache: Dict[str, Tuple[Rule, ...]] = {}


def lint_rules(key: str) -> Tuple[Rule, ...]:
    """The lint rule set predicting what ``key``'s compile would reject,
    plus the hazard warnings that apply to its execution model."""
    if key in _lint_rule_cache:
        return _lint_rule_cache[key]
    flow = get_flow(key)
    rules: List[Rule] = [
        FeatureRule(feature, reason)
        for feature, reason in flow.FORBIDDEN.items()
    ]
    rules.extend(_STRUCTURAL_RULES.get(key, ()))
    if key in _POINTER_FLOWS:
        rules.append(AliasFallbackRule())
    if flow.metadata.concurrency == "explicit":
        rules.append(SharedRaceRule())
    if key != "cones":
        rules.append(UnboundedLatencyRule())
    result = tuple(rules)
    _lint_rule_cache[key] = result
    return result


def timing_rules(key: str, options=None) -> Tuple[Rule, ...]:
    """The TIM (time-sensitive) rule set for ``key`` — schedule-aware
    obligations layered on top of :func:`lint_rules`.  Unlike the lint
    rules these are *not* cached: each instance carries a per-check
    scratch of replicated schedules/FSMDs, so callers get fresh rules
    per invocation (``repro.analysis.timing.check`` shares one scratch
    across flows itself)."""
    from ..analysis.timing.rules import timing_rules_for

    return tuple(timing_rules_for(key, options))


def registry_fingerprint() -> str:
    """A digest of the registry's semantic surface: flow keys, class names,
    and each flow's feature table.  The artifact cache folds this into
    every cell key, so editing a flow's restrictions (or adding a flow)
    invalidates exactly the cached results that could change."""
    import hashlib

    parts = []
    for key in sorted(REGISTRY):
        flow = REGISTRY[key]
        forbidden = ",".join(sorted(flow.FORBIDDEN))
        parts.append(f"{key}:{type(flow).__name__}:{forbidden}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def table1_rows() -> List[Dict[str, str]]:
    """Table 1, regenerated from the implemented registry."""
    rows = []
    for cls in _FLOW_CLASSES:
        meta: FlowMetadata = cls.metadata
        rows.append(
            {
                "language": meta.title,
                "year": str(meta.year),
                "note": meta.note,
                "concurrency": meta.concurrency,
                "timing": meta.timing,
                "artifact": meta.artifact,
            }
        )
    return rows
