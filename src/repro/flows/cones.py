"""Cones (Stroud, Munoz & Pierce, AT&T Bell Labs, 1988).

Table 1: *"Early, combinational only."*  Cones *"synthesized each function
in a combinational block.  Its strict C subset handled conditionals; loops,
which it unrolled; and arrays treated as bit vectors"*, flattening
everything *"into a single two-level network."*

The flow reproduces that pipeline:

1. inline every call;
2. fully unroll every counted loop — a loop whose bound the compiler cannot
   evaluate is a hard error, exactly as in Cones;
3. lower to a CDFG and check the CFG is acyclic;
4. **if-convert** the whole DAG into one combinational netlist: variables
   become select-merged wires keyed by path conditions, and arrays dissolve
   into per-element wires where a store with a dynamic index becomes a
   comparator+mux per element and a dynamic load becomes a mux tree —
   the area explosion the E6 experiment measures.

Divisors on untaken paths are gated to 1 so the flattened network is total
(hardware computes every cone regardless of the "active" path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.lint.diagnostics import (
    RULE_COMB_CYCLE,
    RULE_PROCESS,
    RULE_STRUCTURE,
    RULE_UNBOUNDED_LOOP,
)
from ..analysis.pointer import plan_pointers
from ..lang import ast_nodes as ast
from ..lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_DELAY,
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WAIT,
    FEATURE_WITHIN,
    SemanticInfo,
)
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, BOOL, IntType
from ..ir import build_function
from ..ir.astutils import fresh_symbol
from ..ir.cdfg import BasicBlock, FunctionCDFG
from ..ir.ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg, VarRead
from ..ir.passes import inline_program, try_full_unroll
from ..ir.passes.fixpoint import optimize_cdfg
from ..rtl.combinational import CombinationalNetlist, evaluate
from ..rtl.tech import DEFAULT_TECH, Technology
from ..trace import ensure_trace
from .base import (
    CompiledDesign,
    DesignCost,
    Flow,
    FlowError,
    FlowMetadata,
    FlowResult,
    UnsupportedFeature,
    _roots_of,
)

_KEY = "cones"
_INDEX = IntType(32, signed=False)


class _Flattener:
    """If-converts an acyclic CDFG into one combinational netlist."""

    def __init__(self, cdfg: FunctionCDFG, global_inits: Dict[str, object]):
        self.cdfg = cdfg
        self.global_inits = global_inits
        self.netlist = CombinationalNetlist(name=cdfg.name)
        self.ops = self.netlist.ops

    # -- op emission ---------------------------------------------------------

    def _emit(self, kind: OpKind, dest_type, operands: List[Operand], **attrs) -> VReg:
        dest = VReg(dest_type)
        self.ops.append(Operation(kind=kind, dest=dest, operands=operands, **attrs))
        return dest

    def _and(self, a: Operand, b: Operand) -> Operand:
        if isinstance(a, Const):
            return b if a.value else a
        if isinstance(b, Const):
            return a if b.value else b
        return self._emit(OpKind.BINARY, BOOL, [a, b], op="&&")

    def _or(self, a: Operand, b: Operand) -> Operand:
        if isinstance(a, Const):
            return a if a.value else b
        if isinstance(b, Const):
            return b if b.value else a
        return self._emit(OpKind.BINARY, BOOL, [a, b], op="||")

    def _not(self, a: Operand) -> Operand:
        if isinstance(a, Const):
            return Const(int(not a.value), BOOL)
        return self._emit(OpKind.UNARY, BOOL, [a], op="!")

    def _select(self, cond: Operand, a: Operand, b: Operand, result_type) -> Operand:
        if isinstance(cond, Const):
            return a if cond.value else b
        if a is b:
            return a
        return self._emit(OpKind.SELECT, result_type, [cond, a, b])

    # -- environments ----------------------------------------------------------

    def flatten(self) -> CombinationalNetlist:
        order = self.cdfg.reachable_blocks()
        position = {block.id: i for i, block in enumerate(order)}
        for block in order:
            for successor in block.successors():
                if position[successor.id] <= position[block.id]:
                    raise FlowError(
                        _KEY,
                        f"loop survived unrolling ({block.label} ->"
                        f" {successor.label}); Cones requires statically"
                        " bounded loops",
                        rule=RULE_COMB_CYCLE,
                    )
        entry_env, entry_arrays = self._initial_environment()
        # Per block: (path_cond, var env, array env) after merging preds.
        incoming: Dict[int, List[Tuple[Operand, Dict, Dict]]] = {order[0].id: [
            (Const(1, BOOL), entry_env, entry_arrays)
        ]}
        result: Optional[Operand] = None
        result_cond: Optional[Operand] = None
        final_envs: List[Tuple[Operand, Dict, Dict]] = []
        for block in order:
            merged_cond, env, arrays = self._merge(incoming.get(block.id, []))
            env, arrays, values = self._execute_block(block, merged_cond, env, arrays)

            def read_out(operand):
                if isinstance(operand, VReg):
                    return values[operand]
                return self._read(operand, env)

            terminator = block.terminator
            if isinstance(terminator, Jump):
                incoming.setdefault(terminator.target.id, []).append(
                    (merged_cond, env, arrays)
                )
            elif isinstance(terminator, Branch):
                cond = read_out(terminator.cond)
                taken = self._and(merged_cond, self._bool(cond))
                not_taken = self._and(merged_cond, self._not(self._bool(cond)))
                incoming.setdefault(terminator.if_true.id, []).append(
                    (taken, env, arrays)
                )
                incoming.setdefault(terminator.if_false.id, []).append(
                    (not_taken, env, arrays)
                )
            elif isinstance(terminator, Ret):
                if terminator.value is not None:
                    value = read_out(terminator.value)
                    if result is None:
                        result = value
                        result_cond = merged_cond
                    else:
                        result = self._select(
                            merged_cond, value, result, self.cdfg.return_type
                        )
                final_envs.append((merged_cond, env, arrays))
        self.netlist.output = result
        self._merge_outputs(final_envs)
        return self.netlist

    def _bool(self, operand: Operand) -> Operand:
        if isinstance(operand.type, type(BOOL)):
            return operand
        return self._emit(
            OpKind.BINARY, BOOL, [operand, Const(0, operand.type)], op="!="
        )

    def _initial_environment(self) -> Tuple[Dict, Dict]:
        env: Dict[Symbol, Operand] = {}
        arrays: Dict[Symbol, List[Operand]] = {}
        for symbol in self.cdfg.registers:
            if symbol in self.cdfg.params:
                self.netlist.inputs.append(symbol)
                env[symbol] = VarRead(symbol)
            elif symbol.kind is SymbolKind.GLOBAL:
                env[symbol] = VarRead(symbol)
                init = self.global_inits.get(symbol.name, 0)
                self.netlist.input_defaults[symbol.unique_name] = (
                    init if isinstance(init, int) else 0
                )
            else:
                env[symbol] = Const(0, symbol.type)
        for array in self.cdfg.arrays:
            assert isinstance(array.type, ArrayType)
            if array.kind is SymbolKind.GLOBAL or array in self.cdfg.params:
                elements: List[Operand] = []
                element_symbols: List[Symbol] = []
                init = self.global_inits.get(array.name)
                for i in range(array.type.size):
                    element = fresh_symbol(
                        f"{array.name}[{i}]", array.type.element
                    )
                    element_symbols.append(element)
                    elements.append(VarRead(element))
                    default = 0
                    if isinstance(init, list) and i < len(init):
                        default = init[i]
                    self.netlist.input_defaults[element.unique_name] = default
                self.netlist.element_inputs[array] = element_symbols
                arrays[array] = elements
            else:
                arrays[array] = [
                    Const(0, array.type.element) for _ in range(array.type.size)
                ]
        return env, arrays

    def _merge(self, sources: List[Tuple[Operand, Dict, Dict]]):
        if not sources:
            # Unreachable block in a pruned CDFG: dead environment.
            return Const(0, BOOL), {}, {}
        cond, env, arrays = sources[0]
        env = dict(env)
        arrays = {k: list(v) for k, v in arrays.items()}
        for other_cond, other_env, other_arrays in sources[1:]:
            # Order-preserving unions: Symbol hashing is identity-based, so
            # a set union here would make netlist op order (and hence the
            # emitted RTL) vary run to run.
            for symbol in [*env, *(s for s in other_env if s not in env)]:
                a = env.get(symbol, Const(0, symbol.type))
                b = other_env.get(symbol, Const(0, symbol.type))
                env[symbol] = self._select(other_cond, b, a, symbol.type)
            for array in [*arrays,
                          *(a for a in other_arrays if a not in arrays)]:
                element_type = array.type.element  # type: ignore[union-attr]
                current = arrays.get(array, [])
                incoming = other_arrays.get(array, current)
                arrays[array] = [
                    self._select(other_cond, b, a, element_type)
                    for a, b in zip(current, incoming)
                ]
            cond = self._or(cond, other_cond)
        return cond, env, arrays

    def _read(self, operand: Operand, env: Dict[Symbol, Operand]) -> Operand:
        if isinstance(operand, VarRead):
            return env.get(operand.var, Const(0, operand.var.type))
        return operand

    def _execute_block(self, block: BasicBlock, path_cond, env, arrays):
        env = dict(env)
        arrays = {k: list(v) for k, v in arrays.items()}
        values: Dict[VReg, Operand] = {}

        def read(operand: Operand) -> Operand:
            if isinstance(operand, VReg):
                return values[operand]
            return self._read(operand, env)

        for op in block.ops:
            if op.kind in (OpKind.BINARY, OpKind.UNARY, OpKind.CAST, OpKind.SELECT):
                operands = [read(o) for o in op.operands]
                if op.kind is OpKind.BINARY and op.op in ("/", "%"):
                    # Gate the divisor so untaken paths cannot trap.
                    operands[1] = self._select(
                        path_cond, operands[1], Const(1, operands[1].type),
                        operands[1].type,
                    )
                assert op.dest is not None
                values[op.dest] = self._emit(
                    op.kind, op.dest.type, operands, op=op.op
                )
            elif op.kind is OpKind.LOAD:
                assert op.dest is not None and op.array is not None
                index = read(op.operands[0])
                elements = arrays[op.array]
                values[op.dest] = self._mux_tree(index, elements, op.dest.type)
            elif op.kind is OpKind.STORE:
                assert op.array is not None
                index = read(op.operands[0])
                value = read(op.operands[1])
                elements = arrays[op.array]
                element_type = op.array.type.element  # type: ignore[union-attr]
                if isinstance(index, Const):
                    if 0 <= index.value < len(elements):
                        elements[index.value] = self._select(
                            path_cond, value, elements[index.value], element_type
                        )
                else:
                    for k in range(len(elements)):
                        hit = self._emit(
                            OpKind.BINARY, BOOL, [index, Const(k, _INDEX)], op="=="
                        )
                        guarded = self._and(path_cond, hit)
                        elements[k] = self._select(
                            guarded, value, elements[k], element_type
                        )
            else:
                raise UnsupportedFeature(
                    _KEY,
                    f"{op.kind.value} has no combinational equivalent",
                    rule=RULE_STRUCTURE,
                    location=op.location,
                )
        for symbol, value in block.var_writes.items():
            new_value = read(value)
            old_value = env.get(symbol, Const(0, symbol.type))
            env[symbol] = self._select(path_cond, new_value, old_value, symbol.type)
        return env, arrays, values

    def _mux_tree(self, index: Operand, elements: List[Operand], result_type):
        if isinstance(index, Const):
            if 0 <= index.value < len(elements):
                return elements[index.value]
            return Const(0, result_type)
        result: Operand = Const(0, result_type)
        for k, element in enumerate(elements):
            hit = self._emit(
                OpKind.BINARY, BOOL, [index, Const(k, _INDEX)], op="=="
            )
            result = self._select(hit, element, result, result_type)
        return result

    def _merge_outputs(self, final_envs: List[Tuple[Operand, Dict, Dict]]) -> None:
        if not final_envs:
            return
        _, env, arrays = self._merge(final_envs) if len(final_envs) > 1 else final_envs[0]
        for symbol in self.cdfg.globals_written:
            if isinstance(symbol.type, ArrayType):
                continue
            if symbol in env:
                self.netlist.global_outputs[symbol] = env[symbol]
        for array in self.cdfg.arrays:
            if array.kind is SymbolKind.GLOBAL and array in arrays:
                self.netlist.array_outputs[array] = list(arrays[array])


class ConesDesign(CompiledDesign):
    def __init__(self, name: str, netlist: CombinationalNetlist,
                 tech: Technology, stats: Dict[str, object]):
        super().__init__(_KEY, name)
        self.netlist = netlist
        self.tech = tech
        self.stats = stats

    @property
    def artifact_kind(self) -> str:
        return "combinational"

    def run(self, args: Sequence[int] = (), process_args=None,
            max_cycles: int = 2_000_000, sim_backend: str = "interp",
            sim_profile=None, trace=None) -> FlowResult:
        # Combinational evaluation has one engine; sim_backend/sim_profile
        # apply to FSMD artifacts and are accepted for interface parity.
        t = ensure_trace(trace)
        with t.span("sim", cat="phase"):
            result = evaluate(self.netlist, args=args)
            t.count(ops=self.netlist.op_count)
        critical = self.netlist.critical_path_ns(self.tech)
        return FlowResult(
            value=result.value,
            cycles=0,  # combinational: no clock at all
            time_ns=critical,
            globals=result.globals,
            stats={"ops": self.netlist.op_count, "depth": self.netlist.depth(),
                   **self.stats},
        )

    def cost(self, tech: Technology = DEFAULT_TECH, trace=None) -> DesignCost:
        t = ensure_trace(trace)
        with t.span("bind", cat="phase"):
            area = self.netlist.area_ge(tech)
            critical = self.netlist.critical_path_ns(tech)
            t.count(functional_units=self.netlist.op_count)
        return DesignCost(
            area_ge=area,
            clock_ns=0.0,
            critical_path_ns=critical,
            states=0,
            registers=0,
            functional_units=self.netlist.op_count,
        )

    def verilog(self, trace=None) -> str:
        from ..rtl.verilog import emit_combinational

        t = ensure_trace(trace)
        with t.span("emit", cat="phase"):
            text = emit_combinational(self.netlist, trace=trace)
        return text


class ConesFlow(Flow):
    metadata = FlowMetadata(
        key=_KEY,
        title="Cones",
        year=1988,
        note="Early, combinational only",
        concurrency="compiler",
        concurrency_detail="flattens each function into a single two-level network",
        timing="none",
        timing_detail="combinational logic only — no clock",
        artifact="combinational",
        reference="Stroud, Munoz & Pierce, IEEE D&T 1988",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "Cones' strict C subset has no pointers",
        FEATURE_CHANNELS: "Cones is combinational: no channels",
        FEATURE_WAIT: "Cones is combinational: no clock to wait on",
        FEATURE_DELAY: "Cones is combinational: no clock to wait on",
        FEATURE_WITHIN: "Cones has no timing constraints",
        FEATURE_RECURSION: "Cones forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        tech: Technology = DEFAULT_TECH,
        max_unroll: int = 4096,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
            if program.processes:
                raise UnsupportedFeature(
                    _KEY,
                    "Cones has no processes",
                    rule=RULE_PROCESS,
                    location=program.processes[0].location,
                )
        with t.span("inline", cat="phase"):
            inlined, inline_stats = inline_program(
                program, info, roots=[function]
            )
            fn = inlined.function(function)
            fn, unrolled, resisted = try_full_unroll(
                fn, max_iterations=max_unroll
            )
            t.count(calls_inlined=inline_stats.calls_inlined,
                    loops_unrolled=unrolled)
        if resisted:
            raise FlowError(
                _KEY,
                f"{resisted} loop(s) have bounds the compiler cannot"
                " evaluate; Cones unrolls every loop at compile time",
                rule=RULE_UNBOUNDED_LOOP,
            )
        with t.span("cdfg", cat="phase"):
            with t.span("cdfg.pointer-plan", cat="analysis"):
                plan = plan_pointers(fn)
            cdfg = build_function(fn, info, plan)
            t.count(ops=cdfg.op_count())
        with t.span("passes", cat="phase"):
            optimize_cdfg(cdfg, opt_level=opt_level, trace=trace)
        with t.span("flatten", cat="phase"):
            netlist = _Flattener(cdfg, info.global_inits).flatten()
            t.count(netlist_ops=netlist.op_count)
        return ConesDesign(
            name=function,
            netlist=netlist,
            tech=tech,
            stats={
                "loops_unrolled": unrolled,
                "calls_inlined": inline_stats.calls_inlined,
            },
        )
