"""Flow framework: the common interface every surveyed language implements.

A *flow* packages one historical tool's semantics: which language features
it accepts (Table 1's restrictions), how it finds concurrency, and where it
puts clock-cycle boundaries.  All flows share the same frontend and IR, so
their outputs differ only by those semantics — which is what makes the
paper's comparisons measurable.

Usage::

    from repro.flows import compile_flow, run_flow, REGISTRY
    design = compile_flow(source, flow="handelc")
    result = design.run(args=(3, 4))
    print(result.value, result.cycles, result.time_ns)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.lint.diagnostics import FEATURE_TO_RULE, RULE_TIM_WITHIN_INFEASIBLE
from ..lang import ast_nodes as ast
from ..lang.errors import SourceLocation, UNKNOWN_LOCATION
from ..lang.semantic import SemanticInfo
from ..rtl.tech import DEFAULT_TECH, Technology
from ..trace import ensure_trace


class FlowError(Exception):
    """A program is outside what this flow can synthesize.

    ``rule`` carries the linter rule id predicting this rejection (empty
    when no rule covers it yet) and ``location`` points at the offending
    construct, so error text, linter output, and tests all agree."""

    def __init__(
        self,
        flow: str,
        message: str,
        rule: str = "",
        location: Optional[SourceLocation] = None,
    ):
        text = f"[{flow}] "
        if rule:
            text += f"{rule}: "
        text += message
        if location is not None and location != UNKNOWN_LOCATION:
            text += f" (at {location})"
        super().__init__(text)
        self.flow = flow
        self.rule = rule
        self.location = location
        self.reason = message

    def __reduce__(self):
        # Exception's default reduce replays __init__ with self.args (the
        # formatted text), which does not match this signature; rebuild
        # from the original fields so rejections cross process boundaries
        # intact (the parallel matrix runner pickles them).
        return (
            self.__class__,
            (self.flow, self.reason, self.rule, self.location),
        )


class UnsupportedFeature(FlowError):
    """The historical tool this flow models did not support the feature."""


# Safe to import here: the ``analysis`` import above already pulled in the
# scheduling package (analysis.dependence builds on it), so no cycle.
from ..scheduling.base import ConstraintInfeasible  # noqa: E402


class TimingInfeasible(FlowError, ConstraintInfeasible):
    """A ``within`` budget no schedule can meet.

    Dual-natured on purpose: a :class:`ConstraintInfeasible` (the
    scheduler's own exception, asserted by scheduling tests) *and* a
    :class:`FlowError` carrying ``rule=TIM102-within-infeasible`` — so the
    matrix engine classifies the cell as a rule-predicted rejection and the
    time-sensitive checker's verdict can be cross-validated against it."""

    def __init__(
        self,
        flow: str,
        message: str,
        rule: str = RULE_TIM_WITHIN_INFEASIBLE,
        location: Optional[SourceLocation] = None,
    ):
        FlowError.__init__(self, flow, message, rule=rule, location=location)


@dataclass(frozen=True)
class FlowMetadata:
    """One row of Table 1, plus the axes the paper's analysis uses."""

    key: str
    title: str
    year: int
    note: str                 # Table 1's one-line characterization
    concurrency: str          # 'explicit' | 'compiler' | 'structural'
    concurrency_detail: str
    timing: str               # how cycles are placed
    timing_detail: str
    artifact: str             # 'fsmd' | 'combinational' | 'dataflow' | 'api'
    reference: str = ""


@dataclass
class FlowResult:
    """What running a compiled design produced."""

    value: Optional[int]
    cycles: int
    time_ns: float
    globals: Dict[str, object] = field(default_factory=dict)
    channel_log: Dict[str, List[int]] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)

    def observable(self) -> Tuple:
        return (
            self.value,
            tuple(sorted(
                (k, tuple(v) if isinstance(v, list) else v)
                for k, v in self.globals.items()
            )),
            tuple(sorted((k, tuple(v)) for k, v in self.channel_log.items())),
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot (stats are filtered to scalars so
        arbitrary flow bookkeeping cannot break serialization)."""
        return {
            "value": self.value,
            "cycles": self.cycles,
            "time_ns": self.time_ns,
            "globals": {
                k: list(v) if isinstance(v, (list, tuple)) else v
                for k, v in self.globals.items()
            },
            "channel_log": {k: list(v) for k, v in self.channel_log.items()},
            "stats": {
                k: v for k, v in self.stats.items()
                if isinstance(v, (int, float, str, bool))
            },
        }


@dataclass
class DesignCost:
    """Area/clock summary comparable across artifact kinds."""

    area_ge: float = 0.0
    clock_ns: float = 0.0       # 0 for unclocked artifacts
    critical_path_ns: float = 0.0
    states: int = 0
    registers: int = 0
    functional_units: int = 0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def fmax_mhz(self) -> float:
        return 1000.0 / self.clock_ns if self.clock_ns > 0 else 0.0


@dataclass
class LaneOutcome:
    """One lane of a batched run: a :class:`FlowResult` or the error the
    scalar backend would have raised for the same arguments."""

    args: Tuple[int, ...]
    result: Optional[FlowResult] = None
    error: str = ""
    error_kind: str = ""        # exception class name

    @property
    def ok(self) -> bool:
        return not self.error and self.result is not None


class CompiledDesign(abc.ABC):
    """A synthesized artifact that can be simulated and priced."""

    def __init__(self, flow_key: str, name: str):
        self.flow_key = flow_key
        self.name = name

    @property
    @abc.abstractmethod
    def artifact_kind(self) -> str:
        """'fsmd-system' | 'combinational' | 'dataflow'."""

    @abc.abstractmethod
    def run(
        self,
        args: Sequence[int] = (),
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
        trace=None,
    ) -> FlowResult:
        """Simulate the hardware on concrete inputs.

        ``sim_backend`` selects the FSMD simulation engine ("interp" or
        "compiled"); artifacts without an FSMD (combinational netlists,
        dataflow) have a single engine and ignore it.  ``sim_profile``
        takes a :class:`repro.sim.SimProfile` to fill in; ``trace`` a
        :class:`repro.trace.TraceContext` that receives the ``sim`` span
        (with the backend's compile/execute split as leaf spans)."""

    def run_batch(
        self,
        arg_sets: Sequence[Sequence[int]],
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
        trace=None,
    ) -> List["LaneOutcome"]:
        """Simulate the design on every argument set in ``arg_sets``.

        Each lane is observably identical to ``run`` on the same
        arguments; lanes that error capture the scalar backend's error
        instead of poisoning the batch.  This default runs the lanes
        sequentially (still amortizing the one compiled artifact); FSMD
        designs override it with the lockstep batch engine."""
        from ..lang.errors import InterpError

        lanes: List[LaneOutcome] = []
        for args in arg_sets:
            args = tuple(args)
            try:
                result = self.run(
                    args=args, process_args=process_args,
                    max_cycles=max_cycles, sim_backend=sim_backend,
                    sim_profile=sim_profile, trace=trace,
                )
            except InterpError as failure:
                lanes.append(LaneOutcome(
                    args=args, error=str(failure),
                    error_kind=type(failure).__name__,
                ))
            else:
                lanes.append(LaneOutcome(args=args, result=result))
        return lanes

    @abc.abstractmethod
    def cost(self, tech: Technology = DEFAULT_TECH, trace=None) -> DesignCost:
        """Estimate area and timing (binding spans land in ``trace``)."""

    def verilog(self, trace=None) -> str:
        """Verilog text for the artifact (flows override where supported)."""
        raise NotImplementedError(
            f"{self.flow_key} does not emit Verilog for this artifact"
        )


class Flow(abc.ABC):
    """One surveyed language/compiler."""

    metadata: FlowMetadata

    # Feature name -> human explanation for every language feature the
    # historical tool rejected.  ``check_features`` enforces the table and
    # ``flows.registry.lint_rules`` derives the linter's feature rules from
    # it, so the compiler and the linter cannot drift apart.
    FORBIDDEN: Dict[str, str] = {}

    @abc.abstractmethod
    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        **options,
    ) -> CompiledDesign:
        """Synthesize ``function`` (plus any ``process`` functions)."""

    def compile_source(
        self, source: str, function: str = "main", trace=None, **options
    ) -> CompiledDesign:
        from ..lang import analyze, parse_program

        t = ensure_trace(trace)
        with t.span("parse", cat="phase"):
            program = parse_program(source)
        with t.span("semantic", cat="phase"):
            info = analyze(program)
        return self.compile(program, info, function, trace=trace, **options)

    def check_features(
        self,
        info: SemanticInfo,
        roots: List[str],
        forbidden: Optional[Dict[str, str]] = None,
    ) -> None:
        """Reject programs using features the historical tool lacked.
        ``forbidden`` maps feature name -> human explanation; defaults to
        the flow's class-level :attr:`FORBIDDEN` table."""
        if forbidden is None:
            forbidden = self.FORBIDDEN
        used = set()
        for root in roots:
            used |= info.features_of(root)
        for feature, reason in forbidden.items():
            if feature in used:
                location = UNKNOWN_LOCATION
                for root in roots:
                    location = info.feature_site(root, feature)
                    if location != UNKNOWN_LOCATION:
                        break
                raise UnsupportedFeature(
                    self.metadata.key,
                    reason,
                    rule=FEATURE_TO_RULE.get(feature, ""),
                    location=location,
                )


def _roots_of(program: ast.Program, function: str) -> List[str]:
    """The entry function plus every ``process`` (they run concurrently)."""
    roots = [function]
    roots += [p.name for p in program.processes if p.name != function]
    return roots


#: Back-compat alias; the helper is flow-internal, use the underscore name.
roots_of = _roots_of
