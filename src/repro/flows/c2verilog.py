"""C2Verilog (CompiLogic / C Level Design, 1998).

Table 1: *"Comprehensive; company defunct."*  The broadest C support of the
survey: *"It can translate pointers, recursion, dynamic memory allocation,
and other thorny C constructs"* — and purely compiler-driven concurrency
and timing: *"The C2Verilog compiler inserts cycles using complex rules and
provides mechanisms for imposing timing constraints.  Unlike HardwareC,
these constraints are outside the language."*

Accordingly this flow accepts pointers (lowered via Andersen analysis, with
the unified-memory fallback), unrolls bounded recursion, rejects the
*language-level* hardware extensions (``par``, channels, ``within``), and
exposes its timing knobs as compile options (``clock_ns``, ``resources``).
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_DELAY,
    FEATURE_PAR,
    FEATURE_WAIT,
    FEATURE_WITHIN,
    SemanticInfo,
)
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import ResourceSet
from ..trace import ensure_trace
from .base import CompiledDesign, Flow, FlowMetadata, _roots_of
from .scheduled import synthesize_fsmd_system


class C2VerilogFlow(Flow):
    metadata = FlowMetadata(
        key="c2verilog",
        title="C2Verilog",
        year=1998,
        note="Comprehensive; company defunct",
        concurrency="compiler",
        concurrency_detail="compiler-extracted ILP from plain ANSI C",
        timing="compiler",
        timing_detail="cycles inserted by compiler rules; constraints are"
                      " compile options outside the language",
        artifact="fsmd",
        reference="Soderman & Panchul, FCCM 1998; US patent 6,226,776",
    )

    FORBIDDEN = {
        FEATURE_PAR: "C2Verilog compiles plain C; no par construct",
        FEATURE_CHANNELS: "C2Verilog compiles plain C; no channels",
        FEATURE_WITHIN: "C2Verilog timing constraints live outside"
                        " the language (use clock_ns/resources"
                        " compile options)",
        FEATURE_WAIT: "C2Verilog compiles plain C; no wait()",
        FEATURE_DELAY: "C2Verilog compiles plain C; no delay()",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        resources: ResourceSet = None,
        clock_ns: float = 5.0,
        tech: Technology = DEFAULT_TECH,
        pointer_analysis: bool = True,
        recursion_depth: int = 32,
        narrow: bool = False,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        return synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            resources=resources or ResourceSet.typical(),
            clock_ns=clock_ns,
            tech=tech,
            scheduler="list",
            pointer_analysis=pointer_analysis,
            inline_max_depth=recursion_depth,
            enforce_constraints=False,
            narrow=narrow,
            opt_level=opt_level,
            trace=trace,
        )
