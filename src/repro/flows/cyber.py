"""Cyber (Wakabayashi, NEC, 1999).

Table 1: *"Restricted C with extensions (NEC)."*  Cyber accepts BDL, a C
variant with hardware extensions that *"prohibits recursive functions and
pointers.  Timing can be implicit or explicit."*  The flow enforces exactly
those restrictions: explicit timing through ``wait``/``delay`` is accepted
alongside compiler-scheduled implicit timing.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantic import FEATURE_POINTERS, FEATURE_RECURSION, SemanticInfo
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import ResourceSet
from ..trace import ensure_trace
from .base import CompiledDesign, Flow, FlowMetadata, _roots_of
from .scheduled import synthesize_fsmd_system


class CyberFlow(Flow):
    metadata = FlowMetadata(
        key="cyber",
        title="Cyber (BDL)",
        year=1999,
        note="Restricted C with extensions (NEC)",
        concurrency="explicit",
        concurrency_detail="BDL processes and hardware extensions",
        timing="mixed",
        timing_detail="implicit (scheduled) or explicit (wait/delay) timing",
        artifact="fsmd",
        reference="Wakabayashi, DATE 1999",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "BDL prohibits pointers",
        FEATURE_RECURSION: "BDL prohibits recursive functions",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        resources: ResourceSet = None,
        clock_ns: float = 5.0,
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        return synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            resources=resources or ResourceSet.typical(),
            clock_ns=clock_ns,
            tech=tech,
            scheduler="list",
            enforce_constraints=True,
            opt_level=opt_level,
            trace=trace,
        )
