"""Design wrapper for FSMDs built directly (without a scheduler):
the syntax-directed Handel-C flow and the structural Ocapi API."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..rtl.fsmd import FSMDSystem
from ..rtl.tech import DEFAULT_TECH, Technology
from ..sim import simulate
from ..sim.profile import SimProfile
from ..trace import ensure_trace
from .base import CompiledDesign, DesignCost, FlowResult


class DirectDesign(CompiledDesign):
    """An FSMD system whose states were authored directly."""

    def __init__(
        self,
        flow_key: str,
        name: str,
        system: FSMDSystem,
        tech: Technology = DEFAULT_TECH,
        stats: Optional[Dict[str, object]] = None,
    ):
        super().__init__(flow_key, name)
        self.system = system
        self.tech = tech
        self.stats: Dict[str, object] = stats or {}

    @property
    def artifact_kind(self) -> str:
        return "fsmd-system"

    def run(
        self,
        args: Sequence[int] = (),
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
        trace=None,
    ) -> FlowResult:
        t = ensure_trace(trace)
        profile = sim_profile
        if t.enabled and profile is None:
            profile = SimProfile(backend=sim_backend)
        with t.span("sim", cat="phase"):
            sim = simulate(
                self.system, args=args, process_args=process_args,
                max_cycles=max_cycles, sim_backend=sim_backend,
                profile=profile,
            )
            if t.enabled and profile is not None:
                t.leaf("sim.compile", profile.compile_s, cat="sim")
                t.leaf("sim.execute", profile.execute_s, cat="sim",
                       cycles=profile.cycles)
                t.count(backend=sim_backend, cycles=sim.cycles,
                        stall_cycles=sim.stall_cycles)
        cost = self.cost(self.tech)
        return FlowResult(
            value=sim.value,
            cycles=sim.cycles,
            time_ns=sim.cycles * cost.clock_ns,
            globals=sim.globals,
            channel_log=sim.channel_log,
            stats={"stall_cycles": sim.stall_cycles, **self.stats},
        )

    def cost(self, tech: Technology = DEFAULT_TECH, trace=None) -> DesignCost:
        from ..binding.datapath_cost import estimate_fsmd_cost

        t = ensure_trace(trace)
        with t.span("bind", cat="phase"):
            costs = [estimate_fsmd_cost(f, tech) for f in self.system.fsmds]
            states = sum(f.n_states for f in self.system.fsmds)
            registers = sum(len(f.registers) for f in self.system.fsmds)
            t.count(states=states, registers=registers)
        return DesignCost(
            area_ge=sum(c.total_area_ge for c in costs),
            clock_ns=max(c.clock_ns for c in costs),
            critical_path_ns=max(c.critical_path_ns for c in costs),
            states=states,
            registers=registers,
            functional_units=0,
        )

    def verilog(self, trace=None) -> str:
        from ..rtl.verilog import emit_fsmd_system

        t = ensure_trace(trace)
        with t.span("emit", cat="phase"):
            text = emit_fsmd_system(self.system, trace=trace)
            t.count(lines=text.count("\n"))
        return text
