"""Design wrapper for FSMDs built directly (without a scheduler):
the syntax-directed Handel-C flow and the structural Ocapi API."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..rtl.fsmd import FSMDSystem
from ..rtl.tech import DEFAULT_TECH, Technology
from ..sim import simulate
from .base import CompiledDesign, DesignCost, FlowResult


class DirectDesign(CompiledDesign):
    """An FSMD system whose states were authored directly."""

    def __init__(
        self,
        flow_key: str,
        name: str,
        system: FSMDSystem,
        tech: Technology = DEFAULT_TECH,
        stats: Optional[Dict[str, object]] = None,
    ):
        super().__init__(flow_key, name)
        self.system = system
        self.tech = tech
        self.stats: Dict[str, object] = stats or {}

    @property
    def artifact_kind(self) -> str:
        return "fsmd-system"

    def run(
        self,
        args: Sequence[int] = (),
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
    ) -> FlowResult:
        sim = simulate(
            self.system, args=args, process_args=process_args,
            max_cycles=max_cycles, sim_backend=sim_backend,
            profile=sim_profile,
        )
        cost = self.cost(self.tech)
        return FlowResult(
            value=sim.value,
            cycles=sim.cycles,
            time_ns=sim.cycles * cost.clock_ns,
            globals=sim.globals,
            channel_log=sim.channel_log,
            stats={"stall_cycles": sim.stall_cycles, **self.stats},
        )

    def cost(self, tech: Technology = DEFAULT_TECH) -> DesignCost:
        from ..binding.datapath_cost import estimate_fsmd_cost

        costs = [estimate_fsmd_cost(f, tech) for f in self.system.fsmds]
        return DesignCost(
            area_ge=sum(c.total_area_ge for c in costs),
            clock_ns=max(c.clock_ns for c in costs),
            critical_path_ns=max(c.critical_path_ns for c in costs),
            states=sum(f.n_states for f in self.system.fsmds),
            registers=sum(len(f.registers) for f in self.system.fsmds),
            functional_units=0,
        )

    def verilog(self) -> str:
        from ..rtl.verilog import emit_fsmd_system

        return emit_fsmd_system(self.system)
