"""Ocapi (Schaumont et al., IMEC, 1998).

Table 1: *"Algorithmic structural descriptions."*  In Ocapi, *"the user's
C++ program runs to generate a data structure that represents hardware"* —
the host language is a metaprogram whose execution *builds* the design from
supplied datapath/FSM classes.

The faithful reproduction is therefore not a C-to-hardware compiler but a
**structural construction API in the host language** (here, Python): the
user's Python program instantiates registers, memories, and states, wires
transitions, and obtains the same simulatable/priceable FSMD artifact every
other flow produces.

Example::

    m = OcapiModule("accumulate")
    n = m.input("n")
    acc, i = m.register("acc"), m.register("i")
    loop, done = m.state("loop"), m.state("done")
    m.entry.latch(acc, m.entry.const(0)).latch(i, m.entry.const(0)).goto(loop)
    loop.latch(acc, loop.add(acc, i)).latch(i, loop.add(i, loop.const(1)))
    loop.branch(loop.lt(i, n), loop, done)
    done.done(done.read(acc))
    design = m.build()
    design.run(args=(10,))

``OcapiFlow.compile`` intentionally refuses C input: Ocapi never parsed C.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..lang import ast_nodes as ast
from ..lang.semantic import SemanticInfo
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, BOOL, INT, IntType, Type, make_int
from ..ir.ops import Const, Operand, Operation, OpKind, VReg, VarRead
from ..rtl.fsmd import CondNext, Done, FSMD, FSMDSystem, NextState, State
from ..rtl.tech import DEFAULT_TECH, Technology
from .base import CompiledDesign, Flow, FlowError, FlowMetadata
from .direct import DirectDesign

_KEY = "ocapi"

Value = Union[Operand, Symbol, int]


class OcapiState:
    """One FSM state under construction.  Arithmetic helpers emit datapath
    operations into this state and return wires usable as operands."""

    def __init__(self, module: "OcapiModule", state: State):
        self.module = module
        self._state = state

    # -- operand coercion ----------------------------------------------------

    def _value(self, value: Value, width: int = 32) -> Operand:
        if isinstance(value, Symbol):
            return VarRead(value)
        if isinstance(value, int):
            return Const(make_int(width, True).wrap(value), make_int(width, True))
        return value

    def const(self, value: int, width: int = 32, signed: bool = True) -> Const:
        int_type = make_int(width, signed)
        return Const(int_type.wrap(value), int_type)

    def read(self, register: Symbol) -> VarRead:
        return VarRead(register)

    # -- datapath operations ---------------------------------------------------

    def _binary(self, op: str, a: Value, b: Value, result_type: Type) -> VReg:
        left, right = self._value(a), self._value(b)
        dest = VReg(result_type)
        self._state.ops.append(
            Operation(kind=OpKind.BINARY, dest=dest, operands=[left, right], op=op)
        )
        return dest

    def add(self, a: Value, b: Value) -> VReg:
        return self._binary("+", a, b, self._result_type(a, b))

    def sub(self, a: Value, b: Value) -> VReg:
        return self._binary("-", a, b, self._result_type(a, b))

    def mul(self, a: Value, b: Value) -> VReg:
        return self._binary("*", a, b, self._result_type(a, b))

    def div(self, a: Value, b: Value) -> VReg:
        return self._binary("/", a, b, self._result_type(a, b))

    def mod(self, a: Value, b: Value) -> VReg:
        return self._binary("%", a, b, self._result_type(a, b))

    def band(self, a: Value, b: Value) -> VReg:
        return self._binary("&", a, b, self._result_type(a, b))

    def bor(self, a: Value, b: Value) -> VReg:
        return self._binary("|", a, b, self._result_type(a, b))

    def bxor(self, a: Value, b: Value) -> VReg:
        return self._binary("^", a, b, self._result_type(a, b))

    def shl(self, a: Value, b: Value) -> VReg:
        return self._binary("<<", a, b, self._result_type(a, b))

    def shr(self, a: Value, b: Value) -> VReg:
        return self._binary(">>", a, b, self._result_type(a, b))

    def eq(self, a: Value, b: Value) -> VReg:
        return self._binary("==", a, b, BOOL)

    def ne(self, a: Value, b: Value) -> VReg:
        return self._binary("!=", a, b, BOOL)

    def lt(self, a: Value, b: Value) -> VReg:
        return self._binary("<", a, b, BOOL)

    def le(self, a: Value, b: Value) -> VReg:
        return self._binary("<=", a, b, BOOL)

    def gt(self, a: Value, b: Value) -> VReg:
        return self._binary(">", a, b, BOOL)

    def ge(self, a: Value, b: Value) -> VReg:
        return self._binary(">=", a, b, BOOL)

    def select(self, cond: Value, if_true: Value, if_false: Value) -> VReg:
        operands = [self._value(cond), self._value(if_true), self._value(if_false)]
        dest = VReg(operands[1].type)
        self._state.ops.append(
            Operation(kind=OpKind.SELECT, dest=dest, operands=operands)
        )
        return dest

    def load(self, memory: Symbol, index: Value) -> VReg:
        assert isinstance(memory.type, ArrayType)
        dest = VReg(memory.type.element)
        self._state.ops.append(
            Operation(kind=OpKind.LOAD, dest=dest,
                      operands=[self._value(index)], array=memory)
        )
        return dest

    def store(self, memory: Symbol, index: Value, value: Value) -> "OcapiState":
        self._state.ops.append(
            Operation(kind=OpKind.STORE,
                      operands=[self._value(index), self._value(value)],
                      array=memory)
        )
        return self

    def _result_type(self, a: Value, b: Value) -> Type:
        for value in (a, b):
            if isinstance(value, Symbol):
                return value.type
            if isinstance(value, (VReg, Const, VarRead)):
                return value.type
        return INT

    # -- sequential behaviour ----------------------------------------------

    def latch(self, register: Symbol, value: Value) -> "OcapiState":
        self._state.latches[register] = self._value(value)
        return self

    def goto(self, target: "OcapiState") -> "OcapiState":
        self._state.transition = NextState(target._state.id)
        return self

    def branch(
        self, cond: Value, if_true: "OcapiState", if_false: "OcapiState"
    ) -> "OcapiState":
        self._state.transition = CondNext(
            cond=self._value(cond),
            if_true=if_true._state.id,
            if_false=if_false._state.id,
        )
        return self

    def done(self, value: Optional[Value] = None) -> "OcapiState":
        self._state.transition = Done(
            self._value(value) if value is not None else None
        )
        return self


class OcapiModule:
    """A hardware module under construction (Ocapi's datapath+FSM pair)."""

    def __init__(self, name: str, return_width: int = 32):
        self.name = name
        self._fsmd = FSMD(name=name, return_type=make_int(return_width, True))
        self._entry: Optional[OcapiState] = None

    # -- storage -----------------------------------------------------------

    def input(self, name: str, width: int = 32, signed: bool = True) -> Symbol:
        symbol = Symbol(name, make_int(width, signed), SymbolKind.PARAM)
        self._fsmd.params.append(symbol)
        self._fsmd.registers.append(symbol)
        return symbol

    def register(self, name: str, width: int = 32, signed: bool = True) -> Symbol:
        symbol = Symbol(name, make_int(width, signed), SymbolKind.LOCAL)
        self._fsmd.registers.append(symbol)
        return symbol

    def memory(self, name: str, size: int, width: int = 32,
               signed: bool = True) -> Symbol:
        symbol = Symbol(
            name, ArrayType(make_int(width, signed), size), SymbolKind.LOCAL
        )
        self._fsmd.arrays.append(symbol)
        return symbol

    # -- control -------------------------------------------------------------

    @property
    def entry(self) -> OcapiState:
        if self._entry is None:
            self._entry = self.state("entry")
            self._fsmd.entry = self._entry._state.id
        return self._entry

    def state(self, label: str = "") -> OcapiState:
        state = State(
            id=len(self._fsmd.states),
            block_id=len(self._fsmd.states),
            step_index=0,
            label=label or f"s{len(self._fsmd.states)}",
        )
        self._fsmd.states.append(state)
        return OcapiState(self, state)

    # -- elaboration -----------------------------------------------------------

    def build(self, tech: Technology = DEFAULT_TECH) -> DirectDesign:
        """Elaborate: running the construction program has produced the
        hardware data structure; wrap it for simulation and costing."""
        if not self._fsmd.states:
            raise FlowError(_KEY, "module has no states")
        for state in self._fsmd.states:
            if state.transition is None:
                raise FlowError(
                    _KEY, f"state {state.label!r} has no transition"
                    " (call goto/branch/done)"
                )
        system = FSMDSystem(fsmds=[self._fsmd])
        return DirectDesign(_KEY, self.name, system, tech)


class OcapiFlow(Flow):
    metadata = FlowMetadata(
        key=_KEY,
        title="Ocapi",
        year=1998,
        note="Algorithmic structural descriptions",
        concurrency="structural",
        concurrency_detail="the host program instantiates parallel structure",
        timing="structural",
        timing_detail="the designer assigns each FSM state a cycle",
        artifact="api",
        reference="Schaumont et al., DAC 1998",
    )

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        **options,
    ) -> CompiledDesign:
        raise FlowError(
            _KEY,
            "Ocapi is not a C compiler: the host program *constructs*"
            " hardware.  Use repro.flows.ocapi.OcapiModule to build a"
            " design structurally.",
        )
