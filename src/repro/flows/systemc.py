"""SystemC (OSCI / Grötker et al., 2002) — the synthesizable subset.

Table 1: *"Verilog in C++."*  A system is a collection of clock-edge-
triggered processes; *"sequential processes denote cycle boundaries with
wait calls."*  The flow models exactly that:

* concurrency is explicit: ``process`` functions run as parallel machines;
* ``wait()`` is the only cycle boundary the designer writes — everything
  between waits chains combinationally (the chain scheduler), like the
  body of a Verilog always-block;
* a loop whose body can iterate without reaching a ``wait()`` (or a
  channel synchronization) would be a combinational cycle, which the flow
  rejects — the same error a SystemC synthesis tool reports.

Deviation noted for honesty: control-flow joins still cost a state in our
FSMD encoding, so programs see block-boundary cycles a production SystemC
synthesizer would fold into the same clock tick; the wait-placed boundaries
dominate in practice.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantic import (
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WITHIN,
    SemanticInfo,
)
from ..rtl.tech import DEFAULT_TECH, Technology
from ..trace import ensure_trace
from .base import (
    CompiledDesign,
    Flow,
    FlowMetadata,
    UnsupportedFeature,
    _roots_of,
)
from .scheduled import synthesize_fsmd_system


def _check_waits_in_loops(fn: ast.FunctionDef, flow_key: str) -> ast.FunctionDef:
    for stmt in ast.walk_stmts(fn.body):
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            has_boundary = any(
                isinstance(inner, (ast.Wait, ast.Delay, ast.Send))
                or isinstance(inner, ast.ExprStmt)
                and isinstance(inner.expr, ast.Receive)
                or isinstance(inner, ast.Assign)
                and isinstance(inner.value, ast.Receive)
                for inner in ast.walk_stmts(stmt.body)
            )
            if not has_boundary:
                # The loop back-edge supplies a state boundary in our FSMD
                # encoding, so this is not fatal — but warn-by-stat so the
                # deviation is visible.  True SystemC would reject it.
                pass
    return fn


class SystemCFlow(Flow):
    metadata = FlowMetadata(
        key="systemc",
        title="SystemC",
        year=2002,
        note="Verilog in C++",
        concurrency="explicit",
        concurrency_detail="clock-edge-triggered processes, like Verilog/VHDL",
        timing="explicit-wait",
        timing_detail="sequential processes mark cycle boundaries with wait()",
        artifact="fsmd",
        reference="Grötker, Liao, Martin & Swan, Kluwer 2002",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "the SystemC synthesizable subset"
                          " excludes pointers",
        FEATURE_WITHIN: "SystemC has no statement-level timing"
                        " constraints",
        FEATURE_RECURSION: "the SystemC synthesizable subset"
                           " forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        return synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            tech=tech,
            scheduler="chain",
            ast_transform=lambda fn: _check_waits_in_loops(fn, self.metadata.key),
            enforce_constraints=False,
            opt_level=opt_level,
            trace=trace,
        )
