"""Handel-C (Embedded Solutions / Celoxica, 1998-2003).

Table 1: *"C with CSP (Celoxica)."*  The survey's purest implicit timing
rule — *"In Handel-C, only assignment and delay statements take a clock
cycle"* — plus OCCAM-style ``par`` blocks and rendezvous channels.

The flow is **syntax-directed**, as the real compiler was: it builds the
FSM straight from the AST, without a scheduler.

* Every assignment / delay / send / receive is one state = one clock.
* Control constructs take **zero** cycles: their tests are lowered into the
  *predecessor* state's logic as a combinational decision tree, reading the
  in-flight (D-input) values of anything that state latches — so a loop's
  exit test sees the assignment that just happened, exactly as Handel-C's
  enable-chain hardware does.  A loop whose body contains no
  cycle-consuming statement would be a combinational cycle and is rejected.
* ``par`` runs straight-line branches in lockstep: the k-th assignments of
  all branches share one state (the branches are statically race-free).
  Two channel operations cannot share a state; the later branch's is
  staggered one cycle, mirroring the serialization a real compiler inserts
  for a shared channel interface.

Expressions are pure combinational hardware, so ``&&``/``||``/``?:``
evaluate **eagerly** (gates always compute) — a semantic departure from C
that Handel-C's own manual documents.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.lint.diagnostics import (
    RULE_COMB_CYCLE,
    RULE_STRUCTURE,
    RULE_WITHIN,
)
from ..lang import ast_nodes as ast
from ..lang.errors import SemanticError, SourceLocation
from ..lang.semantic import (
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WITHIN,
    SemanticInfo,
)
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, BOOL, ChannelType, PointerType
from ..ir.ops import Const, Operand, Operation, OpKind, VReg, VarRead
from ..ir.passes import inline_program
from ..rtl.fsmd import CondNext, Done, FSMD, FSMDSystem, NextState, State
from ..rtl.tech import DEFAULT_TECH, Technology
from ..trace import ensure_trace
from .base import (
    CompiledDesign,
    Flow,
    FlowMetadata,
    UnsupportedFeature,
    _roots_of,
)
from .direct import DirectDesign

_KEY = "handelc"


# ---------------------------------------------------------------------------
# Control-graph nodes (the pre-FSM representation)
# ---------------------------------------------------------------------------

_node_ids = itertools.count()


@dataclass
class _Node:
    id: int = field(default_factory=lambda: next(_node_ids), init=False)


@dataclass
class _Action(_Node):
    """One clock cycle: combinational ops plus register/memory effects."""

    ops: List[Operation] = field(default_factory=list)
    latches: Dict[Symbol, Operand] = field(default_factory=dict)
    succ: Optional[_Node] = None
    state_id: Optional[int] = None

    def has_channel_op(self) -> bool:
        return any(op.kind in (OpKind.SEND, OpKind.RECV) for op in self.ops)


@dataclass
class _Decision(_Node):
    cond: ast.Expr = None  # type: ignore[assignment]
    on_true: Optional[_Node] = None
    on_false: Optional[_Node] = None


@dataclass
class _Join(_Node):
    succ: Optional[_Node] = None


@dataclass
class _Return(_Node):
    value: Optional[ast.Expr] = None


Fragment = Tuple[_Node, _Join]


class _HandelCBuilder:
    """Builds one process's FSMD from its (inlined) AST."""

    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        self.loop_stack: List[Tuple[_Join, _Node]] = []  # (break join, continue node)
        # Lockstep ``par`` merges that put accesses to one memory — at least
        # one a write — from *different* branches into the same cycle.  The
        # frontend already rejects write-write races on whole variables, but
        # write-read array overlap slips through and contends for the RAM
        # port; the TIM202 checker rule predicts exactly this count.
        self.par_memory_conflicts = 0
        self.par_conflict_sites: List[SourceLocation] = []

    # -- expression lowering -------------------------------------------------

    def _lower(
        self, expr: ast.Expr, ops: List[Operation],
        subst: Optional[Dict[Symbol, Operand]] = None,
    ) -> Operand:
        subst = subst or {}
        if isinstance(expr, ast.IntLiteral):
            assert expr.type is not None
            return Const(expr.value, expr.type)
        if isinstance(expr, ast.BoolLiteral):
            return Const(int(expr.value), BOOL)
        if isinstance(expr, ast.Identifier):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, ArrayType):
                raise UnsupportedFeature(
                    _KEY, "array used as a scalar value",
                    rule=RULE_STRUCTURE, location=expr.location,
                )
            if symbol in subst:
                return subst[symbol]
            return VarRead(symbol)
        if isinstance(expr, ast.UnaryOp):
            operand = self._lower(expr.operand, ops, subst)
            assert expr.type is not None
            dest = VReg(expr.type)
            ops.append(Operation(kind=OpKind.UNARY, dest=dest, operands=[operand],
                                 op=expr.op))
            return dest
        if isinstance(expr, ast.BinaryOp):
            # Hardware gates always compute: eager && and ||.
            left = self._lower(expr.left, ops, subst)
            right = self._lower(expr.right, ops, subst)
            assert expr.type is not None
            dest = VReg(expr.type)
            ops.append(Operation(kind=OpKind.BINARY, dest=dest,
                                 operands=[left, right], op=expr.op))
            return dest
        if isinstance(expr, ast.Conditional):
            cond = self._lower(expr.cond, ops, subst)
            then_value = self._lower(expr.then, ops, subst)
            else_value = self._lower(expr.otherwise, ops, subst)
            assert expr.type is not None
            dest = VReg(expr.type)
            ops.append(Operation(kind=OpKind.SELECT, dest=dest,
                                 operands=[cond, then_value, else_value]))
            return dest
        if isinstance(expr, ast.ArrayIndex):
            base = expr.base
            if not isinstance(base, ast.Identifier):
                raise UnsupportedFeature(
                    _KEY, "only named arrays are indexable",
                    rule=RULE_STRUCTURE, location=expr.location,
                )
            array: Symbol = base.symbol  # type: ignore[attr-defined]
            index = self._lower(expr.index, ops, subst)
            assert expr.type is not None
            dest = VReg(expr.type)
            ops.append(Operation(kind=OpKind.LOAD, dest=dest, operands=[index],
                                 array=array, location=expr.location))
            return dest
        if isinstance(expr, ast.Receive):
            raise UnsupportedFeature(
                _KEY, "recv(c) must stand alone: use `x = recv(c);`"
                      " (Handel-C's `c ? x`)",
                rule=RULE_STRUCTURE, location=expr.location,
            )
        if isinstance(expr, ast.Call):
            raise UnsupportedFeature(
                _KEY, "calls must be inlined first",
                rule=RULE_STRUCTURE, location=expr.location,
            )
        raise UnsupportedFeature(
            _KEY, f"cannot lower {type(expr).__name__}",
            rule=RULE_STRUCTURE, location=expr.location,
        )

    # -- statements ------------------------------------------------------------

    def _empty_fragment(self) -> Fragment:
        join = _Join()
        return join, join

    def _action_fragment(self, action: _Action) -> Fragment:
        join = _Join()
        action.succ = join
        return action, join

    def compile_stmt(self, stmt: ast.Stmt) -> Fragment:
        if isinstance(stmt, ast.Block):
            return self._sequence([self.compile_stmt(s) for s in stmt.statements])
        if isinstance(stmt, ast.VarDecl):
            return self._compile_decl(stmt)
        if isinstance(stmt, ast.Assign):
            return self._compile_assign(stmt)
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Receive):
                action = _Action()
                channel: Symbol = stmt.expr.symbol  # type: ignore[attr-defined]
                dest = VReg(channel.type.element)  # type: ignore[union-attr]
                action.ops.append(
                    Operation(kind=OpKind.RECV, dest=dest, channel=channel,
                              location=stmt.location)
                )
                return self._action_fragment(action)
            return self._empty_fragment()  # pure expressions cost nothing
        if isinstance(stmt, ast.If):
            decision = _Decision(cond=stmt.cond)
            then_entry, then_tail = self.compile_stmt(stmt.then)
            join = _Join()
            decision.on_true = then_entry
            then_tail.succ = join
            if stmt.otherwise is not None:
                else_entry, else_tail = self.compile_stmt(stmt.otherwise)
                decision.on_false = else_entry
                else_tail.succ = join
            else:
                decision.on_false = join
            return decision, join
        if isinstance(stmt, ast.While):
            decision = _Decision(cond=stmt.cond)
            join = _Join()
            self.loop_stack.append((join, decision))
            body_entry, body_tail = self.compile_stmt(stmt.body)
            self.loop_stack.pop()
            decision.on_true = body_entry
            decision.on_false = join
            body_tail.succ = decision
            return decision, join
        if isinstance(stmt, ast.DoWhile):
            decision = _Decision(cond=stmt.cond)
            join = _Join()
            self.loop_stack.append((join, decision))
            body_entry, body_tail = self.compile_stmt(stmt.body)
            self.loop_stack.pop()
            body_tail.succ = decision
            decision.on_true = body_entry
            decision.on_false = join
            return body_entry, join
        if isinstance(stmt, ast.For):
            fragments: List[Fragment] = []
            if stmt.init is not None:
                fragments.append(self.compile_stmt(stmt.init))
            decision = _Decision(
                cond=stmt.cond if stmt.cond is not None else _true_literal()
            )
            join = _Join()
            step_anchor = _Join()
            self.loop_stack.append((join, step_anchor))
            body_entry, body_tail = self.compile_stmt(stmt.body)
            self.loop_stack.pop()
            if stmt.step is not None:
                step_entry, step_tail = self.compile_stmt(stmt.step)
            else:
                step_entry, step_tail = self._empty_fragment()
            decision.on_true = body_entry
            decision.on_false = join
            body_tail.succ = step_anchor
            step_anchor.succ = step_entry
            step_tail.succ = decision
            loop_fragment: Fragment = (decision, join)
            fragments.append(loop_fragment)
            return self._sequence(fragments)
        if isinstance(stmt, ast.Break):
            entry = _Join()
            entry.succ = self.loop_stack[-1][0]
            return entry, _Join()  # dangling tail: code after break is dead
        if isinstance(stmt, ast.Continue):
            entry = _Join()
            entry.succ = self.loop_stack[-1][1]
            return entry, _Join()
        if isinstance(stmt, ast.Return):
            entry = _Join()
            entry.succ = _Return(value=stmt.value)
            return entry, _Join()
        if isinstance(stmt, ast.Par):
            return self._compile_par(stmt)
        if isinstance(stmt, ast.Seq):
            return self.compile_stmt(stmt.body)
        if isinstance(stmt, ast.Wait):
            return self._action_fragment(_Action())
        if isinstance(stmt, ast.Delay):
            fragments = [
                self._action_fragment(_Action()) for _ in range(max(stmt.cycles, 1))
            ]
            return self._sequence(fragments)
        if isinstance(stmt, ast.Send):
            action = _Action()
            channel: Symbol = stmt.symbol  # type: ignore[attr-defined]
            value = self._lower(stmt.value, action.ops)
            action.ops.append(
                Operation(kind=OpKind.SEND, operands=[value], channel=channel,
                          location=stmt.location)
            )
            return self._action_fragment(action)
        if isinstance(stmt, ast.Within):
            raise UnsupportedFeature(
                _KEY, "Handel-C has no timing constraints: timing is the"
                      " one-cycle-per-assignment rule itself",
                rule=RULE_WITHIN, location=stmt.location,
            )
        raise UnsupportedFeature(
            _KEY, f"cannot compile {type(stmt).__name__}",
            rule=RULE_STRUCTURE, location=stmt.location,
        )

    def _sequence(self, fragments: List[Fragment]) -> Fragment:
        if not fragments:
            return self._empty_fragment()
        entry, tail = fragments[0]
        for next_entry, next_tail in fragments[1:]:
            tail.succ = next_entry
            tail = next_tail
        return entry, tail

    def _compile_decl(self, decl: ast.VarDecl) -> Fragment:
        symbol: Symbol = decl.symbol  # type: ignore[attr-defined]
        if isinstance(symbol.type, ArrayType):
            fragments: List[Fragment] = []
            element = symbol.type.element
            for i, expr in enumerate(decl.array_init or []):
                action = _Action()
                value = self._lower(expr, action.ops)
                if value.type != element:
                    cast = VReg(element)
                    action.ops.append(
                        Operation(kind=OpKind.CAST, dest=cast, operands=[value])
                    )
                    value = cast
                action.ops.append(
                    Operation(kind=OpKind.STORE,
                              operands=[Const(i, _index_type()), value],
                              array=symbol, location=decl.location)
                )
                fragments.append(self._action_fragment(action))
            return self._sequence(fragments)
        if decl.init is None:
            return self._empty_fragment()  # registers power up at zero
        action = _Action()
        if isinstance(decl.init, ast.Receive):
            channel: Symbol = decl.init.symbol  # type: ignore[attr-defined]
            value: Operand = VReg(channel.type.element)  # type: ignore[union-attr]
            action.ops.append(
                Operation(kind=OpKind.RECV, dest=value, channel=channel,
                          location=decl.location)
            )
        else:
            value = self._lower(decl.init, action.ops)
        action.latches[symbol] = value
        return self._action_fragment(action)

    def _compile_assign(self, assign: ast.Assign) -> Fragment:
        action = _Action()
        if isinstance(assign.target, ast.Identifier):
            symbol: Symbol = assign.target.symbol  # type: ignore[attr-defined]
            if isinstance(assign.value, ast.Receive):
                channel: Symbol = assign.value.symbol  # type: ignore[attr-defined]
                dest = VReg(channel.type.element)  # type: ignore[union-attr]
                action.ops.append(
                    Operation(kind=OpKind.RECV, dest=dest, channel=channel,
                              location=assign.location)
                )
                action.latches[symbol] = dest
            else:
                action.latches[symbol] = self._lower(assign.value, action.ops)
            return self._action_fragment(action)
        if isinstance(assign.target, ast.ArrayIndex):
            base = assign.target.base
            if not isinstance(base, ast.Identifier):
                raise UnsupportedFeature(
                    _KEY, "only named arrays are assignable",
                    rule=RULE_STRUCTURE, location=assign.location,
                )
            array: Symbol = base.symbol  # type: ignore[attr-defined]
            index = self._lower(assign.target.index, action.ops)
            if isinstance(assign.value, ast.Receive):
                channel = assign.value.symbol  # type: ignore[attr-defined]
                value: Operand = VReg(channel.type.element)  # type: ignore[union-attr]
                action.ops.append(
                    Operation(kind=OpKind.RECV, dest=value, channel=channel,
                              location=assign.location)
                )
            else:
                value = self._lower(assign.value, action.ops)
            element = array.type.element  # type: ignore[union-attr]
            if value.type != element:
                cast = VReg(element)
                action.ops.append(
                    Operation(kind=OpKind.CAST, dest=cast, operands=[value])
                )
                value = cast
            action.ops.append(
                Operation(kind=OpKind.STORE, operands=[index, value],
                          array=array, location=assign.location)
            )
            return self._action_fragment(action)
        raise UnsupportedFeature(
            _KEY, "unsupported assignment target",
            rule=RULE_STRUCTURE, location=assign.location,
        )

    # -- par --------------------------------------------------------------

    def _compile_par(self, par: ast.Par) -> Fragment:
        chains: List[List[_Action]] = []
        for branch in par.branches:
            entry, tail = self.compile_stmt(branch)
            chains.append(self._linearize(entry, tail, par.location))
        merged: List[_Action] = []
        pending = [list(chain) for chain in chains]
        while any(pending):
            combined = _Action()
            used_channel = False
            # array -> [(branch index, is_write, op location)] this cycle.
            cycle_memory: Dict[Symbol, List[Tuple[int, bool, object]]] = {}
            for branch_index, queue in enumerate(pending):
                if not queue:
                    continue
                head = queue[0]
                if head.has_channel_op():
                    if used_channel:
                        continue  # stagger: this branch waits a cycle
                    used_channel = True
                for op in head.ops:
                    if op.is_memory() and op.array is not None:
                        cycle_memory.setdefault(op.array, []).append(
                            (branch_index, op.kind is OpKind.STORE, op.location)
                        )
                combined.ops.extend(head.ops)
                for symbol, value in head.latches.items():
                    combined.latches[symbol] = value
                queue.pop(0)
            for array, accesses in cycle_memory.items():
                branches = {b for b, _, _ in accesses}
                if len(branches) > 1 and any(w for _, w, _ in accesses):
                    self.par_memory_conflicts += 1
                    site = next(
                        (loc for _, write, loc in accesses
                         if write and loc is not None),
                        par.location,
                    )
                    self.par_conflict_sites.append(site)
            merged.append(combined)
        return self._sequence([self._action_fragment(a) for a in merged]) \
            if merged else self._empty_fragment()

    def _linearize(
        self, entry: _Node, tail: _Join, location: SourceLocation
    ) -> List[_Action]:
        """A par branch must be a straight-line chain of actions."""
        actions: List[_Action] = []
        node: Optional[_Node] = entry
        seen = set()
        while node is not None and node is not tail:
            if node.id in seen:
                raise UnsupportedFeature(
                    _KEY, "par branches must be straight-line code",
                    rule=RULE_STRUCTURE, location=location,
                )
            seen.add(node.id)
            if isinstance(node, _Action):
                actions.append(node)
                node = node.succ
            elif isinstance(node, _Join):
                node = node.succ
            else:
                raise UnsupportedFeature(
                    _KEY,
                    "par branches must be straight-line code (no control"
                    " flow inside par; put loops in a process instead)",
                    rule=RULE_STRUCTURE, location=location,
                )
        return actions

    # -- FSM construction ---------------------------------------------------

    def build(self) -> FSMD:
        entry_action = _Action()  # function prologue: one activation cycle
        body_entry, body_tail = self.compile_stmt(self.fn.body)
        entry_action.succ = body_entry
        body_tail.succ = _Return(value=None)

        actions = self._collect_actions(entry_action)
        fsmd = FSMD(
            name=self.fn.name,
            return_type=self.fn.return_type,
            tolerant_memory=True,
        )
        for index, action in enumerate(actions):
            action.state_id = index
        for action in actions:
            state = State(
                id=action.state_id,  # type: ignore[arg-type]
                block_id=action.state_id,  # type: ignore[arg-type]
                step_index=0,
                ops=action.ops,
                latches=dict(action.latches),
                label=f"hc{action.state_id}",
            )
            fsmd.states.append(state)
        for action in actions:
            state = fsmd.states[action.state_id]  # type: ignore[index]
            subst = dict(action.latches)
            state.transition = self._resolve(action.succ, state, subst, set())
        fsmd.entry = 0
        self._collect_storage(fsmd)
        return fsmd

    def _collect_actions(self, entry: _Action) -> List[_Action]:
        ordered: List[_Action] = []
        seen = set()
        work: List[_Node] = [entry]
        while work:
            node = work.pop(0)
            if node is None or node.id in seen:
                continue
            seen.add(node.id)
            if isinstance(node, _Action):
                ordered.append(node)
                work.append(node.succ)
            elif isinstance(node, _Join):
                work.append(node.succ)
            elif isinstance(node, _Decision):
                work.append(node.on_true)
                work.append(node.on_false)
            # _Return: terminal
        return ordered

    def _resolve(
        self,
        node: Optional[_Node],
        state: State,
        subst: Dict[Symbol, Operand],
        visiting: set,
    ):
        if node is None:
            raise SemanticError(
                "dangling control edge in Handel-C graph (unreachable code"
                " after break/continue/return?)",
                self.fn.location,
            )
        if isinstance(node, _Action):
            return NextState(node.state_id)  # type: ignore[arg-type]
        if isinstance(node, _Return):
            if node.value is None:
                return Done(None)
            value = self._lower(node.value, state.ops, subst)
            return Done(value)
        if node.id in visiting:
            raise UnsupportedFeature(
                _KEY,
                "zero-time loop: a loop body must contain at least one"
                " assignment or delay (otherwise the hardware is a"
                " combinational cycle)",
                rule=RULE_COMB_CYCLE,
                location=(
                    node.cond.location
                    if isinstance(node, _Decision)
                    else self.fn.location
                ),
            )
        visiting = visiting | {node.id}
        if isinstance(node, _Join):
            return self._resolve(node.succ, state, subst, visiting)
        if isinstance(node, _Decision):
            cond = self._lower(node.cond, state.ops, subst)
            true_arm = self._resolve(node.on_true, state, subst, visiting)
            false_arm = self._resolve(node.on_false, state, subst, visiting)
            return CondNext(cond=cond, if_true=true_arm, if_false=false_arm)
        raise SemanticError(f"unknown node {type(node).__name__}", self.fn.location)

    def _collect_storage(self, fsmd: FSMD) -> None:
        registers: Dict[Symbol, None] = {}
        arrays: Dict[Symbol, None] = {}
        for param in self.fn.params:
            symbol: Symbol = param.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, ArrayType):
                arrays.setdefault(symbol, None)
            elif not isinstance(symbol.type, (ChannelType, PointerType)):
                registers.setdefault(symbol, None)
            fsmd.params.append(symbol)
        for state in fsmd.states:
            for symbol in state.latches:
                registers.setdefault(symbol, None)
            for op in state.ops:
                if op.array is not None:
                    arrays.setdefault(op.array, None)
                for operand in op.operands:
                    if isinstance(operand, VarRead):
                        registers.setdefault(operand.var, None)
            self._transition_reads(state.transition, registers)
        fsmd.registers = list(registers)
        fsmd.arrays = list(arrays)

    def _transition_reads(self, transition, registers: Dict[Symbol, None]) -> None:
        if isinstance(transition, CondNext):
            if isinstance(transition.cond, VarRead):
                registers.setdefault(transition.cond.var, None)
            self._transition_reads(transition.if_true, registers)
            self._transition_reads(transition.if_false, registers)
        elif isinstance(transition, Done):
            if isinstance(transition.value, VarRead):
                registers.setdefault(transition.value.var, None)


def _true_literal() -> ast.Expr:
    literal = ast.BoolLiteral(value=True)
    literal.type = BOOL
    return literal


def _index_type():
    from ..lang.types import IntType

    return IntType(32, signed=False)


# ---------------------------------------------------------------------------
# Design wrapper and the flow class
# ---------------------------------------------------------------------------


class HandelCFlow(Flow):
    metadata = FlowMetadata(
        key=_KEY,
        title="Handel-C",
        year=1998,
        note="C with CSP (Celoxica)",
        concurrency="explicit",
        concurrency_detail="par statement groups and OCCAM-like rendezvous",
        timing="implicit-rule",
        timing_detail="every assignment and delay takes exactly one cycle",
        artifact="fsmd",
        reference="Celoxica, Handel-C Language Reference Manual RM-1003-4.0",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "Handel-C has no pointers",
        FEATURE_WITHIN: "Handel-C has no timing constraints",
        FEATURE_RECURSION: "Handel-C forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        roots = _roots_of(program, function)
        with t.span("check", cat="phase"):
            self.check_features(info, roots)
        with t.span("inline", cat="phase"):
            inlined, inline_stats = inline_program(program, info, roots=roots)
            t.count(calls_inlined=inline_stats.calls_inlined)
        fsmds: List[FSMD] = []
        par_memory_conflicts = 0
        # Handel-C is syntax-directed: the AST maps straight to states, so
        # the build step plays the cdfg+schedule phases in one.
        with t.span("cdfg", cat="phase"):
            for fn in inlined.functions:
                builder = _HandelCBuilder(fn)
                fsmds.append(builder.build())
                par_memory_conflicts += builder.par_memory_conflicts
            t.count(states=sum(f.n_states for f in fsmds))
        fsmds.sort(key=lambda f: 0 if f.name == function else 1)
        system = FSMDSystem(
            fsmds=fsmds,
            channels=[c.symbol for c in program.channels],  # type: ignore[attr-defined]
            global_registers=[
                g.symbol for g in program.globals  # type: ignore[attr-defined]
                if not isinstance(g.var_type, ArrayType)
            ],
            global_arrays=[
                g.symbol for g in program.globals  # type: ignore[attr-defined]
                if isinstance(g.var_type, ArrayType)
            ],
            global_inits=dict(info.global_inits),
        )
        return DirectDesign(
            flow_key=_KEY,
            name=function,
            system=system,
            tech=tech,
            stats={
                "calls_inlined": inline_stats.calls_inlined,
                "par_memory_conflicts": par_memory_conflicts,
            },
        )
