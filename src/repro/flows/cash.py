"""CASH (Budiu & Goldstein, CMU, 2002).

Table 1: *"Synthesizes asynchronous circuits."*  CASH *"is unique because
it generates asynchronous hardware.  It identifies instruction-level
parallelism in ANSI C and generates asynchronous dataflow circuits"* — the
paper's example of a *"VLIW-compiler-like approach, analyzing
inter-instruction dependencies and scheduling instructions to maximize
parallelism."*

The flow compiles plain C (pointers included, via the same Andersen
analysis as C2Verilog — CASH's Pegasus IR did its own) into an optimized
CDFG, then *spatializes* it: every operation is its own asynchronous
functional unit, and execution timing follows token arrival rather than a
clock (:mod:`repro.sim.async_sim`).  Area is correspondingly the sum of all
operators plus per-edge handshake buffering — spatial computation trades
silicon for the absence of a clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.lint.diagnostics import RULE_PROCESS
from ..analysis.pointer import PointerPlan, plan_pointers
from ..lang import ast_nodes as ast
from ..lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_DELAY,
    FEATURE_PAR,
    FEATURE_WAIT,
    FEATURE_WITHIN,
    SemanticInfo,
)
from ..lang.symtab import SymbolKind
from ..lang.types import ArrayType
from ..ir import build_function
from ..ir.cdfg import FunctionCDFG
from ..ir.ops import VReg
from ..ir.passes import inline_program
from ..ir.passes.fixpoint import optimize_cdfg
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import op_area_ge
from ..sim.async_sim import AsyncSimulator
from ..trace import ensure_trace
from .base import (
    CompiledDesign,
    DesignCost,
    Flow,
    FlowMetadata,
    FlowResult,
    UnsupportedFeature,
    _roots_of,
)

_KEY = "cash"


class CashDesign(CompiledDesign):
    def __init__(
        self,
        name: str,
        cdfg: FunctionCDFG,
        plan: PointerPlan,
        info: SemanticInfo,
        tech: Technology,
        stats: Dict[str, object],
    ):
        super().__init__(_KEY, name)
        self.cdfg = cdfg
        self.plan = plan
        self.info = info
        self.tech = tech
        self.stats = stats

    @property
    def artifact_kind(self) -> str:
        return "dataflow"

    def _initial_state(self):
        register_init = {}
        memory_init = {}
        for symbol in self.cdfg.registers:
            if symbol.kind is SymbolKind.GLOBAL:
                init = self.info.global_inits.get(symbol.name)
                if isinstance(init, int):
                    register_init[symbol] = init
        for array in self.cdfg.arrays:
            if array.kind is SymbolKind.GLOBAL:
                init = self.info.global_inits.get(array.name)
                if isinstance(init, list):
                    memory_init[array] = list(init)
        if self.plan.memory_symbol is not None:
            memory_init[self.plan.memory_symbol] = self.plan.initial_memory(
                self.info.global_inits
            )
        return register_init, memory_init

    def run(
        self,
        args: Sequence[int] = (),
        process_args=None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
        trace=None,
    ) -> FlowResult:
        # Token dataflow has one engine; sim_backend/sim_profile apply to
        # FSMD artifacts and are accepted for interface parity.
        t = ensure_trace(trace)
        with t.span("sim", cat="phase"):
            register_init, memory_init = self._initial_state()
            sim = AsyncSimulator(
                self.cdfg, args=args, register_init=register_init,
                memory_init=memory_init, tech=self.tech, max_blocks=max_cycles,
            )
            result = sim.run()
            t.count(ops_fired=result.ops_fired)
        flow_globals: Dict[str, object] = {}
        for symbol in self.cdfg.registers:
            if symbol.kind is SymbolKind.GLOBAL:
                flow_globals[symbol.name] = result.registers[symbol.unique_name]
        for array in self.cdfg.arrays:
            if array.kind is SymbolKind.GLOBAL:
                flow_globals[array.name] = result.memories[array.unique_name]
        # Globals the plan moved into the unified memory surface from there.
        if self.plan.memory_symbol is not None:
            words = result.memories[self.plan.memory_symbol.unique_name]
            for symbol, base in self.plan.layout.items():
                if symbol.kind is SymbolKind.GLOBAL:
                    if isinstance(symbol.type, ArrayType):
                        flow_globals[symbol.name] = words[
                            base : base + symbol.type.size
                        ]
                    else:
                        flow_globals[symbol.name] = words[base]
        return FlowResult(
            value=result.value,
            cycles=0,  # asynchronous: there is no clock to count
            time_ns=result.completion_ns,
            globals=flow_globals,
            stats={
                "ops_fired": result.ops_fired,
                "average_parallelism": result.average_parallelism,
                **self.stats,
            },
        )

    def cost(self, tech: Technology = DEFAULT_TECH, trace=None) -> DesignCost:
        t = ensure_trace(trace)
        if t.enabled:
            with t.span("bind", cat="phase"):
                cost = self.cost(tech)
                t.count(functional_units=cost.functional_units,
                        registers=cost.registers)
            return cost
        # Spatial computation: every static operation is a unit of its own.
        op_area = sum(op_area_ge(op, tech) for op in self.cdfg.iter_ops())
        edges = 0
        for block in self.cdfg.blocks:
            for op in block.ops:
                edges += sum(1 for o in op.operands if isinstance(o, VReg))
        handshake_area = 40.0 * edges  # latch + C-element per dataflow edge
        register_area = sum(
            tech.register_area_ge(s.type.bit_width) for s in self.cdfg.registers
        )
        memory_area = sum(
            tech.memory_area_ge(a.type.size, a.type.element.bit_width, 1)
            for a in self.cdfg.arrays
            if isinstance(a.type, ArrayType)
        )
        ops = list(self.cdfg.iter_ops())
        return DesignCost(
            area_ge=op_area + handshake_area + register_area + memory_area,
            clock_ns=0.0,
            critical_path_ns=0.0,
            states=0,
            registers=len(self.cdfg.registers),
            functional_units=len(ops),
            detail={"handshake_area_ge": handshake_area},
        )


class CashFlow(Flow):
    metadata = FlowMetadata(
        key=_KEY,
        title="CASH",
        year=2002,
        note="Synthesizes asynchronous circuits",
        concurrency="compiler",
        concurrency_detail="VLIW-like dependence analysis; maximal dataflow ILP",
        timing="asynchronous",
        timing_detail="no clock: per-operator handshakes, token-driven",
        artifact="dataflow",
        reference="Budiu & Goldstein, FPL 2002 (LNCS 2438)",
    )

    FORBIDDEN = {
        FEATURE_PAR: "CASH compiles plain ANSI C: no par",
        FEATURE_CHANNELS: "CASH compiles plain ANSI C: no channels",
        FEATURE_WAIT: "CASH circuits have no clock to wait on",
        FEATURE_DELAY: "CASH circuits have no clock to wait on",
        FEATURE_WITHIN: "CASH has no timing constraints",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        tech: Technology = DEFAULT_TECH,
        pointer_analysis: bool = True,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
            if program.processes:
                raise UnsupportedFeature(
                    _KEY,
                    "CASH compiles a single C program",
                    rule=RULE_PROCESS,
                    location=program.processes[0].location,
                )
        with t.span("inline", cat="phase"):
            inlined, inline_stats = inline_program(
                program, info, roots=[function]
            )
            t.count(calls_inlined=inline_stats.calls_inlined)
        fn = inlined.function(function)
        with t.span("cdfg", cat="phase"):
            with t.span("cdfg.pointer-plan", cat="analysis"):
                plan = plan_pointers(fn, enable_analysis=pointer_analysis)
            cdfg = build_function(fn, info, plan)
            t.count(ops=cdfg.op_count())
        with t.span("passes", cat="phase"):
            optimize_cdfg(cdfg, opt_level=opt_level, trace=trace)
        return CashDesign(
            name=function,
            cdfg=cdfg,
            plan=plan,
            info=info,
            tech=tech,
            stats={"calls_inlined": inline_stats.calls_inlined},
        )
