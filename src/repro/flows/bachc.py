"""Bach C (Sharp, 2001).

Table 1: *"Untimed semantics (Sharp)."*  Explicit concurrency (``par``) and
rendezvous communication, arrays but **no pointers**, and — the defining
trait — untimed semantics: *"The compiler does the scheduling; the number
of cycles taken by each construct is not set by a rule."*  The flow
therefore hands the whole program to the list scheduler with generous
resources and lets it pick the cycles.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantic import FEATURE_POINTERS, FEATURE_RECURSION, SemanticInfo
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import ResourceSet
from ..trace import ensure_trace
from .base import CompiledDesign, Flow, FlowMetadata, _roots_of
from .scheduled import synthesize_fsmd_system


class BachCFlow(Flow):
    metadata = FlowMetadata(
        key="bachc",
        title="Bach C",
        year=2001,
        note="Untimed semantics (Sharp)",
        concurrency="explicit",
        concurrency_detail="explicit par statements and rendezvous channels",
        timing="untimed",
        timing_detail="compiler schedules freely; no per-construct cycle rule",
        artifact="fsmd",
        reference="Kambe et al., ASP-DAC 2001",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "Bach C supports arrays but not pointers",
        FEATURE_RECURSION: "Bach C forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        resources: ResourceSet = None,
        clock_ns: float = 5.0,
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        return synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            resources=resources or ResourceSet.unlimited(),
            clock_ns=clock_ns,
            tech=tech,
            scheduler="list",
            enforce_constraints=True,
            opt_level=opt_level,
            trace=trace,
        )
