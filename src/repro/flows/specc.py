"""SpecC (Gajski et al., UC Irvine, 2000).

Table 1: *"Resolutely refinement-based."*  SpecC adds FSM, concurrency,
pipelining, and structure constructs through thirty-three keywords, and
*"systems written in the complete language must be refined into the
synthesizable subset."*

The flow models the refinement ladder with a ``refine`` option:

* ``"specification"`` — implicit clock boundaries: unconstrained scheduling
  (unlimited resources), the early exploratory model;
* ``"implementation"`` — boundaries made concrete under real resource
  limits, the refined synthesizable model.

Compiling the same program at both levels shows the cycle/area movement the
refinement methodology trades in.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantic import FEATURE_RECURSION, SemanticInfo
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import ResourceSet
from ..trace import ensure_trace
from .base import CompiledDesign, Flow, FlowError, FlowMetadata, _roots_of
from .scheduled import synthesize_fsmd_system


class SpecCFlow(Flow):
    metadata = FlowMetadata(
        key="specc",
        title="SpecC",
        year=2000,
        note="Resolutely refinement-based",
        concurrency="explicit",
        concurrency_detail="par/pipe/FSM constructs (33 added keywords)",
        timing="refinement",
        timing_detail="implicit boundaries made concrete during refinement",
        artifact="fsmd",
        reference="Gajski et al., Kluwer 2000",
    )

    FORBIDDEN = {
        FEATURE_RECURSION: "the SpecC synthesizable subset forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        refine: str = "implementation",
        resources: ResourceSet = None,
        clock_ns: float = 5.0,
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        if refine == "specification":
            chosen = ResourceSet.unlimited()
        elif refine == "implementation":
            chosen = resources or ResourceSet.typical()
        else:
            raise FlowError(
                self.metadata.key,
                f"unknown refinement level {refine!r}"
                " (use 'specification' or 'implementation')",
            )
        design = synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            resources=chosen,
            clock_ns=clock_ns,
            tech=tech,
            scheduler="list",
            enforce_constraints=True,
            opt_level=opt_level,
            trace=trace,
        )
        design.stats["refine"] = refine
        return design
