"""Shared machinery for flows that schedule a CDFG into an FSMD system.

Two scheduling styles live here:

* :func:`list_schedule_function` (imported) — the behavioral-synthesis
  style (HardwareC, Bach C, C2Verilog, SpecC): the compiler packs
  operations into cycles under resource limits and timing constraints;
* :func:`chain_schedule_function` — the syntax-directed style
  (Transmogrifier C, SystemC sequential processes): one state per basic
  block, arbitrary-depth combinational chaining within it, and extra states
  only at fences (wait/delay/send/recv).  The clock period then *is* the
  worst chained path — which is exactly why Transmogrifier users had to
  recode to meet timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.pointer import PointerPlan, plan_pointers
from ..binding import allocate_registers, bind_functional_units, estimate_cost
from ..ir import build_function
from ..ir.cdfg import FunctionCDFG
from ..ir.ops import OpKind
from ..ir.passes import inline_program
from ..ir.passes.fixpoint import optimize_cdfg
from ..lang import ast_nodes as ast
from ..lang.semantic import SemanticInfo
from ..lang.symtab import SymbolKind
from ..lang.types import ArrayType
from ..rtl.fsmd import FSMD, FSMDSystem, fsmd_from_schedule
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.base import BlockSchedule, ConstraintInfeasible, FunctionSchedule
from ..scheduling.list_scheduler import list_schedule_function
from ..scheduling.resources import ResourceSet, op_delay_ns
from ..sim import simulate, simulate_batched
from ..sim.profile import SimProfile
from ..trace import ensure_trace
from .base import (
    CompiledDesign,
    DesignCost,
    FlowResult,
    LaneOutcome,
    TimingInfeasible,
    _roots_of,
)


def _first_within_location(fn: ast.FunctionDef):
    """Where the function's first ``within`` block starts (diagnostics)."""
    for stmt in ast.walk_stmts(fn.body):
        if isinstance(stmt, ast.Within):
            return stmt.location
    return None


def chain_schedule_function(
    cdfg: FunctionCDFG,
    tech: Technology = DEFAULT_TECH,
    scheduler_name: str = "chain",
) -> FunctionSchedule:
    """One state per block; fences get states of their own.

    All non-fence operations of a block share its single step, chained
    combinationally; ``op_finish_ns`` records the dataflow-longest path so
    the cost model can report the (often enormous) implied clock period.
    """
    schedule = FunctionSchedule(
        cdfg=cdfg, clock_ns=0.0, scheduler=scheduler_name, resources=None
    )
    for block in cdfg.reachable_blocks():
        op_step: Dict[int, int] = {}
        start_ns: Dict[int, float] = {}
        finish_ns: Dict[int, float] = {}
        # VReg id -> (step it was computed in, finish time within that step).
        vreg_ready: Dict[int, tuple] = {}
        step = 0
        step_dirty = False
        # Memories stored to in the current step: a subsequent access to the
        # same memory must wait for the synchronous write to commit at the
        # state edge, so it opens a new state (a RAM cannot forward within
        # one combinational cycle).
        stored_this_step: set = set()
        for op in block.ops:
            if (
                op.is_memory()
                and op.array is not None
                and op.array.unique_name in stored_this_step
            ):
                step += 1
                step_dirty = False
                stored_this_step = set()
            if op.kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.SEND, OpKind.RECV):
                if step_dirty:
                    step += 1
                op_step[op.id] = step
                start_ns[op.id] = 0.0
                finish_ns[op.id] = op_delay_ns(op, tech)
                if op.dest is not None:
                    vreg_ready[op.dest.id] = (step, finish_ns[op.id])
                step += max(op.cycles, 1) if op.kind is OpKind.DELAY else 1
                step_dirty = False
                stored_this_step = set()
                continue
            ready = 0.0
            for operand in op.operands:
                operand_id = getattr(operand, "id", None)
                if operand_id is not None and operand_id in vreg_ready:
                    ready_step, ready_time = vreg_ready[operand_id]
                    if ready_step == step:
                        ready = max(ready, ready_time)
                    # Values from earlier steps arrive through a register:
                    # available at the start of this step.
            op_step[op.id] = step
            start_ns[op.id] = ready
            finish_ns[op.id] = ready + op_delay_ns(op, tech)
            if op.dest is not None:
                vreg_ready[op.dest.id] = (step, finish_ns[op.id])
            if op.kind is OpKind.STORE and op.array is not None:
                stored_this_step.add(op.array.unique_name)
            step_dirty = True
        n_steps = step + 1 if (step_dirty or step == 0) else step
        schedule.blocks[block.id] = BlockSchedule(
            block=block,
            op_step=op_step,
            n_steps=max(n_steps, 1),
            op_start_ns=start_ns,
            op_finish_ns=finish_ns,
        )
    return schedule


@dataclass
class SynthesisArtifacts:
    """Everything a scheduled flow produced for one process."""

    fsmd: FSMD
    schedule: FunctionSchedule
    plan: PointerPlan
    cdfg: FunctionCDFG


class FSMDDesign(CompiledDesign):
    """A compiled multi-process FSMD design."""

    def __init__(
        self,
        flow_key: str,
        name: str,
        system: FSMDSystem,
        artifacts: List[SynthesisArtifacts],
        tech: Technology = DEFAULT_TECH,
        stats: Optional[Dict[str, object]] = None,
    ):
        super().__init__(flow_key, name)
        self.system = system
        self.artifacts = artifacts
        self.tech = tech
        self.stats: Dict[str, object] = stats or {}

    @property
    def artifact_kind(self) -> str:
        return "fsmd-system"

    def run(
        self,
        args: Sequence[int] = (),
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
        trace=None,
    ) -> FlowResult:
        t = ensure_trace(trace)
        # When tracing, always collect a SimProfile so the backend's
        # compile/execute split can be absorbed as leaf spans.
        profile = sim_profile
        if t.enabled and profile is None:
            profile = SimProfile(backend=sim_backend)
        with t.span("sim", cat="phase"):
            sim = simulate(
                self.system, args=args, process_args=process_args,
                max_cycles=max_cycles, sim_backend=sim_backend,
                profile=profile,
            )
            if t.enabled and profile is not None:
                t.leaf("sim.compile", profile.compile_s, cat="sim")
                t.leaf("sim.execute", profile.execute_s, cat="sim",
                       cycles=profile.cycles)
                t.count(backend=sim_backend, cycles=sim.cycles,
                        stall_cycles=sim.stall_cycles)
        cost = self.cost(self.tech)
        return FlowResult(
            value=sim.value,
            cycles=sim.cycles,
            time_ns=sim.cycles * cost.clock_ns,
            globals=sim.globals,
            channel_log=sim.channel_log,
            stats={
                "stall_cycles": sim.stall_cycles,
                "per_process_cycles": sim.per_process_cycles,
                **self.stats,
            },
        )

    def run_batch(
        self,
        arg_sets: Sequence[Sequence[int]],
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        sim_backend: str = "interp",
        sim_profile=None,
        trace=None,
    ) -> List[LaneOutcome]:
        if sim_backend != "batched":
            return super().run_batch(
                arg_sets, process_args=process_args, max_cycles=max_cycles,
                sim_backend=sim_backend, sim_profile=sim_profile, trace=trace,
            )
        t = ensure_trace(trace)
        profile = sim_profile
        if t.enabled and profile is None:
            profile = SimProfile(backend=sim_backend)
        with t.span("sim", cat="phase"):
            batch = simulate_batched(
                self.system, arg_sets, max_cycles=max_cycles,
                process_args=process_args, profile=profile,
            )
            if t.enabled and profile is not None:
                t.leaf("sim.compile", profile.compile_s, cat="sim")
                t.leaf("sim.execute", profile.execute_s, cat="sim",
                       cycles=profile.cycles, lanes=profile.lanes)
                t.count(backend=sim_backend, cycles=profile.cycles,
                        lanes=len(batch.lanes))
        # The whole batch shares one artifact: price it once, not per lane.
        cost = self.cost(self.tech)
        lanes: List[LaneOutcome] = []
        for lane in batch.lanes:
            if not lane.ok:
                lanes.append(LaneOutcome(
                    args=lane.args, error=lane.error,
                    error_kind=lane.error_kind,
                ))
                continue
            sim = lane.result
            lanes.append(LaneOutcome(args=lane.args, result=FlowResult(
                value=sim.value,
                cycles=sim.cycles,
                time_ns=sim.cycles * cost.clock_ns,
                globals=sim.globals,
                channel_log=sim.channel_log,
                stats={
                    "stall_cycles": sim.stall_cycles,
                    "per_process_cycles": sim.per_process_cycles,
                    **self.stats,
                },
            )))
        return lanes

    def cost(self, tech: Technology = DEFAULT_TECH, trace=None) -> DesignCost:
        t = ensure_trace(trace)
        total_area = 0.0
        clock = 0.0
        critical = 0.0
        states = 0
        registers = 0
        units = 0
        detail: Dict[str, float] = {}
        with t.span("bind", cat="phase"):
            for artifact in self.artifacts:
                with t.span("bind.fu", cat="bind"):
                    binding = bind_functional_units(artifact.schedule, tech)
                with t.span("bind.regalloc", cat="bind"):
                    allocation = allocate_registers(artifact.schedule)
                with t.span("bind.cost", cat="bind"):
                    cost = estimate_cost(
                        artifact.schedule, binding, allocation, tech
                    )
                total_area += cost.total_area_ge
                clock = max(clock, cost.clock_ns)
                critical = max(critical, cost.critical_path_ns)
                states += artifact.fsmd.n_states
                registers += allocation.register_count()
                units += len(binding.units)
                detail[f"{artifact.fsmd.name}.area_ge"] = cost.total_area_ge
            t.count(states=states, registers=registers,
                    functional_units=units)
        return DesignCost(
            area_ge=total_area,
            clock_ns=clock,
            critical_path_ns=critical,
            states=states,
            registers=registers,
            functional_units=units,
            detail=detail,
        )

    def verilog(self, trace=None) -> str:
        from ..rtl.verilog import emit_fsmd_system

        t = ensure_trace(trace)
        with t.span("emit", cat="phase"):
            text = emit_fsmd_system(self.system, trace=trace)
            t.count(lines=text.count("\n"))
        return text


def synthesize_fsmd_system(
    program: ast.Program,
    info: SemanticInfo,
    function: str,
    flow_key: str,
    resources: Optional[ResourceSet] = None,
    clock_ns: float = 5.0,
    tech: Technology = DEFAULT_TECH,
    scheduler: str = "list",
    pointer_analysis: bool = True,
    call_boundary: bool = False,
    ast_transform: Optional[Callable[[ast.FunctionDef], ast.FunctionDef]] = None,
    inline_max_depth: int = 32,
    enforce_constraints: bool = True,
    plan_override: Optional[Callable[[ast.FunctionDef], PointerPlan]] = None,
    narrow: bool = False,
    opt_level: int = 1,
    trace=None,
) -> FSMDDesign:
    """The common scheduled-flow pipeline:

    inline -> (per-flow AST transform) -> pointer plan -> CDFG -> optimize ->
    schedule (list or chain) -> FSMD, for the entry function and each
    ``process``.

    ``opt_level`` sets IR optimization effort: 0 = none, 1 = the classic
    fold/CSE/DCE/simplify loop (the default), 2 = the liveness-driven
    fixpoint pipeline (adds copy propagation, chain load/store
    elimination, and dead-variable elimination), >= 3 adds bit-width
    narrowing on top.  ``trace`` receives one phase span per stage.
    """
    t = ensure_trace(trace)
    roots = _roots_of(program, function)
    with t.span("inline", cat="phase"):
        inlined, inline_stats = inline_program(
            program, info, roots=roots, max_depth=inline_max_depth,
            call_boundary=call_boundary,
        )
        t.count(calls_inlined=inline_stats.calls_inlined,
                truncated=inline_stats.truncated_calls)
    narrow = narrow or opt_level >= 3
    artifacts: List[SynthesisArtifacts] = []
    memory_images = {}
    for fn in inlined.functions:
        if ast_transform is not None:
            fn = ast_transform(fn)
        with t.span("cdfg", cat="phase"):
            if plan_override is not None:
                plan = plan_override(fn)
            else:
                with t.span("cdfg.pointer-plan", cat="analysis"):
                    plan = plan_pointers(fn, enable_analysis=pointer_analysis)
            cdfg = build_function(fn, info, plan)
            t.count(ops=cdfg.op_count(), blocks=len(cdfg.blocks))
        with t.span("passes", cat="phase"):
            optimize_cdfg(cdfg, opt_level=opt_level, trace=trace)
            if narrow:
                from ..ir.passes.narrow import narrow_widths

                with t.span("pass.narrow", cat="pass"):
                    narrow_widths(cdfg)
        if not enforce_constraints:
            cdfg.constraints = []
        with t.span("schedule", cat="phase"):
            if scheduler == "chain":
                schedule = chain_schedule_function(
                    cdfg, tech, scheduler_name="chain"
                )
            else:
                try:
                    schedule = list_schedule_function(
                        cdfg, resources or ResourceSet.typical(), tech,
                        clock_ns, trace=trace,
                    )
                except ConstraintInfeasible as error:
                    # Re-raise as the flow-level timing rejection the TIM102
                    # checker rule predicts, anchored at the within block.
                    raise TimingInfeasible(
                        flow_key,
                        f"no schedule meets the within constraint: {error}",
                        location=_first_within_location(fn),
                    ) from error
            fsmd = fsmd_from_schedule(schedule)
            t.count(scheduler=scheduler, states=fsmd.n_states)
        artifacts.append(
            SynthesisArtifacts(fsmd=fsmd, schedule=schedule, plan=plan, cdfg=cdfg)
        )
        if plan.memory_symbol is not None:
            memory_images[plan.memory_symbol] = plan.initial_memory(info.global_inits)
    # The entry function's machine must come first (the simulator's root).
    artifacts.sort(key=lambda a: 0 if a.fsmd.name == function else 1)
    system = FSMDSystem(
        fsmds=[a.fsmd for a in artifacts],
        channels=[c.symbol for c in program.channels],  # type: ignore[attr-defined]
        global_registers=[
            g.symbol for g in program.globals  # type: ignore[attr-defined]
            if not isinstance(g.var_type, ArrayType)
        ],
        global_arrays=[
            g.symbol for g in program.globals  # type: ignore[attr-defined]
            if isinstance(g.var_type, ArrayType)
        ],
        global_inits=dict(info.global_inits),
        memory_images=memory_images,
    )
    return FSMDDesign(
        flow_key=flow_key,
        name=function,
        system=system,
        artifacts=artifacts,
        tech=tech,
        stats={
            "calls_inlined": inline_stats.calls_inlined,
            "inline_truncated": inline_stats.truncated_calls,
            "scheduler": scheduler,
        },
    )
