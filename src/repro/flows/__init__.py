"""Synthesis flows — one per language the paper surveys.

========  ====================================  =============  ==========
key       language                              concurrency    timing
========  ====================================  =============  ==========
cones     Cones (1988)                          compiler       none (combinational)
hardwarec HardwareC (1990)                      explicit       in-language constraints
transmogrifier Transmogrifier C (1995)          compiler       1 cycle/iteration+call
systemc   SystemC (2002)                        explicit       wait() boundaries
ocapi     Ocapi (1998)                          structural     designer-placed states
c2verilog C2Verilog (1998)                      compiler       compiler rules
cyber     Cyber/BDL (1999)                      explicit       implicit or explicit
handelc   Handel-C (2003)                       explicit       1 cycle/assignment
specc     SpecC (2000)                          explicit       refinement
bachc     Bach C (2001)                         explicit       untimed (scheduled)
cash      CASH (2002)                           compiler       asynchronous
========  ====================================  =============  ==========
"""

from ..api import SynthesisOptions, SynthesisResult, synthesize
from .base import (
    CompiledDesign,
    DesignCost,
    Flow,
    FlowError,
    FlowMetadata,
    FlowResult,
    LaneOutcome,
    UnsupportedFeature,
)
from .ocapi import OcapiModule, OcapiState
from .registry import (
    COMPILABLE,
    REGISTRY,
    compile_flow,
    get_flow,
    registry_fingerprint,
    run_flow,
    table1_rows,
)

# The stable public surface.  ``synthesize``/``SynthesisOptions``/
# ``SynthesisResult`` (from repro.api) are the supported entry points;
# ``compile_flow``/``run_flow`` remain as deprecated shims.
__all__ = [
    "COMPILABLE",
    "CompiledDesign",
    "DesignCost",
    "Flow",
    "FlowError",
    "FlowMetadata",
    "FlowResult",
    "LaneOutcome",
    "OcapiModule",
    "OcapiState",
    "REGISTRY",
    "SynthesisOptions",
    "SynthesisResult",
    "UnsupportedFeature",
    "compile_flow",
    "get_flow",
    "registry_fingerprint",
    "run_flow",
    "synthesize",
    "table1_rows",
]
