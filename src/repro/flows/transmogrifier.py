"""Transmogrifier C (Galloway, University of Toronto, 1995).

Table 1: *"Limited scope."*  Supports loops, conditionals, and integer
arithmetic, and uses the survey's starkest implicit timing rule: *"In
Transmogrifier C, only loop iterations and function calls take a cycle."*

Implementation of the rule:

* function calls are inlined with a one-cycle marker (``call_boundary``);
* ``while``/``for`` loops are rotated into guarded do-while form so that,
  after CFG cleanup, each iteration is a single basic block = a single
  state = **one cycle**, however much logic it chains;
* the chain scheduler packs every block into one state, so the implied
  clock period is the worst chained path — the paper's point that such
  rules "can require recoding to meet timing" (unroll for fewer cycles,
  or restructure to shorten the chains).

Loops containing ``continue`` are not rotated (the rotation would skip the
step statement) and honestly cost an extra cycle per iteration.
"""

from __future__ import annotations

from typing import List

from ..lang import ast_nodes as ast
from ..lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_DELAY,
    FEATURE_PAR,
    FEATURE_POINTERS,
    FEATURE_RECURSION,
    FEATURE_WITHIN,
    SemanticInfo,
)
from ..rtl.tech import DEFAULT_TECH, Technology
from ..trace import ensure_trace
from .base import CompiledDesign, Flow, FlowMetadata, _roots_of
from .scheduled import synthesize_fsmd_system


def _contains_continue(stmt: ast.Stmt) -> bool:
    """Whether a continue in ``stmt`` would bind to ``stmt``'s own loop
    (continues inside nested loops bind to those loops instead)."""
    work: List[ast.Stmt] = [stmt]
    while work:
        current = work.pop()
        if isinstance(current, ast.Continue):
            return True
        if isinstance(current, (ast.While, ast.DoWhile, ast.For)):
            continue  # inner loop: its continues are not ours
        if isinstance(current, ast.Block):
            work.extend(current.statements)
        elif isinstance(current, ast.If):
            work.append(current.then)
            if current.otherwise is not None:
                work.append(current.otherwise)
        elif isinstance(current, ast.Seq):
            work.append(current.body)
        elif isinstance(current, ast.Par):
            work.extend(current.branches)
        elif isinstance(current, ast.Within):
            work.append(current.body)
    return False


def rotate_loops(stmt: ast.Stmt) -> ast.Stmt:
    """Rewrite ``while (c) b`` into ``if (c) do b while (c)`` (and the
    analogous form for ``for``), recursively.  After CFG simplification the
    rotated body+test fuse into one block — one cycle per iteration."""
    if isinstance(stmt, ast.Block):
        return ast.Block(
            statements=[rotate_loops(s) for s in stmt.statements],
            location=stmt.location,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=stmt.cond,
            then=rotate_loops(stmt.then),
            otherwise=rotate_loops(stmt.otherwise) if stmt.otherwise else None,
            location=stmt.location,
        )
    if isinstance(stmt, ast.While):
        body = rotate_loops(stmt.body)
        if _contains_continue(stmt.body):
            return ast.While(cond=stmt.cond, body=body, location=stmt.location)
        rotated = ast.DoWhile(body=body, cond=stmt.cond, location=stmt.location)
        return ast.If(cond=stmt.cond, then=rotated, location=stmt.location)
    if isinstance(stmt, ast.DoWhile):
        return ast.DoWhile(
            body=rotate_loops(stmt.body), cond=stmt.cond, location=stmt.location
        )
    if isinstance(stmt, ast.For):
        body = rotate_loops(stmt.body)
        if stmt.cond is None or _contains_continue(stmt.body):
            return ast.For(
                init=stmt.init, cond=stmt.cond, step=stmt.step, body=body,
                location=stmt.location,
            )
        parts: List[ast.Stmt] = [body]
        if stmt.step is not None:
            parts.append(stmt.step)
        rotated = ast.DoWhile(
            body=ast.Block(statements=parts), cond=stmt.cond, location=stmt.location
        )
        guarded = ast.If(cond=stmt.cond, then=rotated, location=stmt.location)
        if stmt.init is not None:
            return ast.Block(statements=[stmt.init, guarded], location=stmt.location)
        return guarded
    if isinstance(stmt, ast.Seq):
        body = rotate_loops(stmt.body)
        assert isinstance(body, ast.Block)
        return ast.Seq(body=body, location=stmt.location)
    if isinstance(stmt, ast.Within):
        body = rotate_loops(stmt.body)
        assert isinstance(body, ast.Block)
        return ast.Within(cycles=stmt.cycles, body=body, location=stmt.location)
    return stmt


def _rotate_function(fn: ast.FunctionDef) -> ast.FunctionDef:
    body = rotate_loops(fn.body)
    assert isinstance(body, ast.Block)
    return ast.FunctionDef(
        name=fn.name, return_type=fn.return_type, params=fn.params, body=body,
        is_process=fn.is_process, location=fn.location,
    )


class TransmogrifierFlow(Flow):
    metadata = FlowMetadata(
        key="transmogrifier",
        title="Transmogrifier C",
        year=1995,
        note="Limited scope",
        concurrency="compiler",
        concurrency_detail="per-block combinational chaining only",
        timing="implicit-rule",
        timing_detail="one cycle per loop iteration and per function call",
        artifact="fsmd",
        reference="Galloway, FCCM 1995",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "Transmogrifier C has no pointers",
        FEATURE_CHANNELS: "Transmogrifier C has no channels",
        FEATURE_PAR: "Transmogrifier C has no parallel constructs",
        FEATURE_WITHIN: "Transmogrifier C has no timing constraints",
        FEATURE_DELAY: "Transmogrifier C has no delay statement",
        FEATURE_RECURSION: "Transmogrifier C forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        return synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            tech=tech,
            scheduler="chain",
            call_boundary=True,
            ast_transform=_rotate_function,
            enforce_constraints=False,
            opt_level=opt_level,
            trace=trace,
        )
