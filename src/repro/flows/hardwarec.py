"""HardwareC (Ku & De Micheli, Stanford Olympus, 1990).

Table 1: *"Behavioral synthesis-centric."*  The flow models HardwareC's two
signatures: explicit process-level concurrency, and in-language timing
constraints — *"these three statements must execute in two cycles"* — which
our ``within (n) { ... }`` blocks express and the constraint-driven list
scheduler enforces (raising
:class:`~repro.scheduling.base.ConstraintInfeasible` when the designer asks
the impossible, the "challenging for the compiler" half of the paper's
sentence).
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.semantic import FEATURE_POINTERS, FEATURE_RECURSION, SemanticInfo
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import ResourceSet
from ..trace import ensure_trace
from .base import CompiledDesign, Flow, FlowMetadata, _roots_of
from .scheduled import synthesize_fsmd_system


class HardwareCFlow(Flow):
    metadata = FlowMetadata(
        key="hardwarec",
        title="HardwareC",
        year=1990,
        note="Behavioral synthesis-centric",
        concurrency="explicit",
        concurrency_detail="process-level constructs; compiler ILP inside blocks",
        timing="constraints",
        timing_detail="in-language timing constraints solved by the scheduler",
        artifact="fsmd",
        reference="Ku & De Micheli, CSTL-TR-90-419",
    )

    FORBIDDEN = {
        FEATURE_POINTERS: "HardwareC has no pointers",
        FEATURE_RECURSION: "HardwareC forbids recursion",
    }

    def compile(
        self,
        program: ast.Program,
        info: SemanticInfo,
        function: str = "main",
        resources: ResourceSet = None,
        clock_ns: float = 5.0,
        tech: Technology = DEFAULT_TECH,
        opt_level: int = 1,
        trace=None,
        **options,
    ) -> CompiledDesign:
        t = ensure_trace(trace)
        with t.span("check", cat="phase"):
            self.check_features(info, _roots_of(program, function))
        return synthesize_fsmd_system(
            program, info, function,
            flow_key=self.metadata.key,
            resources=resources or ResourceSet.typical(),
            clock_ns=clock_ns,
            tech=tech,
            scheduler="list",
            enforce_constraints=True,
            opt_level=opt_level,
            trace=trace,
        )
