"""Resource classes and constraint sets for scheduling and binding.

Operations are classified into functional-unit classes.  A
:class:`ResourceSet` limits how many operations of each class may execute in
one control step — the knob the E9 scheduler ablation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir.ops import Operation, OpKind
from ..rtl import tech as T

# Scheduler resource-class names.
ALU = "alu"          # add/sub/compare/logic, selects
SHIFTER = "shifter"
MULTIPLIER = "mul"
DIVIDER = "div"
MEMORY_PREFIX = "mem:"   # one class per memory: "mem:<array unique name>"
CHANNEL_PREFIX = "chan:"
FREE = "free"        # casts: wires only


def classify(op: Operation) -> str:
    """The resource class an operation competes in."""
    if op.kind is OpKind.BINARY:
        if op.op == "*":
            return MULTIPLIER
        if op.op in ("/", "%"):
            return DIVIDER
        if op.op in ("<<", ">>"):
            return SHIFTER
        return ALU
    if op.kind is OpKind.UNARY:
        return ALU
    if op.kind is OpKind.SELECT:
        return ALU
    if op.kind is OpKind.CAST:
        return FREE
    if op.kind in (OpKind.LOAD, OpKind.STORE):
        assert op.array is not None
        return MEMORY_PREFIX + op.array.unique_name
    if op.kind in (OpKind.SEND, OpKind.RECV):
        assert op.channel is not None
        return CHANNEL_PREFIX + op.channel.unique_name
    return FREE  # BARRIER/DELAY/NOP consume no functional unit


def tech_class(op: Operation) -> str:
    """The technology pricing class for an operation's delay/area."""
    if op.kind is OpKind.BINARY:
        if op.op in ("+", "-"):
            return T.ADD
        if op.op == "*":
            return T.MULTIPLY
        if op.op in ("/", "%"):
            return T.DIVIDE
        if op.op in ("<<", ">>"):
            return T.SHIFT
        if op.op in ("==", "!=", "<", "<=", ">", ">="):
            return T.COMPARE
        return T.LOGIC
    if op.kind is OpKind.UNARY:
        return T.ADD if op.op == "-" else T.LOGIC
    if op.kind is OpKind.SELECT:
        return T.SELECT
    if op.kind is OpKind.CAST:
        return T.CAST
    if op.kind is OpKind.LOAD:
        return T.MEM_READ
    if op.kind is OpKind.STORE:
        return T.MEM_WRITE
    if op.kind in (OpKind.SEND, OpKind.RECV):
        return T.CHANNEL
    return T.CAST


def op_width(op: Operation) -> int:
    """The width the technology model prices this operation at."""
    widths = [op.dest.type.bit_width] if op.dest is not None else []
    widths += [o.type.bit_width for o in op.operands if o.type is not None]
    return max(widths) if widths else 32


def op_delay_ns(op: Operation, technology: T.Technology = T.DEFAULT_TECH) -> float:
    return technology.delay_ns(tech_class(op), op_width(op))


def op_area_ge(op: Operation, technology: T.Technology = T.DEFAULT_TECH) -> float:
    return technology.area_ge(tech_class(op), op_width(op))


@dataclass
class ResourceSet:
    """Per-step operation limits.

    ``None`` means unlimited.  Memory classes default to ``memory_ports``
    per distinct memory (1 models a single-port RAM — the monolithic-memory
    experiment's bottleneck); channel classes are always 1 (a rendezvous
    port serializes by nature).
    """

    alu: Optional[int] = None
    shifter: Optional[int] = None
    multiplier: Optional[int] = None
    divider: Optional[int] = None
    memory_ports: int = 1
    extra: Dict[str, Optional[int]] = field(default_factory=dict)

    def limit(self, resource_class: str) -> Optional[int]:
        if resource_class in self.extra:
            return self.extra[resource_class]
        if resource_class == ALU:
            return self.alu
        if resource_class == SHIFTER:
            return self.shifter
        if resource_class == MULTIPLIER:
            return self.multiplier
        if resource_class == DIVIDER:
            return self.divider
        if resource_class.startswith(MEMORY_PREFIX):
            return self.memory_ports
        if resource_class.startswith(CHANNEL_PREFIX):
            return 1
        return None  # FREE

    @staticmethod
    def unlimited() -> "ResourceSet":
        """No functional-unit limits; memories still have one port each
        (a RAM's ports are physical, not schedulable)."""
        return ResourceSet()

    @staticmethod
    def typical() -> "ResourceSet":
        """A mid-sized datapath: 2 ALUs, 1 multiplier, 1 divider, 1 shifter."""
        return ResourceSet(alu=2, shifter=1, multiplier=1, divider=1)

    @staticmethod
    def minimal() -> "ResourceSet":
        """The smallest sensible datapath: one of everything."""
        return ResourceSet(alu=1, shifter=1, multiplier=1, divider=1)
