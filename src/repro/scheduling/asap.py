"""ASAP and ALAP scheduling in the unit-latency model.

These are the textbook bounds every other scheduler is measured against:
ASAP gives each operation its earliest dependence-feasible step (and hence
the critical path length), ALAP its latest within a target length.  The
mobility (ALAP − ASAP) feeds force-directed scheduling, and the ASAP step
histogram is exactly the "available ILP" profile of the block.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.cdfg import BasicBlock
from .base import (
    BlockSchedule,
    DependenceGraph,
    ScheduleError,
    build_dependence_graph,
    unit_latency,
)


def unit_asap(
    block: BasicBlock, graph: Optional[DependenceGraph] = None
) -> BlockSchedule:
    """Earliest-step schedule, unlimited resources, unit latencies."""
    graph = graph or build_dependence_graph(block)
    by_id = {op.id: op for op in block.ops}
    step: Dict[int, int] = {}
    remaining = {op.id: len(graph.predecessors(op)) for op in block.ops}
    ready = [op for op in block.ops if remaining[op.id] == 0]
    for op in ready:
        step[op.id] = 0
    queue = list(ready)
    scheduled = 0
    while queue:
        op = queue.pop(0)
        scheduled += 1
        finish = step[op.id] + unit_latency(op)
        for succ_id in sorted(graph.successors(op)):
            step[succ_id] = max(step.get(succ_id, 0), finish)
            remaining[succ_id] -= 1
            if remaining[succ_id] == 0:
                queue.append(by_id[succ_id])
    if scheduled != len(block.ops):
        raise ScheduleError("dependence cycle in ASAP scheduling")
    n_steps = 1
    for op in block.ops:
        n_steps = max(n_steps, step[op.id] + max(unit_latency(op), 1))
    return BlockSchedule(block=block, op_step=step, n_steps=n_steps)


def unit_alap(
    block: BasicBlock,
    length: Optional[int] = None,
    graph: Optional[DependenceGraph] = None,
) -> BlockSchedule:
    """Latest-step schedule within ``length`` steps (default: the ASAP
    critical path, i.e. zero slack on the critical path)."""
    graph = graph or build_dependence_graph(block)
    if length is None:
        length = unit_asap(block, graph).n_steps
    by_id = {op.id: op for op in block.ops}
    # Latest finish then work backwards: op_step = latest_finish - latency.
    late: Dict[int, int] = {}
    remaining = {op.id: len(graph.successors(op)) for op in block.ops}
    queue = [op for op in block.ops if remaining[op.id] == 0]
    for op in queue:
        late[op.id] = length - max(unit_latency(op), 1)
    queue = list(queue)
    processed = 0
    while queue:
        op = queue.pop(0)
        processed += 1
        for pred_id in sorted(graph.predecessors(op)):
            pred = by_id[pred_id]
            # pred must finish by op's step: pred_step + latency <= op_step;
            # zero-latency preds (casts) may share op's step.
            bound = late[op.id] - unit_latency(pred)
            late[pred_id] = min(late.get(pred_id, bound), bound)
            remaining[pred_id] -= 1
            if remaining[pred_id] == 0:
                queue.append(pred)
    if processed != len(block.ops):
        raise ScheduleError("dependence cycle in ALAP scheduling")
    if any(s < 0 for s in late.values()):
        raise ScheduleError(f"target length {length} is below the critical path")
    return BlockSchedule(block=block, op_step=late, n_steps=length)


def mobility(block: BasicBlock, length: Optional[int] = None) -> Dict[int, int]:
    """Per-op slack (ALAP − ASAP) — the scheduling freedom FDS exploits."""
    graph = build_dependence_graph(block)
    asap = unit_asap(block, graph)
    alap = unit_alap(block, length or asap.n_steps, graph)
    return {
        op.id: alap.op_step[op.id] - asap.op_step[op.id] for op in block.ops
    }
