"""Schedulers: the behavioral-synthesis substrate.

* :mod:`.list_scheduler` — chained, resource- and constraint-aware list
  scheduling (used by the scheduled flows);
* :mod:`.asap` — ASAP/ALAP bounds in the unit model;
* :mod:`.force_directed` — Paulin/Knight force-directed scheduling;
* :mod:`.modulo` — iterative modulo scheduling for loop pipelining;
* :mod:`.resources` — functional-unit classes and limits;
* :mod:`.base` — dependence graphs, schedule containers, validation.
"""

from .asap import mobility, unit_alap, unit_asap
from .base import (
    BlockSchedule,
    ConstraintInfeasible,
    DependenceGraph,
    FunctionSchedule,
    ScheduleError,
    build_dependence_graph,
    check_block_schedule,
    is_chainable,
    unit_latency,
)
from .force_directed import force_directed_schedule, peak_usage
from .list_scheduler import list_schedule_block, list_schedule_function
from .modulo import (
    ModuloResult,
    find_pipelineable_loops,
    loop_carried_dependences,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)
from .resources import (
    ALU,
    DIVIDER,
    MULTIPLIER,
    ResourceSet,
    SHIFTER,
    classify,
    op_area_ge,
    op_delay_ns,
)

__all__ = [
    "ALU",
    "BlockSchedule",
    "ConstraintInfeasible",
    "DIVIDER",
    "DependenceGraph",
    "FunctionSchedule",
    "MULTIPLIER",
    "ModuloResult",
    "ResourceSet",
    "SHIFTER",
    "ScheduleError",
    "build_dependence_graph",
    "check_block_schedule",
    "classify",
    "find_pipelineable_loops",
    "force_directed_schedule",
    "is_chainable",
    "list_schedule_block",
    "list_schedule_function",
    "loop_carried_dependences",
    "mobility",
    "modulo_schedule",
    "op_area_ge",
    "op_delay_ns",
    "peak_usage",
    "recurrence_mii",
    "resource_mii",
    "unit_alap",
    "unit_asap",
    "unit_latency",
]
