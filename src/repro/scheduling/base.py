"""Scheduling foundations: dependence graphs, schedule containers, the unit
latency model, and schedule validation.

Two latency models coexist, on purpose:

* the **chained model** (used by the flows' list scheduler): operators have
  real delays from the technology model and may chain combinationally
  within one control step up to the clock period — how RTL designers and
  commercial HLS actually fill a cycle;
* the **unit model** (used by ASAP/ALAP/force-directed/modulo and the ILP
  study): every operation takes one control step (dividers four), the
  textbook abstraction Wall-style parallelism studies are phrased in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.cdfg import BasicBlock, FunctionCDFG
from ..ir.ops import Operation, OpKind, VReg
from ..rtl.tech import DEFAULT_TECH, Technology
from .resources import FREE, ResourceSet, classify, op_delay_ns


class ScheduleError(Exception):
    """A block could not be scheduled (infeasible constraints, etc.)."""


class ConstraintInfeasible(ScheduleError):
    """A HardwareC-style ``within`` constraint cannot be met."""


# ---------------------------------------------------------------------------
# Dependence graph
# ---------------------------------------------------------------------------


@dataclass
class DependenceGraph:
    """Intra-block dependences.

    Edge kinds: ``flow`` (VReg def→use), ``memory`` (store→load/store and
    load→store on the same memory, in program order), ``fence`` (ordering
    around barriers/delays and among channel operations).
    """

    ops: List[Operation]
    preds: Dict[int, Set[int]] = field(default_factory=dict)
    succs: Dict[int, Set[int]] = field(default_factory=dict)

    def add_edge(self, src: Operation, dst: Operation) -> None:
        if src.id == dst.id:
            return
        self.preds.setdefault(dst.id, set()).add(src.id)
        self.succs.setdefault(src.id, set()).add(dst.id)

    def predecessors(self, op: Operation) -> Set[int]:
        return self.preds.get(op.id, set())

    def successors(self, op: Operation) -> Set[int]:
        return self.succs.get(op.id, set())

    def edge_count(self) -> int:
        return sum(len(s) for s in self.succs.values())


def build_dependence_graph(
    block: BasicBlock, disambiguate_memory: bool = True
) -> DependenceGraph:
    """Dependences among one block's operations.

    ``disambiguate_memory=True`` skips memory edges between accesses whose
    (constant) addresses provably differ — the cheap address-based
    disambiguation array-heavy kernels rely on.
    """
    graph = DependenceGraph(ops=list(block.ops))
    producer: Dict[VReg, Operation] = {}
    last_store: Dict[str, List[Operation]] = {}
    loads_since_store: Dict[str, List[Operation]] = {}
    last_channel_op: Optional[Operation] = None
    last_fence: Optional[Operation] = None

    def addresses_differ(a: Operation, b: Operation) -> bool:
        if not disambiguate_memory:
            return False
        from ..ir.ops import Const

        addr_a, addr_b = a.operands[0], b.operands[0]
        return (
            isinstance(addr_a, Const)
            and isinstance(addr_b, Const)
            and addr_a.value != addr_b.value
        )

    for op in block.ops:
        # Flow edges.
        for operand in op.operands:
            if isinstance(operand, VReg) and operand in producer:
                graph.add_edge(producer[operand], op)
        if op.dest is not None:
            producer[op.dest] = op
        # Memory edges.
        if op.is_memory():
            assert op.array is not None
            name = op.array.unique_name
            if op.kind is OpKind.LOAD:
                for store in last_store.get(name, []):
                    if not addresses_differ(op, store):
                        graph.add_edge(store, op)
                loads_since_store.setdefault(name, []).append(op)
            else:  # STORE
                for store in last_store.get(name, []):
                    if not addresses_differ(op, store):
                        graph.add_edge(store, op)
                for load in loads_since_store.get(name, []):
                    if not addresses_differ(op, load):
                        graph.add_edge(load, op)
                last_store.setdefault(name, []).append(op)
                loads_since_store[name] = []
        # Fences.
        if op.kind in (OpKind.BARRIER, OpKind.DELAY):
            for other in block.ops:
                if other.id == op.id:
                    break
                graph.add_edge(other, op)
            last_fence = op
        else:
            if last_fence is not None:
                graph.add_edge(last_fence, op)
        if op.kind in (OpKind.SEND, OpKind.RECV):
            if last_channel_op is not None:
                graph.add_edge(last_channel_op, op)
            last_channel_op = op
    return graph


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------


def unit_latency(op: Operation) -> int:
    """Control steps in the unit model."""
    if op.kind is OpKind.CAST or op.kind is OpKind.NOP:
        return 0
    if op.kind is OpKind.DELAY:
        return max(op.cycles, 1)
    if op.kind is OpKind.BINARY and op.op in ("/", "%"):
        return 4
    return 1


def chained_steps(op: Operation, clock_ns: float, tech: Technology) -> int:
    """How many whole steps a (non-chainable-out) multi-cycle op needs."""
    delay = op_delay_ns(op, tech)
    if delay <= clock_ns:
        return 1
    return int(math.ceil(delay / clock_ns))


def is_chainable(op: Operation) -> bool:
    """Whether an op's result may feed another op in the same step."""
    return op.kind in (OpKind.BINARY, OpKind.UNARY, OpKind.CAST, OpKind.SELECT,
                       OpKind.LOAD)


# ---------------------------------------------------------------------------
# Schedule containers
# ---------------------------------------------------------------------------


@dataclass
class BlockSchedule:
    """One block's operations assigned to control steps."""

    block: BasicBlock
    op_step: Dict[int, int] = field(default_factory=dict)
    n_steps: int = 1
    # Chained model only: where within its step each op starts/finishes (ns).
    op_start_ns: Dict[int, float] = field(default_factory=dict)
    op_finish_ns: Dict[int, float] = field(default_factory=dict)

    def step_ops(self) -> List[List[Operation]]:
        steps: List[List[Operation]] = [[] for _ in range(self.n_steps)]
        for op in self.block.ops:
            steps[self.op_step[op.id]].append(op)
        return steps

    def step_of(self, op: Operation) -> int:
        return self.op_step[op.id]

    def step_occupancy(self) -> List[Dict[str, int]]:
        """Per-step resource-class usage: one ``{class: count}`` dict per
        control step (FREE ops excluded).  The time-sensitive checker and
        the binding reports both consume this instead of re-deriving it."""
        usage: List[Dict[str, int]] = [{} for _ in range(self.n_steps)]
        for op in self.block.ops:
            resource = classify(op)
            if resource == FREE:
                continue
            counts = usage[self.op_step[op.id]]
            counts[resource] = counts.get(resource, 0) + 1
        return usage


@dataclass
class FunctionSchedule:
    """A complete schedule: every reachable block, plus metadata."""

    cdfg: FunctionCDFG
    blocks: Dict[int, BlockSchedule] = field(default_factory=dict)
    clock_ns: float = 0.0
    scheduler: str = ""
    resources: Optional[ResourceSet] = None

    def total_steps(self) -> int:
        return sum(bs.n_steps for bs in self.blocks.values())

    def block_schedule(self, block: BasicBlock) -> BlockSchedule:
        return self.blocks[block.id]

    def peak_occupancy(self) -> Dict[str, int]:
        """The worst single-step usage of each resource class across every
        block — what the datapath must physically provide."""
        peak: Dict[str, int] = {}
        for bs in self.blocks.values():
            for counts in bs.step_occupancy():
                for resource, used in counts.items():
                    if used > peak.get(resource, 0):
                        peak[resource] = used
        return peak

    def port_violations(
        self, resources: Optional[ResourceSet] = None
    ) -> List[Tuple[int, int, str, int, int]]:
        """Steps that use more of a resource class than the limit allows:
        ``(block_id, step, class, used, limit)`` tuples.  With the flows'
        own list scheduler this is empty by construction; chain schedules
        and hand-built FSMDs can legitimately oversubscribe, which is what
        the TIM3xx rules report."""
        limits = resources if resources is not None else self.resources
        if limits is None:
            limits = ResourceSet.unlimited()
        found: List[Tuple[int, int, str, int, int]] = []
        for block_id, bs in self.blocks.items():
            for step, counts in enumerate(bs.step_occupancy()):
                for resource, used in counts.items():
                    limit = limits.limit(resource)
                    if limit is not None and used > limit:
                        found.append((block_id, step, resource, used, limit))
        return found


# ---------------------------------------------------------------------------
# Validation (used by property tests and as an internal sanity net)
# ---------------------------------------------------------------------------


def check_block_schedule(
    schedule: BlockSchedule,
    resources: Optional[ResourceSet] = None,
    constraints: Optional[Dict[int, int]] = None,
) -> None:
    """Raise :class:`ScheduleError` if ``schedule`` is malformed.

    Checks: every op placed, dependence order respected (chained same-step
    placement allowed only for chainable producers), per-step resource
    limits, fence exclusivity, and ``within`` constraint spans
    (``constraints`` maps group id -> max steps).
    """
    block = schedule.block
    graph = build_dependence_graph(block)
    for op in block.ops:
        if op.id not in schedule.op_step:
            raise ScheduleError(f"{op} was never scheduled")
        step = schedule.op_step[op.id]
        if not 0 <= step < schedule.n_steps:
            raise ScheduleError(f"{op} scheduled at invalid step {step}")
    by_id = {op.id: op for op in block.ops}
    for op in block.ops:
        for pred_id in graph.predecessors(op):
            pred = by_id[pred_id]
            pred_step = schedule.op_step[pred_id]
            op_step = schedule.op_step[op.id]
            if pred_step > op_step:
                raise ScheduleError(
                    f"{op} at step {op_step} depends on {pred} at {pred_step}"
                )
            if pred_step == op_step and not is_chainable(pred):
                raise ScheduleError(
                    f"{op} chained onto non-chainable {pred} in step {op_step}"
                )
    if resources is not None:
        for step_index, ops in enumerate(schedule.step_ops()):
            counts: Dict[str, int] = {}
            for op in ops:
                resource = classify(op)
                if resource == FREE:
                    continue
                counts[resource] = counts.get(resource, 0) + 1
            for resource, used in counts.items():
                limit = resources.limit(resource)
                if limit is not None and used > limit:
                    raise ScheduleError(
                        f"step {step_index} uses {used} of {resource}"
                        f" (limit {limit})"
                    )
    for step_index, ops in enumerate(schedule.step_ops()):
        exclusive = [op for op in ops if op.kind in (OpKind.BARRIER, OpKind.DELAY)]
        if exclusive and len(ops) > len(exclusive):
            raise ScheduleError(
                f"step {step_index} mixes a barrier/delay with other work"
            )
    if constraints:
        spans: Dict[int, Tuple[int, int]] = {}
        for op in block.ops:
            if op.constraint is None:
                continue
            step = schedule.op_step[op.id]
            low, high = spans.get(op.constraint, (step, step))
            spans[op.constraint] = (min(low, step), max(high, step))
        for group, (low, high) in spans.items():
            budget = constraints.get(group)
            if budget is not None and high - low + 1 > budget:
                raise ConstraintInfeasible(
                    f"within group {group} spans {high - low + 1} steps"
                    f" (budget {budget})"
                )
