"""Force-directed scheduling (Paulin & Knight), unit-latency model.

The classic *time-constrained* formulation: given a target schedule length
(default: the ASAP critical path), repeatedly commit the operation/step pair
with the lowest force, where force measures how much a placement raises the
expected concurrency ("distribution graph") of its resource class.  The
result meets the length while flattening functional-unit usage — the E9
ablation compares its peak FU usage against plain ASAP and resource-
constrained list scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.cdfg import BasicBlock
from ..ir.ops import Operation
from .asap import unit_alap, unit_asap
from .base import (
    BlockSchedule,
    DependenceGraph,
    ScheduleError,
    build_dependence_graph,
    unit_latency,
)
from .resources import FREE, classify


def _frames(
    block: BasicBlock, graph: DependenceGraph, length: int
) -> Dict[int, Tuple[int, int]]:
    asap = unit_asap(block, graph)
    alap = unit_alap(block, length, graph)
    return {
        op.id: (asap.op_step[op.id], alap.op_step[op.id]) for op in block.ops
    }


def _distribution(
    ops: List[Operation], frames: Dict[int, Tuple[int, int]], length: int
) -> Dict[str, List[float]]:
    """Expected per-step usage of each resource class, assuming each op is
    uniformly distributed over its frame."""
    dist: Dict[str, List[float]] = {}
    for op in ops:
        resource = classify(op)
        if resource == FREE:
            continue
        low, high = frames[op.id]
        weight = 1.0 / (high - low + 1)
        rows = dist.setdefault(resource, [0.0] * length)
        for s in range(low, high + 1):
            rows[s] += weight
    return dist


def force_directed_schedule(
    block: BasicBlock, length: Optional[int] = None, trace=None
) -> BlockSchedule:
    """Schedule ``block`` into ``length`` steps minimizing concurrency
    peaks.  Raises :class:`ScheduleError` if the length is infeasible."""
    if trace is not None and trace.enabled:
        with trace.span("schedule.force-directed", cat="scheduler"):
            schedule = force_directed_schedule(block, length)
            trace.count(ops=len(block.ops), steps=schedule.n_steps)
        return schedule
    graph = build_dependence_graph(block)
    if length is None:
        length = unit_asap(block, graph).n_steps
    frames = _frames(block, graph, length)
    by_id = {op.id: op for op in block.ops}
    committed: Dict[int, int] = {}

    def tighten(op_id: int, step: int) -> None:
        """Commit op to step and propagate frame shrinkage through deps."""
        frames[op_id] = (step, step)
        work = [op_id]
        while work:
            current = work.pop()
            low, high = frames[current]
            op = by_id[current]
            finish = low + unit_latency(op)
            for succ_id in graph.successors(op):
                slow, shigh = frames[succ_id]
                if slow < finish:
                    if finish > shigh:
                        raise ScheduleError(
                            f"force-directed: frame of {by_id[succ_id]}"
                            " collapsed"
                        )
                    frames[succ_id] = (finish, shigh)
                    work.append(succ_id)
            for pred_id in graph.predecessors(op):
                pred = by_id[pred_id]
                plow, phigh = frames[pred_id]
                bound = high - unit_latency(pred)
                if phigh > bound:
                    if bound < plow:
                        raise ScheduleError(
                            f"force-directed: frame of {pred} collapsed"
                        )
                    frames[pred_id] = (plow, bound)
                    work.append(pred_id)

    movable = [op for op in block.ops]
    while True:
        undecided = [
            op for op in movable
            if op.id not in committed and frames[op.id][0] != frames[op.id][1]
        ]
        # Ops whose frame is already a single step are committed implicitly.
        for op in movable:
            if op.id not in committed and frames[op.id][0] == frames[op.id][1]:
                committed[op.id] = frames[op.id][0]
        if not undecided:
            break
        dist = _distribution(movable, frames, length)
        best: Optional[Tuple[float, int, int, int]] = None  # force, op, step
        for op in undecided:
            resource = classify(op)
            low, high = frames[op.id]
            width = high - low + 1
            rows = dist.get(resource)
            for step in range(low, high + 1):
                if rows is None:
                    force = 0.0
                else:
                    # Self force: moving probability mass onto `step`.
                    force = rows[step] - sum(rows[low : high + 1]) / width
                key = (force, op.id, step)
                if best is None or key < (best[0], best[1], best[2]):
                    best = (force, op.id, step)
        assert best is not None
        _, op_id, step = best
        tighten(op_id, step)
        committed[op_id] = step

    op_step = {op.id: committed.get(op.id, frames[op.id][0]) for op in block.ops}
    n_steps = 1
    for op in block.ops:
        n_steps = max(n_steps, op_step[op.id] + max(unit_latency(op), 1))
    schedule = BlockSchedule(block=block, op_step=op_step, n_steps=max(n_steps, length))
    return schedule


def peak_usage(schedule: BlockSchedule) -> Dict[str, int]:
    """Maximum per-step usage of each resource class — the FU count this
    schedule implies when bound naively."""
    peaks: Dict[str, int] = {}
    for ops in schedule.step_ops():
        counts: Dict[str, int] = {}
        for op in ops:
            resource = classify(op)
            if resource == FREE:
                continue
            counts[resource] = counts.get(resource, 0) + 1
        for resource, used in counts.items():
            peaks[resource] = max(peaks.get(resource, 0), used)
    return peaks
