"""Iterative modulo scheduling (software-pipelining) for single-block loops.

The paper: *"Pipelining, the second approach, requires less hardware than
ILP but can be less effective.  Again, dependencies and control-flow
transfers limit parallelism.  Pipelining works well on regular loops, e.g.,
in scientific computation, but is less effective in general."*

This module makes the claim measurable.  Given a loop whose body is one
basic block, it computes

* **ResMII** — the resource-limited lower bound on the initiation interval;
* **RecMII** — the recurrence-limited bound, from loop-carried dependence
  cycles (scalar recurrences through the block's register latches, plus
  conservative memory-carried edges);
* an achieved II via Rau-style iterative modulo scheduling (budgeted,
  without backtracking — it may settle one or two above the bound, which is
  reported honestly as ``achieved_ii``).

Regular dataflow loops (FIR, dot products with reassociable accumulators
kept serial — their recurrence *is* the limit) pipeline to small IIs;
loops with pointer-chasing, histogram updates, or data-dependent exits
do not.  That asymmetry is experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.cdfg import BasicBlock, FunctionCDFG
from ..ir.ops import Branch, Const, Operation, OpKind, VReg, VarRead
from .asap import unit_asap
from .base import (
    BlockSchedule,
    DependenceGraph,
    ScheduleError,
    build_dependence_graph,
    unit_latency,
)
from .resources import FREE, ResourceSet, classify


@dataclass
class LoopDependence:
    src: Operation
    dst: Operation
    distance: int  # iterations
    latency: int


@dataclass
class ModuloResult:
    block: BasicBlock
    res_mii: int
    rec_mii: int
    achieved_ii: Optional[int]
    schedule_length: int
    sequential_steps: int
    op_count: int
    op_step: Dict[int, int] = field(default_factory=dict)

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii, 1)

    def slot_occupancy(self) -> List[Dict[str, int]]:
        """Steady-state resource usage per modulo slot (step % II): the
        modulo reservation table the achieved schedule implies.  Empty when
        no II was achieved."""
        if self.achieved_ii is None or not self.op_step:
            return []
        slots: List[Dict[str, int]] = [{} for _ in range(self.achieved_ii)]
        for op in self.block.ops:
            resource = classify(op)
            if resource == FREE:
                continue
            counts = slots[self.op_step[op.id] % self.achieved_ii]
            counts[resource] = counts.get(resource, 0) + 1
        return slots

    def speedup(self, iterations: int = 1000) -> float:
        """Steady-state speedup over the unpipelined loop for N iterations."""
        if self.achieved_ii is None:
            return 1.0
        sequential = self.sequential_steps * iterations
        pipelined = self.achieved_ii * iterations + (
            self.schedule_length - self.achieved_ii
        )
        return sequential / max(pipelined, 1)


def find_pipelineable_loops(cdfg: FunctionCDFG) -> List[BasicBlock]:
    """Single-block loop bodies for modulo scheduling.

    Handles two shapes: a block that branches back to itself, and the
    canonical two-block ``head (test) -> body -> head`` form, which is fused
    into one virtual block (head's test plus the body, with the body's
    variable reads rewired to the head's latched values)."""
    loops: List[BasicBlock] = []
    preds = cdfg.predecessors()
    for block in cdfg.reachable_blocks():
        terminator = block.terminator
        if isinstance(terminator, Branch):
            if block in (terminator.if_true, terminator.if_false):
                loops.append(block)
                continue
            for body in (terminator.if_true, terminator.if_false):
                if not isinstance(body, BasicBlock):
                    continue
                body_term = body.terminator
                from ..ir.ops import Jump

                if (
                    isinstance(body_term, Jump)
                    and body_term.target is block
                    and len(preds.get(body.id, [])) == 1
                ):
                    loops.append(_fuse_loop(block, body))
                    break
    return loops


def _fuse_loop(head: BasicBlock, body: BasicBlock) -> BasicBlock:
    """A virtual block equivalent to one loop iteration (head; body).

    Ops are shallow-copied so the original CDFG is untouched; the body's
    VarReads of variables the head latched are substituted with the head's
    write operands, exactly mirroring CFG block merging."""
    import dataclasses

    fused = BasicBlock(label=f"{head.label}+{body.label}")
    substitution: Dict = dict(head.var_writes)

    def rewrite(operand):
        if isinstance(operand, VarRead) and operand.var in substitution:
            return substitution[operand.var]
        return operand

    for op in head.ops:
        fused.ops.append(dataclasses.replace(op, operands=list(op.operands)))
    for op in body.ops:
        copy = dataclasses.replace(op, operands=[rewrite(o) for o in op.operands])
        fused.ops.append(copy)
    fused.var_writes = dict(head.var_writes)
    for var, value in body.var_writes.items():
        fused.var_writes[var] = rewrite(value)
    head_term = head.terminator
    assert isinstance(head_term, Branch)
    exit_target = (
        head_term.if_false if head_term.if_true is body else head_term.if_true
    )
    fused.terminator = Branch(head_term.cond, fused, exit_target)
    return fused


def loop_carried_dependences(block: BasicBlock) -> List[LoopDependence]:
    """Distance-1 dependences across the loop back edge.

    * scalar recurrences: the op producing a latched variable feeds every
      next-iteration reader of that variable;
    * memory recurrences: a store feeds next-iteration loads/stores of the
      same memory unless constant addresses prove independence.
    """
    carried: List[LoopDependence] = []
    producer: Dict[VReg, Operation] = {}
    for op in block.ops:
        if op.dest is not None:
            producer[op.dest] = op

    def readers_of(var) -> List[Operation]:
        readers = []
        for op in block.ops:
            if any(isinstance(o, VarRead) and o.var is var for o in op.operands):
                readers.append(op)
        return readers

    for var, value in block.var_writes.items():
        if not isinstance(value, VReg) or value not in producer:
            continue  # a register copy: no computation on the cycle
        src = producer[value]
        for dst in readers_of(var):
            carried.append(
                LoopDependence(src=src, dst=dst, distance=1,
                               latency=unit_latency(src))
            )
    stores: Dict[str, List[Operation]] = {}
    accesses: Dict[str, List[Operation]] = {}
    for op in block.ops:
        if op.is_memory():
            assert op.array is not None
            name = op.array.unique_name
            accesses.setdefault(name, []).append(op)
            if op.kind is OpKind.STORE:
                stores.setdefault(name, []).append(op)

    def const_addr(op: Operation) -> Optional[int]:
        addr = op.operands[0]
        return addr.value if isinstance(addr, Const) else None

    for name, store_list in stores.items():
        for store in store_list:
            for other in accesses[name]:
                a, b = const_addr(store), const_addr(other)
                if a is not None and b is not None and a != b:
                    continue
                carried.append(
                    LoopDependence(src=store, dst=other, distance=1,
                                   latency=unit_latency(store))
                )
    return carried


def resource_mii(block: BasicBlock, resources: ResourceSet) -> int:
    counts: Dict[str, int] = {}
    for op in block.ops:
        resource = classify(op)
        if resource == FREE:
            continue
        counts[resource] = counts.get(resource, 0) + 1
    mii = 1
    for resource, used in counts.items():
        limit = resources.limit(resource)
        if limit is not None:
            mii = max(mii, -(-used // limit))
    return mii


def recurrence_mii(
    block: BasicBlock,
    graph: Optional[DependenceGraph] = None,
    carried: Optional[List[LoopDependence]] = None,
) -> int:
    """Smallest II with no positive cycle in the dependence graph where
    edge weight = latency − II·distance (binary search + Bellman-Ford)."""
    graph = graph or build_dependence_graph(block)
    carried = carried if carried is not None else loop_carried_dependences(block)
    edges: List[Tuple[int, int, int, int]] = []  # src, dst, latency, distance
    for op in block.ops:
        for succ in graph.successors(op):
            edges.append((op.id, succ, unit_latency(op), 0))
    for dep in carried:
        edges.append((dep.src.id, dep.dst.id, dep.latency, dep.distance))
    if not any(distance > 0 for *_, distance in edges):
        return 1
    node_ids = [op.id for op in block.ops]

    def has_positive_cycle(ii: int) -> bool:
        # Longest-path Bellman-Ford; weight = latency - ii*distance.
        dist = {n: 0 for n in node_ids}
        for iteration in range(len(node_ids)):
            changed = False
            for src, dst, latency, distance in edges:
                weight = latency - ii * distance
                if dist[src] + weight > dist[dst]:
                    dist[dst] = dist[src] + weight
                    changed = True
            if not changed:
                return False
        return True

    low, high = 1, max(1, sum(unit_latency(op) for op in block.ops))
    while low < high:
        mid = (low + high) // 2
        if has_positive_cycle(mid):
            low = mid + 1
        else:
            high = mid
    return low


def _try_modulo_schedule(
    block: BasicBlock,
    ii: int,
    resources: ResourceSet,
    graph: DependenceGraph,
    carried: List[LoopDependence],
    budget_factor: int = 8,
) -> Optional[Dict[int, int]]:
    """One Rau-style attempt at initiation interval ``ii`` (no eviction)."""
    by_id = {op.id: op for op in block.ops}
    # Height-based priority from the distance-0 graph.
    height: Dict[int, int] = {}
    for op in reversed(_topo(graph)):
        height[op.id] = unit_latency(op) + max(
            (height[s] for s in graph.successors(op)), default=0
        )
    order = sorted(block.ops, key=lambda op: (-height[op.id], op.id))
    placed: Dict[int, int] = {}
    mrt: Dict[Tuple[str, int], int] = {}  # (resource, slot) -> count
    horizon = budget_factor * max(ii, 1) + sum(unit_latency(op) for op in block.ops)

    preds_with_carried: Dict[int, List[Tuple[int, int, int]]] = {}
    for op in block.ops:
        entries = [(p, unit_latency(by_id[p]), 0) for p in graph.predecessors(op)]
        preds_with_carried[op.id] = entries
    for dep in carried:
        preds_with_carried[dep.dst.id].append((dep.src.id, dep.latency, dep.distance))

    for op in order:
        earliest = 0
        for pred_id, latency, distance in preds_with_carried[op.id]:
            if pred_id in placed:
                earliest = max(earliest, placed[pred_id] + latency - ii * distance)
        earliest = max(earliest, 0)
        resource = classify(op)
        limit = resources.limit(resource) if resource != FREE else None
        chosen = None
        for step in range(earliest, min(earliest + ii, horizon)):
            if limit is not None:
                slot = (resource, step % ii)
                if mrt.get(slot, 0) >= limit:
                    continue
            # Distance-1 successors already placed impose upper bounds.
            feasible = True
            for dep in carried:
                if dep.src.id == op.id and dep.dst.id in placed:
                    if step + dep.latency - ii * dep.distance > placed[dep.dst.id]:
                        feasible = False
                        break
            if feasible:
                chosen = step
                break
        if chosen is None:
            return None
        placed[op.id] = chosen
        if limit is not None:
            slot = (resource, chosen % ii)
            mrt[slot] = mrt.get(slot, 0) + 1
    return placed


def _topo(graph: DependenceGraph) -> List[Operation]:
    remaining = {op.id: len(graph.predecessors(op)) for op in graph.ops}
    by_id = {op.id: op for op in graph.ops}
    queue = [op for op in graph.ops if remaining[op.id] == 0]
    order: List[Operation] = []
    while queue:
        op = queue.pop(0)
        order.append(op)
        for succ in sorted(graph.successors(op)):
            remaining[succ] -= 1
            if remaining[succ] == 0:
                queue.append(by_id[succ])
    if len(order) != len(graph.ops):
        raise ScheduleError("cycle in distance-0 dependence graph")
    return order


def modulo_schedule(
    block: BasicBlock,
    resources: Optional[ResourceSet] = None,
    max_ii_slack: int = 16,
    trace=None,
) -> ModuloResult:
    """Pipeline one loop block; always returns a result (achieved_ii may be
    None when even II = MII + slack failed, meaning 'effectively
    unpipelineable')."""
    if trace is not None and trace.enabled:
        with trace.span("schedule.modulo", cat="scheduler"):
            result = modulo_schedule(block, resources, max_ii_slack)
            trace.count(
                ops=result.op_count,
                achieved_ii=result.achieved_ii or 0,
                mii=max(result.res_mii, result.rec_mii, 1),
            )
        return result
    resources = resources or ResourceSet.typical()
    graph = build_dependence_graph(block)
    carried = loop_carried_dependences(block)
    res_mii = resource_mii(block, resources)
    rec_mii = recurrence_mii(block, graph, carried)
    mii = max(res_mii, rec_mii, 1)
    sequential = unit_asap(block, graph).n_steps
    achieved: Optional[int] = None
    placement: Dict[int, int] = {}
    for ii in range(mii, mii + max_ii_slack + 1):
        result = _try_modulo_schedule(block, ii, resources, graph, carried)
        if result is not None:
            achieved = ii
            placement = result
            break
    length = sequential
    if placement:
        length = max(
            placement[op.id] + max(unit_latency(op), 1) for op in block.ops
        ) if block.ops else 1
    return ModuloResult(
        block=block,
        res_mii=res_mii,
        rec_mii=rec_mii,
        achieved_ii=achieved,
        schedule_length=length,
        sequential_steps=sequential,
        op_count=len(block.ops),
        op_step=placement,
    )
