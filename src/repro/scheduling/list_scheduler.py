"""Resource-constrained list scheduling with operator chaining.

This is the workhorse scheduler behind the scheduled flows (HardwareC,
Bach C, C2Verilog, SpecC): critical-path-priority list scheduling in which

* operators chain combinationally within a control step while the running
  path delay fits in the clock period (technology model delays);
* slow operators (dividers at short clocks) become multi-cycle, holding
  their functional unit for several steps;
* per-step functional-unit limits come from a
  :class:`~repro.scheduling.resources.ResourceSet`;
* ``wait``/``delay``/``send``/``recv`` occupy steps of their own (they
  gate the FSM);
* HardwareC ``within`` groups are enforced greedily — members are boosted
  to maximum priority once their group opens, and an unmeetable bound
  raises :class:`ConstraintInfeasible`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.cdfg import BasicBlock, FunctionCDFG
from ..ir.ops import Operation, OpKind
from ..rtl.tech import DEFAULT_TECH, Technology
from .base import (
    BlockSchedule,
    ConstraintInfeasible,
    DependenceGraph,
    FunctionSchedule,
    ScheduleError,
    build_dependence_graph,
    chained_steps,
    is_chainable,
)
from .resources import FREE, ResourceSet, classify, op_delay_ns

_EXCLUSIVE_KINDS = (OpKind.BARRIER, OpKind.DELAY, OpKind.SEND, OpKind.RECV)


def _priorities(graph: DependenceGraph, tech: Technology) -> Dict[int, float]:
    """Critical-path priority: the longest delay-weighted path from each op
    to any sink.  Computed in reverse topological order."""
    order = _topological(graph)
    priority: Dict[int, float] = {}
    by_id = {op.id: op for op in graph.ops}
    for op in reversed(order):
        succ_max = 0.0
        for succ_id in graph.successors(op):
            succ_max = max(succ_max, priority[succ_id])
        priority[op.id] = op_delay_ns(op, tech) + succ_max
    return priority


def _topological(graph: DependenceGraph) -> List[Operation]:
    remaining = {op.id: len(graph.predecessors(op)) for op in graph.ops}
    by_id = {op.id: op for op in graph.ops}
    ready = [op for op in graph.ops if remaining[op.id] == 0]
    order: List[Operation] = []
    while ready:
        op = ready.pop(0)
        order.append(op)
        for succ_id in sorted(graph.successors(op)):
            remaining[succ_id] -= 1
            if remaining[succ_id] == 0:
                ready.append(by_id[succ_id])
    if len(order) != len(graph.ops):
        raise ScheduleError("dependence graph has a cycle")
    return order


class _ListScheduler:
    def __init__(
        self,
        block: BasicBlock,
        resources: ResourceSet,
        tech: Technology,
        clock_ns: float,
        constraints: Optional[Dict[int, int]],
    ):
        self.block = block
        self.resources = resources
        self.tech = tech
        self.clock_ns = clock_ns
        self.constraints = constraints or {}
        self.graph = build_dependence_graph(block)
        self.priority = _priorities(self.graph, tech)
        self.by_id = {op.id: op for op in block.ops}
        # Results
        self.op_step: Dict[int, int] = {}
        self.op_start: Dict[int, float] = {}
        self.op_finish: Dict[int, float] = {}
        # Step occupancy
        self.usage: Dict[int, Dict[str, int]] = {}       # step -> class -> count
        self.step_has_ops: Set[int] = set()
        self.exclusive_steps: Set[int] = set()
        self.group_first_step: Dict[int, int] = {}

    # -- readiness ----------------------------------------------------------

    def _pred_ready(self, op: Operation, step: int) -> Optional[float]:
        """If all predecessors allow ``op`` to start in ``step``, the
        earliest start time (ns within the step); otherwise None."""
        start = 0.0
        for pred_id in self.graph.predecessors(op):
            if pred_id not in self.op_step:
                return None
            pred = self.by_id[pred_id]
            pred_step = self.op_step[pred_id]
            pred_span = chained_steps(pred, self.clock_ns, self.tech)
            if pred_span > 1 or not is_chainable(pred):
                earliest = pred_step + pred_span
                if step < earliest:
                    return None
            else:
                if step < pred_step:
                    return None
                if step == pred_step:
                    start = max(start, self.op_finish[pred_id])
        return start

    def _resource_free(self, op: Operation, step: int, span: int) -> bool:
        resource = classify(op)
        if resource == FREE:
            return True
        limit = self.resources.limit(resource)
        if limit is None:
            return True
        for s in range(step, step + span):
            if self.usage.get(s, {}).get(resource, 0) >= limit:
                return False
        return True

    def _occupy(self, op: Operation, step: int, span: int) -> None:
        resource = classify(op)
        for s in range(step, step + span):
            self.step_has_ops.add(s)
            if resource != FREE:
                counts = self.usage.setdefault(s, {})
                counts[resource] = counts.get(resource, 0) + 1

    # -- constraint groups ---------------------------------------------------

    def _constraint_deadline(self, op: Operation) -> Optional[int]:
        if op.constraint is None or op.constraint not in self.constraints:
            return None
        first = self.group_first_step.get(op.constraint)
        if first is None:
            return None
        return first + self.constraints[op.constraint] - 1

    def _note_group(self, op: Operation, step: int) -> None:
        if op.constraint is not None and op.constraint in self.constraints:
            self.group_first_step.setdefault(op.constraint, step)

    # -- main loop ------------------------------------------------------------

    def run(self) -> BlockSchedule:
        unscheduled: Set[int] = {op.id for op in self.block.ops}
        step = 0
        # Generous upper bound: every op alone in a step, plus delays.
        budget = 4 * (len(self.block.ops) + 4)
        for op in self.block.ops:
            if op.kind is OpKind.DELAY:
                budget += op.cycles
            if op.kind is OpKind.BINARY and op.op in ("/", "%"):
                budget += chained_steps(op, self.clock_ns, self.tech)
        while unscheduled:
            if step > budget:
                raise ScheduleError(
                    f"scheduler made no progress by step {step} in"
                    f" {self.block.label}"
                )
            self._schedule_step(step, unscheduled)
            step += 1
        n_steps = 1
        for op_id, s in self.op_step.items():
            op = self.by_id[op_id]
            span = self._span(op)
            n_steps = max(n_steps, s + span)
        schedule = BlockSchedule(
            block=self.block,
            op_step=self.op_step,
            n_steps=n_steps,
            op_start_ns=self.op_start,
            op_finish_ns=self.op_finish,
        )
        self._verify_constraints(schedule)
        return schedule

    def _span(self, op: Operation) -> int:
        if op.kind is OpKind.DELAY:
            return max(op.cycles, 1)
        return chained_steps(op, self.clock_ns, self.tech)

    def _schedule_step(self, step: int, unscheduled: Set[int]) -> None:
        if step in self.exclusive_steps:
            return
        # Iterate to a fixpoint within the step: placing an op can make its
        # dependents chainable into the very same step.
        while self._schedule_step_pass(step, unscheduled):
            pass

    def _schedule_step_pass(self, step: int, unscheduled: Set[int]) -> bool:
        placed_any = False
        candidates = [
            self.by_id[op_id]
            for op_id in unscheduled
            if self._pred_ready(self.by_id[op_id], step) is not None
        ]
        # Boost members of open constraint groups so they land before their
        # deadline; then critical path; ties broken by program order.
        def sort_key(op: Operation):
            deadline = self._constraint_deadline(op)
            urgent = 0 if deadline is not None else 1
            return (urgent, -self.priority[op.id], op.id)

        candidates.sort(key=sort_key)
        for op in candidates:
            if op.id not in unscheduled:
                continue
            deadline = self._constraint_deadline(op)
            if deadline is not None and step > deadline:
                raise ConstraintInfeasible(
                    f"within group {op.constraint} cannot finish within"
                    f" {self.constraints[op.constraint]} cycles"
                    f" ({op} would land at step {step}, deadline {deadline})"
                )
            if op.kind in _EXCLUSIVE_KINDS:
                before = len(unscheduled)
                self._try_exclusive(op, step, unscheduled)
                if len(unscheduled) != before:
                    placed_any = True
                continue
            start = self._pred_ready(op, step)
            assert start is not None
            delay = op_delay_ns(op, self.tech)
            span = self._span(op)
            if span == 1:
                if start + delay > self.clock_ns:
                    continue  # does not fit this step; retried later
            else:
                if start > 0.0:
                    continue  # multi-cycle ops start on a fresh step
            if any(s in self.exclusive_steps for s in range(step, step + span)):
                continue
            if not self._resource_free(op, step, span):
                continue
            self.op_step[op.id] = step
            self.op_start[op.id] = start
            self.op_finish[op.id] = start + delay if span == 1 else delay
            self._occupy(op, step, span)
            self._note_group(op, step)
            unscheduled.discard(op.id)
            placed_any = True
        return placed_any

    def _try_exclusive(self, op: Operation, step: int, unscheduled: Set[int]) -> None:
        """Barriers, delays, and channel ops own their step(s) outright."""
        span = max(op.cycles, 1) if op.kind is OpKind.DELAY else 1
        steps = range(step, step + span)
        if any(s in self.step_has_ops or s in self.exclusive_steps for s in steps):
            return  # wait for an empty step
        self.op_step[op.id] = step
        self.op_start[op.id] = 0.0
        self.op_finish[op.id] = op_delay_ns(op, self.tech)
        for s in steps:
            self.exclusive_steps.add(s)
            self.step_has_ops.add(s)
        self._note_group(op, step)
        unscheduled.discard(op.id)

    def _verify_constraints(self, schedule: BlockSchedule) -> None:
        spans: Dict[int, List[int]] = {}
        for op in self.block.ops:
            if op.constraint is not None and op.constraint in self.constraints:
                spans.setdefault(op.constraint, []).append(schedule.op_step[op.id])
        for group, steps in spans.items():
            used = max(steps) - min(steps) + 1
            if used > self.constraints[group]:
                raise ConstraintInfeasible(
                    f"within group {group} used {used} steps"
                    f" (budget {self.constraints[group]})"
                )


def list_schedule_block(
    block: BasicBlock,
    resources: Optional[ResourceSet] = None,
    tech: Technology = DEFAULT_TECH,
    clock_ns: float = 5.0,
    constraints: Optional[Dict[int, int]] = None,
) -> BlockSchedule:
    """Schedule one block.  ``constraints`` maps within-group ids to cycle
    budgets."""
    resources = resources or ResourceSet.unlimited()
    return _ListScheduler(block, resources, tech, clock_ns, constraints).run()


def list_schedule_function(
    cdfg: FunctionCDFG,
    resources: Optional[ResourceSet] = None,
    tech: Technology = DEFAULT_TECH,
    clock_ns: float = 5.0,
    trace=None,
) -> FunctionSchedule:
    """Schedule every reachable block of a function."""
    from ..trace import ensure_trace

    t = ensure_trace(trace)
    resources = resources or ResourceSet.unlimited()
    constraints = {c.group: c.cycles for c in cdfg.constraints}
    schedule = FunctionSchedule(
        cdfg=cdfg, clock_ns=clock_ns, scheduler="list", resources=resources
    )
    blocks = 0
    for block in cdfg.reachable_blocks():
        schedule.blocks[block.id] = list_schedule_block(
            block, resources, tech, clock_ns, constraints
        )
        blocks += 1
    if t.enabled:
        t.count(
            blocks_scheduled=blocks,
            steps=sum(b.n_steps for b in schedule.blocks.values()),
        )
    return schedule
