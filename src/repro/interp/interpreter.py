"""The golden-model interpreter.

This executes the *software* semantics of the language — C's sequential
semantics plus cooperative concurrency for ``par`` blocks, processes, and
rendezvous channels.  Every synthesis flow is validated against it: for any
program, the hardware produced by a flow must compute the same outputs the
interpreter does.

Concurrency model
-----------------
Tasks (the main function, each ``process`` function, and each branch of a
``par``) are Python generators that yield *events*: channel sends/receives,
clock ticks, and spawns.  A central scheduler advances tasks round-robin and
pairs rendezvous partners.  Because semantic analysis rejects write-write
races between ``par`` branches, any fair interleaving yields the same final
state; the scheduler's round-robin order is simply one such interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple, Union

from ..lang import ast_nodes as ast
from ..lang.errors import InterpError
from ..lang.semantic import SemanticInfo
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import (
    ArrayType,
    BoolType,
    ChannelType,
    IntType,
    PointerType,
    Type,
    VoidType,
)
from .machine import eval_binary, eval_unary, wrap

# ---------------------------------------------------------------------------
# Runtime values and storage
# ---------------------------------------------------------------------------


class Box:
    """A storage location: one slot for scalars, ``size`` slots for arrays.

    Boxes give pointers something stable to refer to: a pointer value is a
    (box, offset) pair, so aliasing works exactly as in C.
    """

    __slots__ = ("values", "element_type", "name")

    def __init__(self, element_type: Type, size: int = 1, name: str = ""):
        self.element_type = element_type
        self.values = [0] * size
        self.name = name

    def read(self, offset: int = 0) -> int:
        if not 0 <= offset < len(self.values):
            raise InterpError(
                f"out-of-bounds access to {self.name or 'storage'}"
                f" (index {offset}, size {len(self.values)})"
            )
        return self.values[offset]

    def write(self, value: int, offset: int = 0) -> None:
        if not 0 <= offset < len(self.values):
            raise InterpError(
                f"out-of-bounds store to {self.name or 'storage'}"
                f" (index {offset}, size {len(self.values)})"
            )
        self.values[offset] = wrap(value, self.element_type)


@dataclass(frozen=True)
class Pointer:
    """A runtime pointer value: a box plus an element offset."""

    box: Box
    offset: int = 0

    def add(self, delta: int) -> "Pointer":
        return Pointer(self.box, self.offset + delta)


Value = Union[int, Pointer, Box, "RuntimeChannel"]


class RuntimeChannel:
    """A rendezvous channel's runtime identity and logging."""

    __slots__ = ("name", "element_type", "log")

    def __init__(self, name: str, element_type: Type):
        self.name = name
        self.element_type = element_type
        self.log: List[int] = []


# ---------------------------------------------------------------------------
# Scheduler events and control-flow signals
# ---------------------------------------------------------------------------


@dataclass
class SendEvent:
    channel: RuntimeChannel
    value: int


@dataclass
class RecvEvent:
    channel: RuntimeChannel


@dataclass
class TickEvent:
    cycles: int = 1


@dataclass
class SpawnEvent:
    generators: List[Generator]


Event = Union[SendEvent, RecvEvent, TickEvent, SpawnEvent]


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Optional[int]):
        self.value = value


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """What running a program observably produced."""

    value: Optional[int]
    globals: Dict[str, Union[int, List[int]]] = field(default_factory=dict)
    channel_log: Dict[str, List[int]] = field(default_factory=dict)
    steps: int = 0

    def observable(self) -> Tuple:
        """A hashable summary used by equivalence tests."""
        return (
            self.value,
            tuple(sorted(
                (k, tuple(v) if isinstance(v, list) else v)
                for k, v in self.globals.items()
            )),
            tuple(sorted((k, tuple(v)) for k, v in self.channel_log.items())),
        )


# ---------------------------------------------------------------------------
# The interpreter proper
# ---------------------------------------------------------------------------


class Interpreter:
    """Executes a type-checked program.

    Parameters
    ----------
    program, info:
        Output of :func:`repro.lang.parse`.
    max_steps:
        Statement budget; exceeding it raises :class:`InterpError` so that
        accidentally non-terminating workloads fail fast instead of hanging
        the test suite.
    """

    def __init__(self, program: ast.Program, info: SemanticInfo, max_steps: int = 2_000_000):
        self.program = program
        self.info = info
        self.max_steps = max_steps
        self.steps = 0
        self.globals: Dict[Symbol, Box] = {}
        self.channels: Dict[Symbol, RuntimeChannel] = {}
        self._init_globals()

    # -- storage ----------------------------------------------------------

    def _init_globals(self) -> None:
        for decl in self.program.globals:
            symbol: Symbol = decl.symbol  # type: ignore[attr-defined]
            self.globals[symbol] = self._make_box(symbol.type, symbol.name)
            init = self.info.global_inits.get(symbol.name)
            box = self.globals[symbol]
            if init is None:
                continue
            if isinstance(init, list):
                for i, v in enumerate(init):
                    box.write(v, i)
            else:
                box.write(init)
        for chan in self.program.channels:
            symbol = chan.symbol  # type: ignore[attr-defined]
            self.channels[symbol] = RuntimeChannel(symbol.name, chan.element_type)

    @staticmethod
    def _make_box(var_type: Type, name: str) -> Box:
        if isinstance(var_type, ArrayType):
            if isinstance(var_type.element, ArrayType):
                raise InterpError(
                    f"multi-dimensional array {name!r} must be flattened first"
                )
            return Box(var_type.element, var_type.size, name)
        return Box(var_type, 1, name)

    # -- program execution -------------------------------------------------

    def run(self, function: str = "main", args: Sequence[Value] = ()) -> ExecutionResult:
        """Run ``function`` (concurrently with all ``process`` functions)
        and return the observable results."""
        main_fn = self.program.function(function)
        root = self._call_task(main_fn, list(args))
        tasks: List[_Task] = [_Task(root, name=function)]
        for proc in self.program.processes:
            if proc.name != function:
                tasks.append(_Task(self._call_task(proc, []), name=proc.name))
        value = _Scheduler(tasks).run()
        return ExecutionResult(
            value=value,
            globals=self._snapshot_globals(),
            channel_log={c.name: list(c.log) for c in self.channels.values()},
            steps=self.steps,
        )

    def _snapshot_globals(self) -> Dict[str, Union[int, List[int]]]:
        result: Dict[str, Union[int, List[int]]] = {}
        for symbol, box in self.globals.items():
            if isinstance(symbol.type, ArrayType):
                result[symbol.name] = list(box.values)
            else:
                result[symbol.name] = box.read()
        return result

    def _call_task(self, fn: ast.FunctionDef, args: List[Value]) -> Generator:
        """A generator that runs one function invocation to completion and
        returns its return value."""

        def task() -> Generator:
            env = self._bind_params(fn, args)
            try:
                yield from self._exec_block(fn.body, env)
            except _Return as ret:
                # C converts the return expression to the declared return
                # type; the RTL side types the return register the same way,
                # so skipping this wrap makes e.g. ``int f()`` returning a
                # uint-typed expression diverge from every flow.
                if isinstance(ret.value, int) and isinstance(
                    fn.return_type, (IntType, BoolType)
                ):
                    return wrap(ret.value, fn.return_type)
                return ret.value
            return None

        return task()

    def _bind_params(self, fn: ast.FunctionDef, args: List[Value]) -> Dict[Symbol, Value]:
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name}() expects {len(fn.params)} arguments, got {len(args)}"
            )
        env: Dict[Symbol, Value] = {}
        for param, arg in zip(fn.params, args):
            symbol: Symbol = param.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, ArrayType):
                if isinstance(arg, (list, tuple)):
                    box = self._make_box(symbol.type, symbol.name)
                    for i, v in enumerate(arg):
                        box.write(v, i)
                    arg = box
                if not isinstance(arg, Box):
                    raise InterpError(
                        f"array parameter {symbol.name!r} needs an array argument"
                    )
                env[symbol] = arg
            elif isinstance(symbol.type, ChannelType):
                if not isinstance(arg, RuntimeChannel):
                    raise InterpError(
                        f"channel parameter {symbol.name!r} needs a channel argument"
                    )
                env[symbol] = arg
            elif isinstance(symbol.type, PointerType):
                if not isinstance(arg, Pointer):
                    raise InterpError(
                        f"pointer parameter {symbol.name!r} needs a pointer argument"
                    )
                env[symbol] = arg
            else:
                if not isinstance(arg, int):
                    raise InterpError(
                        f"scalar parameter {symbol.name!r} needs an integer argument"
                    )
                box = Box(symbol.type, 1, symbol.name)
                box.write(arg)
                env[symbol] = box
        return env

    # -- statements ---------------------------------------------------------

    def _budget(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError(f"step budget of {self.max_steps} exceeded")

    def _exec_block(self, block: ast.Block, env: Dict[Symbol, Value]) -> Generator:
        for stmt in block.statements:
            yield from self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Dict[Symbol, Value]) -> Generator:
        self._budget()
        if isinstance(stmt, ast.Block):
            yield from self._exec_block(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            symbol: Symbol = stmt.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, PointerType):
                # Pointer variables hold Pointer values directly (unboxed);
                # the language has no pointer-to-pointer types.
                if stmt.init is not None:
                    value = yield from self._eval(stmt.init, env)
                    if not isinstance(value, Pointer):
                        raise InterpError(
                            f"pointer {symbol.name!r} must be initialized"
                            " with a pointer"
                        )
                    env[symbol] = value
                else:
                    env[symbol] = Pointer(Box(symbol.type, 0, "<null>"), 0)
                return
            box = self._make_box(symbol.type, symbol.name)
            env[symbol] = box
            if stmt.init is not None:
                value = yield from self._eval(stmt.init, env)
                box.write(self._as_scalar(value, stmt.init))
            elif stmt.array_init is not None:
                for i, expr in enumerate(stmt.array_init):
                    value = yield from self._eval(expr, env)
                    box.write(self._as_scalar(value, expr), i)
        elif isinstance(stmt, ast.Assign):
            value = yield from self._eval(stmt.value, env)
            if isinstance(value, Pointer):
                self._store_pointer(stmt.target, value, env)
            else:
                yield from self._store(
                    stmt.target, self._as_scalar(value, stmt.value), env
                )
        elif isinstance(stmt, ast.ExprStmt):
            yield from self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.If):
            cond = yield from self._eval(stmt.cond, env)
            if self._as_scalar(cond, stmt.cond):
                yield from self._exec_stmt(stmt.then, env)
            elif stmt.otherwise is not None:
                yield from self._exec_stmt(stmt.otherwise, env)
        elif isinstance(stmt, ast.While):
            while True:
                cond = yield from self._eval(stmt.cond, env)
                if not self._as_scalar(cond, stmt.cond):
                    break
                try:
                    yield from self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    yield from self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                cond = yield from self._eval(stmt.cond, env)
                if not self._as_scalar(cond, stmt.cond):
                    break
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                yield from self._exec_stmt(stmt.init, env)
            while True:
                if stmt.cond is not None:
                    cond = yield from self._eval(stmt.cond, env)
                    if not self._as_scalar(cond, stmt.cond):
                        break
                try:
                    yield from self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    yield from self._exec_stmt(stmt.step, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                raise _Return(None)
            value = yield from self._eval(stmt.value, env)
            raise _Return(self._as_scalar(value, stmt.value))
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Par):
            branches = [
                self._branch_task(branch, env) for branch in stmt.branches
            ]
            yield SpawnEvent(branches)
        elif isinstance(stmt, ast.Seq):
            yield from self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Wait):
            yield TickEvent(1)
        elif isinstance(stmt, ast.Delay):
            if stmt.cycles > 0:
                yield TickEvent(stmt.cycles)
        elif isinstance(stmt, ast.Within):
            # Timing constraints do not change functional semantics.
            yield from self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Send):
            channel = self._channel_of(stmt.symbol, env)  # type: ignore[attr-defined]
            value = yield from self._eval(stmt.value, env)
            scalar = wrap(self._as_scalar(value, stmt.value), channel.element_type)
            yield SendEvent(channel, scalar)
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _branch_task(self, branch: ast.Stmt, env: Dict[Symbol, Value]) -> Generator:
        def task() -> Generator:
            # Branches share the enclosing environment: reads and writes to
            # enclosing variables behave like C, and semantic analysis has
            # already rejected write-write races.
            yield from self._exec_stmt(branch, env)
            return None

        return task()

    def _channel_of(self, symbol: Symbol, env: Dict[Symbol, Value]) -> RuntimeChannel:
        if symbol in self.channels:
            return self.channels[symbol]
        bound = env.get(symbol)
        if isinstance(bound, RuntimeChannel):
            return bound
        raise InterpError(f"channel {symbol.name!r} is not bound")

    # -- expressions --------------------------------------------------------

    @staticmethod
    def _as_scalar(value: Value, expr: ast.Expr) -> int:
        if isinstance(value, int):
            return value
        if isinstance(value, Pointer):
            raise InterpError(
                f"pointer used where an integer is required at {expr.location}"
            )
        raise InterpError(
            f"aggregate used where a scalar is required at {expr.location}"
        )

    def _lookup(self, symbol: Symbol, env: Dict[Symbol, Value]) -> Value:
        if symbol in env:
            return env[symbol]
        if symbol in self.globals:
            return self.globals[symbol]
        if symbol in self.channels:
            return self.channels[symbol]
        raise InterpError(f"unbound variable {symbol.name!r}")

    def _eval(self, expr: ast.Expr, env: Dict[Symbol, Value]) -> Generator:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return int(expr.value)
        if isinstance(expr, ast.Identifier):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            value = self._lookup(symbol, env)
            if isinstance(value, Box) and not isinstance(symbol.type, ArrayType):
                return value.read()
            return value  # arrays, channels, pointers pass through
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "&":
                return (yield from self._address_of(expr.operand, env))
            operand = yield from self._eval(expr.operand, env)
            if expr.op == "*":
                if not isinstance(operand, Pointer):
                    raise InterpError("dereference of a non-pointer value")
                return operand.box.read(operand.offset)
            assert expr.type is not None
            return eval_unary(expr.op, self._as_scalar(operand, expr.operand), expr.type)
        if isinstance(expr, ast.BinaryOp):
            # Short-circuit evaluation, as in C.
            if expr.op == "&&":
                left = yield from self._eval(expr.left, env)
                if not self._as_scalar(left, expr.left):
                    return 0
                right = yield from self._eval(expr.right, env)
                return int(bool(self._as_scalar(right, expr.right)))
            if expr.op == "||":
                left = yield from self._eval(expr.left, env)
                if self._as_scalar(left, expr.left):
                    return 1
                right = yield from self._eval(expr.right, env)
                return int(bool(self._as_scalar(right, expr.right)))
            left = yield from self._eval(expr.left, env)
            right = yield from self._eval(expr.right, env)
            if isinstance(left, Pointer) and isinstance(right, int):
                if expr.op == "+":
                    return left.add(right)
                if expr.op == "-":
                    return left.add(-right)
                raise InterpError(f"invalid pointer operation {expr.op!r}")
            if isinstance(right, Pointer) and isinstance(left, int) and expr.op == "+":
                return right.add(left)
            if isinstance(left, Pointer) and isinstance(right, Pointer):
                if left.box is not right.box:
                    raise InterpError("comparing pointers into different objects")
                left, right = left.offset, right.offset
            assert expr.type is not None
            return eval_binary(
                expr.op,
                self._as_scalar(left, expr.left),
                self._as_scalar(right, expr.right),
                expr.type,
            )
        if isinstance(expr, ast.Conditional):
            cond = yield from self._eval(expr.cond, env)
            if self._as_scalar(cond, expr.cond):
                value = yield from self._eval(expr.then, env)
                arm = expr.then
            else:
                value = yield from self._eval(expr.otherwise, env)
                arm = expr.otherwise
            assert expr.type is not None
            return wrap(self._as_scalar(value, arm), expr.type)
        if isinstance(expr, ast.ArrayIndex):
            base = yield from self._eval(expr.base, env)
            index = yield from self._eval(expr.index, env)
            index = self._as_scalar(index, expr.index)
            if isinstance(base, Box):
                return base.read(index)
            if isinstance(base, Pointer):
                return base.box.read(base.offset + index)
            raise InterpError("indexing a non-array value")
        if isinstance(expr, ast.Call):
            fn = self.program.function(expr.callee)
            args: List[Value] = []
            for arg in expr.args:
                value = yield from self._eval(arg, env)
                args.append(value)
            result = yield from self._call_task(fn, args)
            if result is None and not isinstance(fn.return_type, VoidType):
                raise InterpError(
                    f"{fn.name}() fell off the end without returning a value"
                )
            return result
        if isinstance(expr, ast.Receive):
            channel = self._channel_of(expr.symbol, env)  # type: ignore[attr-defined]
            value = yield RecvEvent(channel)
            return value
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    def _address_of(self, expr: ast.Expr, env: Dict[Symbol, Value]) -> Generator:
        if isinstance(expr, ast.Identifier):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            value = self._lookup(symbol, env)
            if isinstance(value, Box):
                return Pointer(value, 0)
            raise InterpError(f"cannot take the address of {symbol.name!r}")
        if isinstance(expr, ast.ArrayIndex):
            base = yield from self._eval(expr.base, env)
            index = yield from self._eval(expr.index, env)
            index = self._as_scalar(index, expr.index)
            if isinstance(base, Box):
                return Pointer(base, index)
            if isinstance(base, Pointer):
                return base.add(index)
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            value = yield from self._eval(expr.operand, env)
            if isinstance(value, Pointer):
                return value
        raise InterpError("cannot take the address of this expression")

    def _store(self, target: ast.Expr, value: int, env: Dict[Symbol, Value]) -> Generator:
        if isinstance(target, ast.Identifier):
            symbol: Symbol = target.symbol  # type: ignore[attr-defined]
            slot = self._lookup(symbol, env)
            if isinstance(slot, Box):
                if isinstance(symbol.type, PointerType):
                    raise InterpError(
                        f"pointer variable {symbol.name!r} holds a pointer,"
                        " not an integer"
                    )
                slot.write(value)
                return
            raise InterpError(f"cannot assign to {symbol.name!r}")
        if isinstance(target, ast.ArrayIndex):
            base = yield from self._eval(target.base, env)
            index = yield from self._eval(target.index, env)
            index = self._as_scalar(index, target.index)
            if isinstance(base, Box):
                base.write(value, index)
                return
            if isinstance(base, Pointer):
                base.box.write(value, base.offset + index)
                return
            raise InterpError("indexed store into a non-array value")
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer = yield from self._eval(target.operand, env)
            if isinstance(pointer, Pointer):
                pointer.box.write(value, pointer.offset)
                return
            raise InterpError("store through a non-pointer value")
        raise InterpError("unsupported assignment target")

    def _store_pointer(self, target: ast.Expr, value: Pointer, env: Dict[Symbol, Value]) -> None:
        if isinstance(target, ast.Identifier):
            symbol: Symbol = target.symbol  # type: ignore[attr-defined]
            env[symbol] = value
            return
        raise InterpError("pointers may only be stored in simple variables")


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


class _Task:
    __slots__ = ("generator", "name", "resume_value", "done", "result",
                 "waiting", "children_left", "parent")

    def __init__(self, generator: Generator, name: str = "task"):
        self.generator = generator
        self.name = name
        self.resume_value: Optional[int] = None
        self.done = False
        self.result: Optional[int] = None
        self.waiting: Optional[Event] = None
        self.children_left = 0
        self.parent: Optional["_Task"] = None


class _Scheduler:
    """Round-robin cooperative scheduler with rendezvous channels."""

    def __init__(self, tasks: List[_Task]):
        self.runnable: List[_Task] = list(tasks)
        self.root = tasks[0]
        self.pending_send: Dict[RuntimeChannel, List[Tuple[_Task, int]]] = {}
        self.pending_recv: Dict[RuntimeChannel, List[_Task]] = {}
        self.blocked_count = 0

    def run(self) -> Optional[int]:
        while True:
            if not self.runnable:
                if self._any_blocked():
                    raise InterpError(self._deadlock_message())
                return self.root.result
            task = self.runnable.pop(0)
            self._step(task)

    def _any_blocked(self) -> bool:
        return any(self.pending_send.values()) or any(self.pending_recv.values())

    def _deadlock_message(self) -> str:
        blocked = [
            f"{t.name} (send on {c.name})"
            for c, pairs in self.pending_send.items()
            for t, _ in pairs
        ] + [
            f"{t.name} (recv on {c.name})"
            for c, tasks in self.pending_recv.items()
            for t in tasks
        ]
        return "deadlock: " + ", ".join(sorted(blocked))

    def _step(self, task: _Task) -> None:
        try:
            event = task.generator.send(task.resume_value)
        except StopIteration as stop:
            self._finish(task, stop.value)
            return
        task.resume_value = None
        if isinstance(event, SendEvent):
            receivers = self.pending_recv.get(event.channel, [])
            if receivers:
                receiver = receivers.pop(0)
                receiver.resume_value = event.value
                event.channel.log.append(event.value)
                self.runnable.append(receiver)
                self.runnable.append(task)
            else:
                self.pending_send.setdefault(event.channel, []).append(
                    (task, event.value)
                )
        elif isinstance(event, RecvEvent):
            senders = self.pending_send.get(event.channel, [])
            if senders:
                sender, value = senders.pop(0)
                task.resume_value = value
                event.channel.log.append(value)
                self.runnable.append(task)
                self.runnable.append(sender)
            else:
                self.pending_recv.setdefault(event.channel, []).append(task)
        elif isinstance(event, TickEvent):
            # Untimed golden model: a tick is merely a fairness point.
            self.runnable.append(task)
        elif isinstance(event, SpawnEvent):
            task.children_left = len(event.generators)
            if task.children_left == 0:
                self.runnable.append(task)
                return
            for i, generator in enumerate(event.generators):
                child = _Task(generator, name=f"{task.name}.par{i}")
                child.parent = task
                self.runnable.append(child)
        else:
            raise InterpError(f"unknown scheduler event {event!r}")

    def _finish(self, task: _Task, value: Optional[int]) -> None:
        task.done = True
        task.result = value
        parent = task.parent
        if parent is not None:
            parent.children_left -= 1
            if parent.children_left == 0:
                self.runnable.append(parent)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def run_program(
    program: ast.Program,
    info: SemanticInfo,
    function: str = "main",
    args: Sequence[Value] = (),
    max_steps: int = 2_000_000,
) -> ExecutionResult:
    """Run a parsed program under the golden model."""
    return Interpreter(program, info, max_steps=max_steps).run(function, args)


def run_source(
    source: str,
    function: str = "main",
    args: Sequence[Value] = (),
    max_steps: int = 2_000_000,
) -> ExecutionResult:
    """Parse and run source text under the golden model."""
    from ..lang import parse

    program, info = parse(source)
    return run_program(program, info, function, args, max_steps=max_steps)
