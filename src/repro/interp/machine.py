"""Shared machine arithmetic.

The interpreter, the FSMD simulator, the combinational evaluator, and the
asynchronous dataflow simulator all funnel their arithmetic through these
functions so that every backend produces bit-identical results.  Semantics
are C's, restricted to fixed-width integers:

* two's-complement wrap-around on every operation (via ``IntType.wrap``);
* division truncates toward zero, as C99 requires;
* right shift is arithmetic for signed, logical for unsigned operands;
* comparisons and logical operators yield 0 or 1.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..lang.errors import InterpError
from ..lang.types import BOOL, BoolType, IntType, PointerType, Type


def _as_int_type(value_type: Type) -> IntType:
    if isinstance(value_type, BoolType):
        return IntType(1, signed=False)
    if isinstance(value_type, IntType):
        return value_type
    if isinstance(value_type, PointerType):
        # Lowered pointers are word addresses into the unified memory.
        return IntType(32, signed=False)
    raise InterpError(f"expected an integer type, found {value_type}")


def wrap(value: int, value_type: Type) -> int:
    """Reduce ``value`` into the representable range of ``value_type``."""
    return _as_int_type(value_type).wrap(value)


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("modulo by zero")
    return a - _c_div(a, b) * b


def _shift_amount(b: int, width: int) -> int:
    if b < 0:
        raise InterpError(f"negative shift amount {b}")
    # C leaves shifts >= width undefined; hardware masks the amount.  We
    # saturate, which every backend then agrees on.
    return min(b, width)


def eval_binary(op: str, a: int, b: int, result_type: Type) -> int:
    """Apply binary operator ``op`` to already-wrapped operands and wrap the
    result into ``result_type``."""
    rt = _as_int_type(result_type)
    if op == "+":
        return rt.wrap(a + b)
    if op == "-":
        return rt.wrap(a - b)
    if op == "*":
        return rt.wrap(a * b)
    if op == "/":
        return rt.wrap(_c_div(a, b))
    if op == "%":
        return rt.wrap(_c_mod(a, b))
    if op == "&":
        return rt.wrap(a & b)
    if op == "|":
        return rt.wrap(a | b)
    if op == "^":
        return rt.wrap(a ^ b)
    if op == "<<":
        return rt.wrap(a << _shift_amount(b, rt.width))
    if op == ">>":
        # ``a`` is already sign-correct (a Python int), so Python's
        # arithmetic shift matches signed semantics; for unsigned operands
        # ``a`` is non-negative and the shift is logical automatically.
        return rt.wrap(a >> _shift_amount(b, rt.width))
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise InterpError(f"unknown binary operator {op!r}")


def eval_unary(op: str, a: int, result_type: Type) -> int:
    """Apply unary operator ``op`` and wrap into ``result_type``."""
    rt = _as_int_type(result_type)
    if op == "-":
        return rt.wrap(-a)
    if op == "~":
        return rt.wrap(~a)
    if op == "!":
        return int(a == 0)
    raise InterpError(f"unknown unary operator {op!r}")


# Operand-type promotion lives in the type checker; these tables let IR-level
# consumers ask which operators exist without importing the AST.
BINARY_OPS = frozenset(
    ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
     "==", "!=", "<", "<=", ">", ">=", "&&", "||"]
)
UNARY_OPS = frozenset(["-", "~", "!"])
COMPARISON_OPS = frozenset(["==", "!=", "<", "<=", ">", ">="])
