"""Golden-model interpreter for the C-like language.

Every synthesis flow in :mod:`repro.flows` is validated against this
interpreter: for a given program and inputs, the simulated hardware must
produce the same observable results (:meth:`ExecutionResult.observable`).
"""

from .interpreter import (
    Box,
    ExecutionResult,
    Interpreter,
    Pointer,
    RuntimeChannel,
    run_program,
    run_source,
)
from .machine import BINARY_OPS, COMPARISON_OPS, UNARY_OPS, eval_binary, eval_unary, wrap

__all__ = [
    "BINARY_OPS",
    "Box",
    "COMPARISON_OPS",
    "ExecutionResult",
    "Interpreter",
    "Pointer",
    "RuntimeChannel",
    "UNARY_OPS",
    "eval_binary",
    "eval_unary",
    "run_program",
    "run_source",
    "wrap",
]
