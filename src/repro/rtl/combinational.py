"""Combinational netlists — the Cones artifact.

A :class:`CombinationalNetlist` is a pure dataflow: a topologically ordered
list of side-effect-free operations over input symbols and constants.
Arrays have been dissolved into per-element values ("arrays treated as bit
vectors", as the paper says of Cones), loops unrolled, calls inlined,
control flow if-converted — so evaluation is a single pass, and cost is
just the sum of operators (area) and the longest delay path (delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.machine import eval_binary, eval_unary, wrap
from ..lang.errors import InterpError
from ..lang.symtab import Symbol
from ..ir.ops import Const, Operand, Operation, OpKind, VReg, VarRead
from ..scheduling.resources import op_area_ge, op_delay_ns
from .tech import DEFAULT_TECH, Technology


@dataclass
class CombinationalNetlist:
    """A flattened, two-level-style combinational block."""

    name: str
    # Scalar inputs (function parameters) in declaration order.
    inputs: List[Symbol] = field(default_factory=list)
    # Per-element inputs for array parameters / initialized global arrays:
    # pseudo-symbols named "arr[i]".
    element_inputs: Dict[Symbol, List[Symbol]] = field(default_factory=dict)
    ops: List[Operation] = field(default_factory=list)
    output: Optional[Operand] = None
    global_outputs: Dict[Symbol, Operand] = field(default_factory=dict)
    array_outputs: Dict[Symbol, List[Operand]] = field(default_factory=dict)
    # Default input values (global initializers) used when the caller
    # supplies none.
    input_defaults: Dict[str, int] = field(default_factory=dict)

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def area_ge(self, tech: Technology = DEFAULT_TECH) -> float:
        return sum(op_area_ge(op, tech) for op in self.ops)

    def critical_path_ns(self, tech: Technology = DEFAULT_TECH) -> float:
        finish: Dict[int, float] = {}
        worst = 0.0
        for op in self.ops:
            ready = 0.0
            for operand in op.operands:
                if isinstance(operand, VReg) and operand.id in finish:
                    ready = max(ready, finish[operand.id])
            done = ready + op_delay_ns(op, tech)
            if op.dest is not None:
                finish[op.dest.id] = done
            worst = max(worst, done)
        return worst

    def depth(self) -> int:
        """Logic depth in operator levels (CASTs are wires)."""
        level: Dict[int, int] = {}
        worst = 0
        for op in self.ops:
            ready = 0
            for operand in op.operands:
                if isinstance(operand, VReg) and operand.id in level:
                    ready = max(ready, level[operand.id])
            cost = 0 if op.kind is OpKind.CAST else 1
            done = ready + cost
            if op.dest is not None:
                level[op.dest.id] = done
            worst = max(worst, done)
        return worst


@dataclass
class CombResult:
    value: Optional[int]
    globals: Dict[str, object] = field(default_factory=dict)


def evaluate(
    netlist: CombinationalNetlist,
    args: Sequence[int] = (),
    inputs: Optional[Dict[str, int]] = None,
) -> CombResult:
    """Evaluate the netlist once.

    ``args`` binds the scalar inputs positionally; ``inputs`` overrides any
    input (including array elements, by their "arr[i]" names).
    """
    values: Dict[int, int] = {}
    bound: Dict[str, int] = dict(netlist.input_defaults)
    if len(args) > len(netlist.inputs):
        raise InterpError(
            f"{netlist.name} has {len(netlist.inputs)} inputs,"
            f" got {len(args)} arguments"
        )
    for symbol, value in zip(netlist.inputs, args):
        bound[symbol.unique_name] = wrap(value, symbol.type)
    if inputs:
        bound.update(inputs)

    def read(operand: Operand) -> int:
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, VarRead):
            return bound.get(operand.var.unique_name, 0)
        if operand.id not in values:
            raise InterpError(f"{operand} used before definition")
        return values[operand.id]

    for op in netlist.ops:
        if op.kind is OpKind.BINARY:
            assert op.dest is not None
            values[op.dest.id] = eval_binary(
                op.op, read(op.operands[0]), read(op.operands[1]), op.dest.type
            )
        elif op.kind is OpKind.UNARY:
            assert op.dest is not None
            values[op.dest.id] = eval_unary(op.op, read(op.operands[0]), op.dest.type)
        elif op.kind is OpKind.CAST:
            assert op.dest is not None
            values[op.dest.id] = wrap(read(op.operands[0]), op.dest.type)
        elif op.kind is OpKind.SELECT:
            assert op.dest is not None
            chosen = (
                read(op.operands[1]) if read(op.operands[0]) else read(op.operands[2])
            )
            values[op.dest.id] = wrap(chosen, op.dest.type)
        else:
            raise InterpError(
                f"combinational netlist contains sequential op {op.kind}"
            )

    result = CombResult(
        value=read(netlist.output) if netlist.output is not None else None
    )
    for symbol, operand in netlist.global_outputs.items():
        result.globals[symbol.name] = wrap(read(operand), symbol.type)
    for symbol, elements in netlist.array_outputs.items():
        element_type = symbol.type.element  # type: ignore[union-attr]
        result.globals[symbol.name] = [
            wrap(read(e), element_type) for e in elements
        ]
    return result
