"""Verilog emission.

Every synthesized artifact can be printed as synthesizable-style Verilog-
2001: FSMDs become a state register plus one clocked always-block; Cones
netlists become a forest of continuous assignments.  The text is the
deliverable the historical tools produced (C2Verilog's and Transmogrifier's
output *was* Verilog/netlists); it is emitted for inspection and downstream
tooling, while functional verification happens in the cycle-accurate Python
simulators against the golden model.

Rendezvous channels appear as four-phase ready/valid port pairs; a state
holding a channel operation stalls until its handshake completes, matching
the simulator's semantics.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set

from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, BoolType, IntType, PointerType, Type
from ..ir.ops import Const, Operand, Operation, OpKind, VReg, VarRead
from .combinational import CombinationalNetlist
from .fsmd import CondNext, Done, FSMD, FSMDSystem, NextState, State


def _width_of(value_type: Type) -> int:
    if isinstance(value_type, (IntType, BoolType, PointerType)):
        return max(value_type.bit_width, 1)
    return 32


def _is_signed(value_type: Type) -> bool:
    return isinstance(value_type, IntType) and value_type.signed


_GENSYM = re.compile(r"~\d+")


def _sanitize(text: str) -> str:
    return text.replace(".", "_").replace("~", "_").replace(
        "[", "_"
    ).replace("]", "")


class _Namer:
    """Deterministic per-module net names.

    Symbol ``unique_name``s embed a process-global disambiguation counter,
    so reusing them would make the emitted text depend on everything
    compiled earlier in the process.  The namer renumbers shadowed symbols
    densely in emission order instead (and leaves unshadowed names bare),
    making ``verilog()`` a pure function of the design — which is what
    lets the matrix runner content-address RTL by hash."""

    def __init__(self):
        self._assigned: Dict[str, str] = {}
        self._used: Set[str] = set()
        self._next = 0

    def __call__(self, symbol: Symbol) -> str:
        key = symbol.unique_name
        if key in self._assigned:
            return self._assigned[key]
        # ``~N`` is fresh_symbol's process-global gensym marker; drop it
        # before renumbering locally.
        base = _sanitize(_GENSYM.sub("", symbol.name))
        if key == symbol.name and base not in self._used:
            chosen = base
        else:
            chosen = f"{base}_{self._next}"
            self._next += 1
            while chosen in self._used:
                chosen = f"{base}_{self._next}"
                self._next += 1
        self._used.add(chosen)
        self._assigned[key] = chosen
        return chosen


_BINARY_VERILOG = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "&": "&", "|": "|", "^": "^", "<<": "<<", ">>": ">>>",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "&&": "&&", "||": "||",
}


class _ExprPrinter:
    """Renders operand DAGs as Verilog expressions (inlined per use)."""

    def __init__(self, producers: Dict[int, Operation], net: "_Namer",
                 unbound: Optional[Dict[int, int]] = None):
        self.producers = producers
        self.net = net
        # Cross-state values have no producer here; number the placeholders
        # densely per module so the text stays content-deterministic.
        self.unbound = unbound if unbound is not None else {}

    def operand(self, operand: Operand) -> str:
        if isinstance(operand, Const):
            width = _width_of(operand.type)
            if operand.value < 0:
                return f"-{width}'sd{abs(operand.value)}"
            return f"{width}'d{operand.value}"
        if isinstance(operand, VarRead):
            return self.net(operand.var)
        producer = self.producers.get(operand.id)
        if producer is None:
            index = self.unbound.setdefault(operand.id, len(self.unbound))
            return f"/*unbound*/ v{index}"
        return self.expression(producer)

    def expression(self, op: Operation) -> str:
        if op.kind is OpKind.BINARY:
            verilog_op = _BINARY_VERILOG[op.op]
            left = self.operand(op.operands[0])
            right = self.operand(op.operands[1])
            if op.op == ">>" and op.dest is not None and not _is_signed(op.dest.type):
                verilog_op = ">>"
            return f"({left} {verilog_op} {right})"
        if op.kind is OpKind.UNARY:
            mapping = {"-": "-", "~": "~", "!": "!"}
            return f"({mapping[op.op]}{self.operand(op.operands[0])})"
        if op.kind is OpKind.CAST:
            assert op.dest is not None
            width = _width_of(op.dest.type)
            return f"({self.operand(op.operands[0])} & {{{width}{{1'b1}}}})"
        if op.kind is OpKind.SELECT:
            return (
                f"({self.operand(op.operands[0])} ?"
                f" {self.operand(op.operands[1])} :"
                f" {self.operand(op.operands[2])})"
            )
        if op.kind is OpKind.LOAD:
            assert op.array is not None
            return f"{self.net(op.array)}[{self.operand(op.operands[0])}]"
        if op.kind is OpKind.RECV:
            assert op.channel is not None
            return f"{self.net(op.channel)}_data_in"
        return f"/*{op.kind.value}*/ 0"


def _collect_producers(ops: List[Operation]) -> Dict[int, Operation]:
    return {op.dest.id: op for op in ops if op.dest is not None}


def emit_fsmd(fsmd: FSMD, module_name: Optional[str] = None) -> str:
    """One FSMD as a Verilog module."""
    name = module_name or f"fsmd_{fsmd.name}"
    lines: List[str] = []
    net = _Namer()
    state_bits = max((fsmd.n_states - 1).bit_length(), 1)
    result_width = (
        _width_of(fsmd.return_type) if fsmd.return_type is not None else 32
    )

    channels: Set[Symbol] = set()
    for state in fsmd.states:
        for op in state.ops:
            if op.channel is not None:
                channels.add(op.channel)

    ports = ["input wire clk", "input wire rst"]
    for param in fsmd.params:
        if isinstance(param.type, ArrayType):
            continue
        width = _width_of(param.type)
        ports.append(f"input wire [{width - 1}:0] arg_{net(param)}")
    # Channels are globals, so plain source names are unique among them.
    for channel in sorted(channels, key=lambda s: s.name):
        width = _width_of(channel.type)
        ports += [
            f"output reg {net(channel)}_valid_out",
            f"output reg [{width - 1}:0] {net(channel)}_data_out",
            f"input wire {net(channel)}_ready_out",
            f"input wire {net(channel)}_valid_in",
            f"input wire [{width - 1}:0] {net(channel)}_data_in",
            f"output reg {net(channel)}_ready_in",
        ]
    ports += ["output reg done", f"output reg [{result_width - 1}:0] result"]

    lines.append(f"module {name} (")
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    lines.append(f"    reg [{state_bits - 1}:0] state;")
    for symbol in fsmd.registers:
        width = _width_of(symbol.type)
        signed = " signed" if _is_signed(symbol.type) else ""
        lines.append(f"    reg{signed} [{width - 1}:0] {net(symbol)};")
    for array in fsmd.arrays:
        assert isinstance(array.type, ArrayType)
        width = _width_of(array.type.element)
        lines.append(
            f"    reg [{width - 1}:0] {net(array)}"
            f" [0:{array.type.size - 1}];"
        )
    lines.append("")
    lines.append("    always @(posedge clk) begin")
    lines.append("        if (rst) begin")
    lines.append(f"            state <= {state_bits}'d{fsmd.entry};")
    lines.append("            done <= 1'b0;")
    for param in fsmd.params:
        if isinstance(param.type, ArrayType):
            continue
        lines.append(
            f"            {net(param)} <= arg_{net(param)};"
        )
    lines.append("        end else begin")
    lines.append("            case (state)")
    unbound: Dict[int, int] = {}
    for state in fsmd.states:
        lines.extend(_emit_state(state, state_bits, fsmd, net, unbound))
    lines.append("            endcase")
    lines.append("        end")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines)


def _emit_state(state: State, state_bits: int, fsmd: FSMD, net: _Namer,
                unbound: Optional[Dict[int, int]] = None) -> List[str]:
    pad = "                "
    lines = [f"{pad}{state_bits}'d{state.id}: begin  // {state.label}"]
    printer = _ExprPrinter(_collect_producers(state.ops), net, unbound)
    channel_op = state.channel_op()
    guard = pad + "    "
    body_pad = guard
    if channel_op is not None:
        chan = net(channel_op.channel)  # type: ignore[arg-type]
        if channel_op.kind is OpKind.SEND:
            lines.append(f"{guard}{chan}_valid_out <= 1'b1;")
            lines.append(
                f"{guard}{chan}_data_out <="
                f" {printer.operand(channel_op.operands[0])};"
            )
            lines.append(f"{guard}if ({chan}_ready_out) begin")
        else:
            lines.append(f"{guard}{chan}_ready_in <= 1'b1;")
            lines.append(f"{guard}if ({chan}_valid_in) begin")
        body_pad = guard + "    "
    for op in state.ops:
        if op.kind is OpKind.STORE:
            assert op.array is not None
            lines.append(
                f"{body_pad}{net(op.array)}"
                f"[{printer.operand(op.operands[0])}] <="
                f" {printer.operand(op.operands[1])};"
            )
    for symbol, value in state.latches.items():
        lines.append(f"{body_pad}{net(symbol)} <= {printer.operand(value)};")
    lines.extend(_emit_transition(state.transition, printer, state_bits, body_pad))
    if channel_op is not None:
        lines.append(f"{guard}end")
    lines.append(f"{pad}end")
    return lines


def _emit_transition(transition, printer: _ExprPrinter, state_bits: int,
                     pad: str) -> List[str]:
    if isinstance(transition, NextState):
        return [f"{pad}state <= {state_bits}'d{transition.target};"]
    if isinstance(transition, Done):
        lines = [f"{pad}done <= 1'b1;"]
        if transition.value is not None:
            lines.append(f"{pad}result <= {printer.operand(transition.value)};")
        return lines
    if isinstance(transition, CondNext):
        lines = [f"{pad}if ({printer.operand(transition.cond)}) begin"]
        lines += _emit_arm(transition.if_true, printer, state_bits, pad + "    ")
        lines.append(f"{pad}end else begin")
        lines += _emit_arm(transition.if_false, printer, state_bits, pad + "    ")
        lines.append(f"{pad}end")
        return lines
    return [f"{pad}// no transition"]


def _emit_arm(arm, printer: _ExprPrinter, state_bits: int, pad: str) -> List[str]:
    if isinstance(arm, int):
        return [f"{pad}state <= {state_bits}'d{arm};"]
    return _emit_transition(arm, printer, state_bits, pad)


def emit_fsmd_system(system: FSMDSystem, top_name: str = "top",
                     trace=None) -> str:
    """All machines of a system, plus a comment header describing the
    shared channels (the interconnect a system integrator would wire)."""
    from ..trace import ensure_trace

    t = ensure_trace(trace)
    parts = [
        "// Generated by repro — C-like hardware synthesis framework",
        f"// {len(system.fsmds)} machine(s);"
        f" {len(system.channels)} rendezvous channel(s)",
        "",
    ]
    for fsmd in system.fsmds:
        if t.enabled:
            with t.span(f"emit.{fsmd.name}", cat="module"):
                text = emit_fsmd(fsmd)
                t.count(states=fsmd.n_states)
        else:
            text = emit_fsmd(fsmd)
        parts.append(text)
        parts.append("")
    return "\n".join(parts)


def emit_combinational(netlist: CombinationalNetlist,
                       module_name: Optional[str] = None,
                       trace=None) -> str:
    """A Cones netlist as a module of continuous assignments."""
    if trace is not None and trace.enabled:
        with trace.span(f"emit.{netlist.name}", cat="module"):
            text = emit_combinational(netlist, module_name)
            trace.count(ops=len(netlist.ops))
        return text
    name = module_name or f"cones_{netlist.name}"
    lines: List[str] = []
    net = _Namer()
    ports: List[str] = []
    for symbol in netlist.inputs:
        width = _width_of(symbol.type)
        ports.append(f"input wire [{width - 1}:0] {net(symbol)}")
    for array, elements in netlist.element_inputs.items():
        for element in elements:
            width = _width_of(element.type)
            ports.append(f"input wire [{width - 1}:0] {net(element)}")
    out_width = (
        _width_of(netlist.output.type) if netlist.output is not None else 32
    )
    ports.append(f"output wire [{out_width - 1}:0] out")
    for symbol in netlist.global_outputs:
        width = _width_of(symbol.type)
        ports.append(f"output wire [{width - 1}:0] g_{net(symbol)}")
    lines.append(f"module {name} (")
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    # Wire per op result, assigned in topological order.  VReg ids come
    # from a process-global counter, so wires are renumbered densely in
    # netlist order to keep the text content-deterministic.
    wire_index: Dict[int, int] = {}
    for op in netlist.ops:
        if op.dest is None:
            continue
        wire_index[op.dest.id] = len(wire_index)
        width = _width_of(op.dest.type)
        lines.append(f"    wire [{width - 1}:0] n{wire_index[op.dest.id]};")

    def leaf(operand: Operand) -> str:
        if isinstance(operand, Const):
            width = _width_of(operand.type)
            if operand.value < 0:
                return f"-{width}'sd{abs(operand.value)}"
            return f"{width}'d{operand.value}"
        if isinstance(operand, VarRead):
            return net(operand.var)
        return f"n{wire_index[operand.id]}"

    for op in netlist.ops:
        if op.dest is None:
            continue
        if op.kind is OpKind.BINARY:
            text = (
                f"{leaf(op.operands[0])} {_BINARY_VERILOG[op.op]}"
                f" {leaf(op.operands[1])}"
            )
        elif op.kind is OpKind.UNARY:
            mapping = {"-": "-", "~": "~", "!": "!"}
            text = f"{mapping[op.op]}{leaf(op.operands[0])}"
        elif op.kind is OpKind.CAST:
            text = leaf(op.operands[0])
        elif op.kind is OpKind.SELECT:
            text = (
                f"{leaf(op.operands[0])} ? {leaf(op.operands[1])} :"
                f" {leaf(op.operands[2])}"
            )
        else:
            text = "0 /* unsupported */"
        lines.append(f"    assign n{wire_index[op.dest.id]} = {text};")
    if netlist.output is not None:
        lines.append(f"    assign out = {leaf(netlist.output)};")
    for symbol, operand in netlist.global_outputs.items():
        lines.append(f"    assign g_{net(symbol)} = {leaf(operand)};")
    lines.append("endmodule")
    return "\n".join(lines)


def emit_fsmd_testbench(
    fsmd: FSMD,
    args: List[int],
    expected_value: Optional[int],
    expected_cycles: Optional[int] = None,
    module_name: Optional[str] = None,
) -> str:
    """A self-checking testbench for one FSMD.

    The expected value comes from the golden model, so the generated pair
    (module + testbench) carries this framework's validation chain into
    any external Verilog simulator.  Designs with rendezvous channels need
    a system-level harness instead and are rejected here.
    """
    for state in fsmd.states:
        if state.channel_op() is not None:
            raise ValueError(
                "testbench generation covers single closed machines;"
                f" {fsmd.name} uses rendezvous channels"
            )
    dut = module_name or f"fsmd_{fsmd.name}"
    # Mirror emit_fsmd's naming pass (params are seeded first there) so the
    # testbench's arg_* port binds match the module's ports.
    net = _Namer()
    scalar_params = [p for p in fsmd.params if not isinstance(p.type, ArrayType)]
    if len(args) != len(scalar_params):
        raise ValueError(
            f"{fsmd.name} takes {len(scalar_params)} arguments, got {len(args)}"
        )
    result_width = (
        _width_of(fsmd.return_type) if fsmd.return_type is not None else 32
    )
    lines = [
        "`timescale 1ns/1ps",
        f"module tb_{fsmd.name};",
        "    reg clk = 1'b0;",
        "    reg rst = 1'b1;",
        "    wire done;",
        f"    wire [{result_width - 1}:0] result;",
        "    integer cycles = 0;",
    ]
    port_binds = ["        .clk(clk),", "        .rst(rst),"]
    for param, value in zip(scalar_params, args):
        width = _width_of(param.type)
        name = net(param)
        masked = value & ((1 << width) - 1)
        lines.append(f"    reg [{width - 1}:0] arg_{name} = {width}'d{masked};")
        port_binds.append(f"        .arg_{name}(arg_{name}),")
    port_binds.append("        .done(done),")
    port_binds.append("        .result(result)")
    lines.append(f"    {dut} dut (")
    lines.extend(port_binds)
    lines.append("    );")
    lines.append("    always #5 clk = ~clk;")
    lines.append("    always @(posedge clk) if (!rst && !done) cycles = cycles + 1;")
    lines.append("    initial begin")
    lines.append("        repeat (2) @(posedge clk);")
    lines.append("        rst = 1'b0;")
    lines.append("        wait (done);")
    lines.append("        @(posedge clk);")
    if expected_value is not None:
        expected_masked = expected_value & ((1 << result_width) - 1)
        lines.append(
            f"        if (result !== {result_width}'d{expected_masked}) begin"
        )
        lines.append(
            f'            $display("FAIL: result=%0d expected={expected_value}",'
            " result);"
        )
        lines.append("            $fatal;")
        lines.append("        end")
    if expected_cycles is not None:
        lines.append(f"        if (cycles !== {expected_cycles})")
        lines.append(
            f'            $display("NOTE: cycles=%0d, model said'
            f' {expected_cycles}", cycles);'
        )
    lines.append('        $display("PASS");')
    lines.append("        $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines)
