"""RTL-level artifacts: technology model, FSMD, combinational netlists,
Verilog emission, and area/timing estimation."""

from .tech import DEFAULT_TECH, Technology

__all__ = ["DEFAULT_TECH", "Technology"]
