"""The FSMD (finite-state machine with datapath) artifact.

Every synchronous flow produces one FSMD per concurrent process: states are
(basic block × control step) pairs; each state executes its scheduled
operations; register latches fire on the exiting edge of a block's final
state; the controller follows the block terminators.  Cycle counts in the
simulator are exact by construction — one state per clock, plus stalls at
rendezvous states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, Type
from ..ir.cdfg import FunctionCDFG
from ..ir.ops import Branch, Jump, Operand, Operation, OpKind, Ret
from ..scheduling.base import FunctionSchedule


@dataclass
class NextState:
    target: int

    def __str__(self) -> str:
        return f"-> S{self.target}"


@dataclass
class CondNext:
    """A conditional transition.  Arms are either state ids or nested
    transitions — the nesting expresses the zero-cycle control tests of
    syntax-directed flows (Handel-C's while/if take no clock)."""

    cond: Operand
    if_true: Union[int, "Transition"]
    if_false: Union[int, "Transition"]

    def __str__(self) -> str:
        def arm(a) -> str:
            return f"S{a}" if isinstance(a, int) else f"({a})"

        return f"-> {self.cond} ? {arm(self.if_true)} : {arm(self.if_false)}"


@dataclass
class Done:
    value: Optional[Operand] = None

    def __str__(self) -> str:
        return f"done {self.value}" if self.value is not None else "done"


Transition = Union[NextState, CondNext, Done]


# Sentinel marking a State whose channel_op has not been memoized yet.
_CHANNEL_UNCACHED = object()


@dataclass
class State:
    id: int
    block_id: int
    step_index: int
    ops: List[Operation] = field(default_factory=list)
    # Register updates applied on this state's exiting clock edge (only the
    # final state of each block latches).
    latches: Dict[Symbol, Operand] = field(default_factory=dict)
    transition: Optional[Transition] = None
    label: str = ""
    # Memoized channel lookup.  Frontends mutate ``ops`` while building a
    # state (Handel-C lowers decision ops after construction, Ocapi appends
    # through its structural API), but states are frozen once simulation or
    # emission starts — the first channel_op() call then caches, so the
    # simulator's hot loop does not rescan the op list every cycle.
    _channel_op: object = field(
        default=_CHANNEL_UNCACHED, init=False, repr=False, compare=False
    )

    def channel_op(self) -> Optional[Operation]:
        cached = self._channel_op
        if cached is _CHANNEL_UNCACHED:
            cached = None
            for op in self.ops:
                if op.kind in (OpKind.SEND, OpKind.RECV):
                    cached = op
                    break
            self._channel_op = cached
        return cached


@dataclass
class FSMD:
    """A complete synthesized machine for one process."""

    name: str
    states: List[State] = field(default_factory=list)
    entry: int = 0
    registers: List[Symbol] = field(default_factory=list)
    params: List[Symbol] = field(default_factory=list)
    arrays: List[Symbol] = field(default_factory=list)
    return_type: Optional[Type] = None
    clock_ns: float = 0.0
    source_schedule: Optional[FunctionSchedule] = None
    # Syntax-directed machines (Handel-C) evaluate every lowered condition
    # eagerly, so speculative out-of-range addresses are normal: loads read
    # 0, stores are dropped — deterministic "garbage", as real RAM macros
    # give.  Scheduled machines keep strict bounds (an OOB access there is
    # a genuine compiler bug and should trap).
    tolerant_memory: bool = False

    @property
    def n_states(self) -> int:
        return len(self.states)

    def state(self, state_id: int) -> State:
        return self.states[state_id]

    def local_arrays(self) -> List[Symbol]:
        return [a for a in self.arrays if a.kind is not SymbolKind.GLOBAL]

    def shared_arrays(self) -> List[Symbol]:
        return [a for a in self.arrays if a.kind is SymbolKind.GLOBAL]

    def dump(self) -> str:
        lines = [f"fsmd {self.name}: {self.n_states} states, entry S{self.entry}"]
        for state in self.states:
            lines.append(f"  S{state.id} ({state.label}):")
            for op in state.ops:
                lines.append(f"    {op}")
            for var, value in state.latches.items():
                lines.append(f"    {var.unique_name} <= {value}")
            lines.append(f"    {state.transition}")
        return "\n".join(lines)


def fsmd_from_schedule(schedule: FunctionSchedule, name: str = "") -> FSMD:
    """Build the FSMD for a scheduled function."""
    cdfg = schedule.cdfg
    fsmd = FSMD(
        name=name or cdfg.name,
        registers=list(cdfg.registers),
        params=list(cdfg.params),
        arrays=list(cdfg.arrays),
        return_type=cdfg.return_type,
        clock_ns=schedule.clock_ns,
        source_schedule=schedule,
    )
    first_state_of_block: Dict[int, int] = {}
    blocks = cdfg.reachable_blocks()
    for block in blocks:
        block_schedule = schedule.blocks[block.id]
        steps = block_schedule.step_ops()
        first_state_of_block[block.id] = len(fsmd.states)
        for step_index in range(block_schedule.n_steps):
            state = State(
                id=len(fsmd.states),
                block_id=block.id,
                step_index=step_index,
                ops=steps[step_index] if step_index < len(steps) else [],
                label=f"{block.label}.{step_index}",
            )
            fsmd.states.append(state)
        final = fsmd.states[-1]
        final.latches = dict(block.var_writes)
    # Wire transitions now that all states exist.
    for block in blocks:
        block_schedule = schedule.blocks[block.id]
        base = first_state_of_block[block.id]
        for step_index in range(block_schedule.n_steps - 1):
            fsmd.states[base + step_index].transition = NextState(
                base + step_index + 1
            )
        final = fsmd.states[base + block_schedule.n_steps - 1]
        terminator = block.terminator
        if isinstance(terminator, Jump):
            final.transition = NextState(first_state_of_block[terminator.target.id])
        elif isinstance(terminator, Branch):
            final.transition = CondNext(
                cond=terminator.cond,
                if_true=first_state_of_block[terminator.if_true.id],
                if_false=first_state_of_block[terminator.if_false.id],
            )
        elif isinstance(terminator, Ret):
            final.transition = Done(terminator.value)
        else:
            raise ValueError(f"block {block.label} lacks a terminator")
    fsmd.entry = first_state_of_block[cdfg.entry.id] if cdfg.entry else 0
    return fsmd


@dataclass
class FSMDSystem:
    """A set of FSMDs running in lockstep: the root (main) machine plus one
    machine per ``process``, sharing global registers, global memories, and
    rendezvous channels."""

    fsmds: List[FSMD] = field(default_factory=list)
    channels: List[Symbol] = field(default_factory=list)
    global_registers: List[Symbol] = field(default_factory=list)
    global_arrays: List[Symbol] = field(default_factory=list)
    global_inits: Dict[str, object] = field(default_factory=dict)
    # Extra memory images keyed by symbol (e.g. the pointer plan's __mem).
    memory_images: Dict[Symbol, List[int]] = field(default_factory=dict)

    @property
    def root(self) -> FSMD:
        return self.fsmds[0]

    def total_states(self) -> int:
        return sum(f.n_states for f in self.fsmds)
