"""Technology model: per-operator delay and area estimates.

The paper's comparisons (combinational flattening vs. FSMDs, asynchronous
dataflow vs. a global clock, one-cycle-per-assignment vs. scheduled) all
hinge on *relative* operator costs, so this model is deliberately simple and
fully documented rather than calibrated to a foundry:

* delays are in nanoseconds for a generic ~90 nm standard-cell library;
* areas are in gate equivalents (GE, one NAND2);
* both scale with operand width: linearly for ripple-style arithmetic and
  storage, quadratically for multipliers/dividers, logarithmically where a
  tree structure is the obvious implementation (comparison, barrel shift,
  wide multiplexing).

Every flow and both simulators price hardware through this one table, so
cross-flow comparisons are apples to apples by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict


# Operator classes priced by the model.  The scheduler's resource classes
# (repro.scheduling.resources) map onto these.
ADD = "add"            # add/sub
COMPARE = "compare"    # relational and equality
LOGIC = "logic"        # and/or/xor/not
SHIFT = "shift"        # barrel shifter
MULTIPLY = "multiply"
DIVIDE = "divide"
SELECT = "select"      # 2:1 word mux
CAST = "cast"          # resize: wires only
MEM_READ = "mem_read"
MEM_WRITE = "mem_write"
REGISTER = "register"
CHANNEL = "channel"    # rendezvous handshake


@dataclass(frozen=True)
class Technology:
    """A named set of cost coefficients.

    ``base_delay_ns`` is the delay of the 32-bit instance of each operator;
    ``base_area_ge`` its area.  Widths scale per the class's rule.
    """

    name: str = "generic-90nm"
    base_delay_ns: Dict[str, float] = field(default_factory=lambda: dict(_BASE_DELAY))
    base_area_ge: Dict[str, float] = field(default_factory=lambda: dict(_BASE_AREA))
    # Sequential overhead folded into every clock period estimate.
    register_setup_ns: float = 0.20
    clock_skew_ns: float = 0.10
    # Asynchronous circuits replace the clock with per-operator handshakes.
    handshake_overhead_ns: float = 0.35

    def delay_ns(self, op_class: str, width: int = 32) -> float:
        base = self.base_delay_ns[op_class]
        return base * _delay_scale(op_class, width)

    def area_ge(self, op_class: str, width: int = 32) -> float:
        base = self.base_area_ge[op_class]
        return base * _area_scale(op_class, width)

    def register_area_ge(self, width: int) -> float:
        return self.base_area_ge[REGISTER] * (width / 32.0)

    def memory_area_ge(self, words: int, width: int, ports: int = 1) -> float:
        """A RAM macro: storage plus per-port decoding/sensing overhead."""
        storage = 1.2 * words * width  # ~1.2 GE per bit of SRAM + overhead
        port_overhead = ports * (40.0 + 2.0 * math.log2(max(words, 2)) * width / 8.0)
        return storage + port_overhead

    def mux_area_ge(self, inputs: int, width: int) -> float:
        if inputs <= 1:
            return 0.0
        return self.base_area_ge[SELECT] * (inputs - 1) * (width / 32.0)

    def mux_delay_ns(self, inputs: int, width: int = 32) -> float:
        if inputs <= 1:
            return 0.0
        levels = math.ceil(math.log2(max(inputs, 2)))
        return self.base_delay_ns[SELECT] * levels


_BASE_DELAY: Dict[str, float] = {
    ADD: 2.0,
    COMPARE: 1.6,
    LOGIC: 0.7,
    SHIFT: 1.4,
    MULTIPLY: 6.5,
    DIVIDE: 22.0,
    SELECT: 0.6,
    CAST: 0.0,
    MEM_READ: 2.8,
    MEM_WRITE: 2.8,
    REGISTER: 0.0,
    CHANNEL: 1.0,
}

_BASE_AREA: Dict[str, float] = {
    ADD: 280.0,
    COMPARE: 130.0,
    LOGIC: 64.0,
    SHIFT: 350.0,
    MULTIPLY: 3600.0,
    DIVIDE: 5200.0,
    SELECT: 96.0,
    CAST: 0.0,
    MEM_READ: 0.0,   # priced via memory_area_ge
    MEM_WRITE: 0.0,
    REGISTER: 260.0,
    CHANNEL: 120.0,
}

# Width scaling rules.  `linear` classes scale proportionally with width;
# `log` classes grow with a tree depth term; `quadratic` with width².
_DELAY_RULE: Dict[str, str] = {
    ADD: "linear_delay",
    COMPARE: "log",
    LOGIC: "flat",
    SHIFT: "log",
    MULTIPLY: "linear_delay",
    DIVIDE: "linear",
    SELECT: "flat",
    CAST: "flat",
    MEM_READ: "flat",
    MEM_WRITE: "flat",
    REGISTER: "flat",
    CHANNEL: "flat",
}

_AREA_RULE: Dict[str, str] = {
    ADD: "linear",
    COMPARE: "linear",
    LOGIC: "linear",
    SHIFT: "linearlog",
    MULTIPLY: "quadratic",
    DIVIDE: "quadratic",
    SELECT: "linear",
    CAST: "flat",
    MEM_READ: "flat",
    MEM_WRITE: "flat",
    REGISTER: "linear",
    CHANNEL: "flat",
}


def _delay_scale(op_class: str, width: int) -> float:
    rule = _DELAY_RULE[op_class]
    w = max(width, 1)
    if rule == "flat":
        return 1.0
    if rule == "log":
        return math.log2(max(w, 2)) / math.log2(32)
    if rule == "linear":
        return w / 32.0
    if rule == "linear_delay":
        # Carry chains are partially parallel: sublinear growth.
        return 0.35 + 0.65 * (w / 32.0)
    raise KeyError(rule)


def _area_scale(op_class: str, width: int) -> float:
    rule = _AREA_RULE[op_class]
    w = max(width, 1)
    if rule == "flat":
        return 1.0
    if rule == "linear":
        return w / 32.0
    if rule == "linearlog":
        return (w / 32.0) * (math.log2(max(w, 2)) / math.log2(32))
    if rule == "quadratic":
        return (w / 32.0) ** 2
    raise KeyError(rule)


DEFAULT_TECH = Technology()
