"""Result formatting for experiments and benchmarks."""

from .tables import (
    format_cell_results,
    format_dict,
    format_series,
    format_table,
    format_trace_summary,
    summarize_cells,
)

__all__ = [
    "format_cell_results",
    "format_dict",
    "format_series",
    "format_table",
    "format_trace_summary",
    "summarize_cells",
]
