"""Result formatting for experiments and benchmarks."""

from .tables import format_dict, format_series, format_table

__all__ = ["format_dict", "format_series", "format_table"]
