"""Plain-text tables and series, matching how the paper reports results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)


def format_series(
    name: str,
    points: Sequence[tuple],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 40,
) -> str:
    """A series with an ASCII bar per point — the 'figure' form for
    terminals.  Bars scale to the maximum y."""
    out = [f"{name}  ({x_label} -> {y_label})"]
    values = [float(y) for _, y in points]
    top = max(values) if values else 1.0
    top = top if top > 0 else 1.0
    for (x, y) in points:
        bar = "#" * max(1, int(round(width * float(y) / top))) if y else ""
        out.append(f"  {str(x):>10}  {float(y):>10.3f}  {bar}")
    return "\n".join(out)


def format_dict(name: str, data: Dict[str, object]) -> str:
    width = max((len(k) for k in data), default=1)
    lines = [name]
    for key, value in data.items():
        lines.append(f"  {key.ljust(width)}  {value}")
    return "\n".join(lines)
