"""Plain-text tables and series, matching how the paper reports results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)


def format_series(
    name: str,
    points: Sequence[tuple],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 40,
) -> str:
    """A series with an ASCII bar per point — the 'figure' form for
    terminals.  Bars scale to the maximum y."""
    out = [f"{name}  ({x_label} -> {y_label})"]
    values = [float(y) for _, y in points]
    top = max(values) if values else 1.0
    top = top if top > 0 else 1.0
    for (x, y) in points:
        bar = "#" * max(1, int(round(width * float(y) / top))) if y else ""
        out.append(f"  {str(x):>10}  {float(y):>10.3f}  {bar}")
    return "\n".join(out)


def format_cell_results(
    results: Sequence,
    title: Optional[str] = None,
    show_workload: bool = True,
) -> str:
    """Render matrix-runner :class:`~repro.runner.CellResult`s as the
    standard sweep table (used by ``repro matrix``, ``repro sweep``, and
    the T2 benchmark so every consumer prints the same shape)."""
    headers = ["flow", "verdict", "cycles", "latency(ns)", "area(GE)",
               "time(ms)", "src", "note"]
    if show_workload:
        headers.insert(0, "workload")
    rows: List[List[object]] = []
    for cell in results:
        if cell.verdict == "ok":
            cycles = cell.cycles if cell.clock_ns > 0 else "-"
            latency = f"{cell.latency_ns:.0f}"
            area = f"{cell.area_ge:.0f}"
        else:
            cycles = latency = area = "-"
        row: List[object] = [
            cell.flow, cell.verdict, cycles, latency, area,
            f"{cell.wall_s * 1000:.1f}",
            "cache" if cell.cached else "fresh",
            cell.note(),
        ]
        if show_workload:
            row.insert(0, cell.workload)
        rows.append(row)
    return format_table(headers, rows, title=title)


def summarize_cells(results: Sequence) -> Dict[str, object]:
    """Counts and totals for a sweep's footer line."""
    verdicts: Dict[str, int] = {}
    for cell in results:
        verdicts[cell.verdict] = verdicts.get(cell.verdict, 0) + 1
    return {
        "cells": len(results),
        "verdicts": verdicts,
        "cached": sum(1 for c in results if c.cached),
        "fresh": sum(1 for c in results if not c.cached),
        "wall_s": sum(c.wall_s for c in results),
        "unexpected": sum(1 for c in results if c.unexpected),
    }


def format_dict(name: str, data: Dict[str, object]) -> str:
    width = max((len(k) for k in data), default=1)
    lines = [name]
    for key, value in data.items():
        lines.append(f"  {key.ljust(width)}  {value}")
    return "\n".join(lines)


def format_trace_summary(
    results: Sequence, title: Optional[str] = None
) -> str:
    """Per-flow × per-phase wall-time table (milliseconds) aggregated from
    each cell's trace (``repro matrix --trace-summary``).

    Rows are flows, columns the canonical pipeline phases present in any
    trace, plus a total; cells without traces contribute nothing (their
    flow still appears, with dashes, so coverage gaps are visible)."""
    from ..trace import merge_phase_totals, sorted_phases

    by_flow: Dict[str, List[Optional[Dict[str, object]]]] = {}
    for cell in results:
        by_flow.setdefault(cell.flow, []).append(getattr(cell, "trace", None))
    totals = {
        flow: merge_phase_totals(traces) for flow, traces in by_flow.items()
    }
    phases = sorted_phases({p for t in totals.values() for p in t})
    headers = ["flow"] + [f"{p}(ms)" for p in phases] + ["total(ms)", "cells"]
    rows: List[List[object]] = []
    for flow in sorted(by_flow):
        phase_us = totals[flow]
        row: List[object] = [flow]
        for phase in phases:
            value = phase_us.get(phase)
            row.append(f"{value / 1000:.2f}" if value is not None else "-")
        row.append(f"{sum(phase_us.values()) / 1000:.2f}")
        row.append(len(by_flow[flow]))
        rows.append(row)
    return format_table(headers, rows, title=title)
