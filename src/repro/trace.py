"""``repro.trace`` — zero-dependency structured tracing and metrics.

The paper's whole argument is about *where* each C-like flow spends its
effort — which phase rejects a feature, how the scheduler places cycle
boundaries, why compiler-inferred ILP plateaus — so the reproduction needs
to see more than end-to-end verdicts.  A :class:`TraceContext` is created
per synthesis and threaded through the whole pipeline
(``parse -> semantic -> inline -> cdfg -> passes -> schedule -> bind ->
emit -> sim``); every phase opens a :class:`Span` carrying a monotonic
start, a duration, and free-form counters (op counts in/out, states,
registers, cache hits...).

Design constraints, in order:

* **Off means off.**  Tracing is disabled by default; the disabled path is
  the shared :data:`NO_TRACE` singleton whose ``span()`` returns one
  preallocated no-op context manager and whose ``count()``/``leaf()`` are
  ``pass``.  No spans, no string formatting, no allocation per call —
  ``benchmarks/bench_trace_overhead.py`` (E16) pins the budget.
* **Spans are plain data.**  They cross the matrix runner's process-pool
  boundary (pickled, or JSON inside a ``CellResult``) and live next to
  cached artifacts, so warm cache hits still report where a cell's time
  went when it was actually computed.  Pickling is rebuilt from fields —
  the same ``__reduce__`` discipline as ``FlowError``.
* **Standard exports.**  :meth:`TraceContext.to_chrome` emits the Chrome
  ``trace_event`` format (load it in ``chrome://tracing`` or Perfetto);
  :meth:`TraceContext.to_jsonl` emits one JSON object per span for ad-hoc
  ``jq``/pandas processing.

Usage::

    trace = TraceContext("gcd.c")
    with trace.span("parse", cat="phase"):
        ...
    trace.count(tokens=1234)                   # counter on the open span
    trace.write_chrome("out.json")             # open in Perfetto
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# Category names used across the pipeline.  ``CAT_PHASE`` marks the
# top-level pipeline stages that the matrix summary aggregates; everything
# else ("pass", "sim", "bind", "module", ...) is finer detail.
CAT_PHASE = "phase"

# The canonical pipeline ordering, used to sort summary columns.  Flows
# skip phases that do not apply to them (Cones has no schedule, CASH has
# no bind); unknown names sort after these, alphabetically.
PHASE_ORDER = (
    "parse",
    "semantic",
    "check",
    "inline",
    "cdfg",
    "passes",
    "schedule",
    "flatten",
    "bind",
    "emit",
    "sim",
)


def _phase_sort_key(name: str) -> Tuple[int, str]:
    try:
        return (PHASE_ORDER.index(name), "")
    except ValueError:
        return (len(PHASE_ORDER), name)


class Span:
    """One timed region: name, category, monotonic start, duration, and a
    flat dict of counters (``args`` in Chrome's vocabulary)."""

    __slots__ = ("name", "cat", "start_us", "dur_us", "args", "children")

    def __init__(
        self,
        name: str,
        cat: str = "",
        start_us: float = 0.0,
        dur_us: float = 0.0,
        args: Optional[Dict[str, object]] = None,
        children: Optional[List["Span"]] = None,
    ):
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.dur_us = dur_us
        self.args = args if args is not None else {}
        self.children = children if children is not None else []

    def __reduce__(self):
        # Slots have no __dict__; rebuild from the fields explicitly so
        # spans cross process boundaries intact (the parallel matrix
        # runner ships them home inside CellResults) — the same pattern
        # FlowError uses for the same reason.
        return (
            self.__class__,
            (self.name, self.cat, self.start_us, self.dur_us,
             self.args, self.children),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.cat!r}, "
            f"dur_us={self.dur_us:.1f}, children={len(self.children)})"
        )

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Pre-order (depth, span) traversal of this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "start_us": round(self.start_us, 3),
            "dur_us": round(self.dur_us, 3),
        }
        if self.args:
            data["args"] = dict(self.args)
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            name=str(data.get("name", "")),
            cat=str(data.get("cat", "")),
            start_us=float(data.get("start_us", 0.0)),
            dur_us=float(data.get("dur_us", 0.0)),
            args=dict(data.get("args", {})),  # type: ignore[arg-type]
            children=[cls.from_dict(c)
                      for c in data.get("children", ())],  # type: ignore[union-attr]
        )


class _NullSpan:
    """What ``NO_TRACE.span(...)`` hands out: one shared, reusable no-op
    context manager.  ``__enter__`` returns itself so `with ... as s`
    works; every mutator is a no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTrace:
    """The disabled tracer: the API of :class:`TraceContext`, none of the
    work.  A single shared instance (:data:`NO_TRACE`) backs every
    untraced synthesis, so the guarded calls in the pipeline cost one
    attribute lookup and one no-op call."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = ""):
        return _NULL_SPAN

    def count(self, **counters) -> None:
        pass

    def leaf(self, name: str, dur_s: float, cat: str = "", **counters) -> None:
        pass


NO_TRACE = NullTrace()


def ensure_trace(trace) -> "TraceContext":
    """``trace`` if given, else the shared disabled tracer."""
    return trace if trace is not None else NO_TRACE


class _SpanHandle:
    """Context manager that opens a :class:`Span` in a context's tree."""

    __slots__ = ("_context", "_span", "_t0")

    def __init__(self, context: "TraceContext", span: Span):
        self._context = context
        self._span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        context = self._context
        span = self._span
        parent = context._stack[-1] if context._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            context.roots.append(span)
        context._stack.append(span)
        self._t0 = perf_counter()
        span.start_us = (self._t0 - context._origin) * 1e6
        return span

    def __exit__(self, *exc):
        self._span.dur_us = (perf_counter() - self._t0) * 1e6
        self._context._stack.pop()
        return False


class TraceContext:
    """A per-synthesis tree of spans plus counters.

    Not thread-safe by design: one synthesis runs on one thread (the
    matrix runner gives each worker process its own context)."""

    enabled = True

    def __init__(self, name: str = "synthesis"):
        self.name = name
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._origin = perf_counter()

    def __reduce__(self):
        # An open stack cannot survive a process hop (and never needs to:
        # contexts are only shipped once their spans are closed).
        return (TraceContext.from_dict, (self.to_dict(),))

    # -- recording --------------------------------------------------------

    def span(self, name: str, cat: str = "") -> _SpanHandle:
        """Open a timed child span: ``with trace.span("passes", "phase"):``"""
        return _SpanHandle(self, Span(name, cat))

    def count(self, **counters) -> None:
        """Attach counters to the innermost open span (or a synthetic
        root-level ``counters`` span when nothing is open)."""
        if not self._stack:
            self.roots.append(Span("counters", args=dict(counters)))
            return
        args = self._stack[-1].args
        for key, value in counters.items():
            if isinstance(value, (int, float)) and isinstance(
                args.get(key), (int, float)
            ):
                args[key] = args[key] + value
            else:
                args[key] = value

    def leaf(self, name: str, dur_s: float, cat: str = "", **counters) -> None:
        """Record an already-measured region (e.g. absorbing a
        ``SimProfile``'s compile/execute split) as a closed child span."""
        parent = self._stack[-1] if self._stack else None
        start = (perf_counter() - self._origin) * 1e6 - dur_s * 1e6
        span = Span(name, cat, start_us=max(start, 0.0),
                    dur_us=dur_s * 1e6, args=dict(counters))
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    # -- inspection -------------------------------------------------------

    def spans(self) -> Iterator[Tuple[int, Span]]:
        """Pre-order (depth, span) pairs over the whole forest."""
        for root in self.roots:
            yield from root.walk()

    def span_count(self) -> int:
        return sum(1 for _ in self.spans())

    def find(self, name: str) -> Optional[Span]:
        for _, span in self.spans():
            if span.name == name:
                return span
        return None

    def phase_totals(self) -> Dict[str, float]:
        """Wall microseconds per pipeline phase (spans with
        ``cat == "phase"``), summed over the forest."""
        totals: Dict[str, float] = {}
        for _, span in self.spans():
            if span.cat == CAT_PHASE:
                totals[span.name] = totals.get(span.name, 0.0) + span.dur_us
        return totals

    def structure(self) -> List[object]:
        """The duration-free shape of the trace: nested ``[name, children]``
        lists.  Deterministic for a deterministic compile, which is what
        lets fuzz corpus entries carry a trace without breaking their
        byte-identical-across-runs contract."""
        def shape(span: Span) -> object:
            if not span.children:
                return span.name
            return [span.name, [shape(c) for c in span.children]]

        return [shape(root) for root in self.roots]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "spans": [root.to_dict() for root in self.roots],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceContext":
        context = cls(name=str(data.get("name", "synthesis")))
        context.roots = [
            Span.from_dict(s) for s in data.get("spans", ())  # type: ignore[union-attr]
        ]
        return context

    def to_jsonl(self) -> str:
        """One JSON object per span (pre-order), with depth."""
        lines = []
        for depth, span in self.spans():
            record = span.to_dict()
            record.pop("children", None)
            record["depth"] = depth
            record["trace"] = self.name
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines)

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` JSON object format: complete ("X")
        events with the required name/ph/ts/pid/tid keys, loadable in
        ``chrome://tracing`` and Perfetto."""
        events: List[Dict[str, object]] = [{
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": 1,
            "args": {"name": self.name},
        }]
        for _, span in self.spans():
            event: Dict[str, object] = {
                "name": span.name,
                "cat": span.cat or "repro",
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.dur_us, 3),
                "pid": 1,
                "tid": 1,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, sort_keys=True)
            handle.write("\n")

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")


# -- aggregation over serialized traces --------------------------------------

def _iter_span_dicts(trace_dict: Dict[str, object]) -> Iterator[Dict[str, object]]:
    stack = list(trace_dict.get("spans", ()))  # type: ignore[arg-type]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.get("children", ()))


def phase_totals_of(trace_dict: Optional[Dict[str, object]]) -> Dict[str, float]:
    """Phase-name -> total microseconds for one serialized trace (the form
    stored on :class:`~repro.runner.CellResult` and in the cache)."""
    totals: Dict[str, float] = {}
    if not trace_dict:
        return totals
    for span in _iter_span_dicts(trace_dict):
        if span.get("cat") == CAT_PHASE:
            name = str(span.get("name", ""))
            totals[name] = totals.get(name, 0.0) + float(span.get("dur_us", 0.0))
    return totals


def structure_of(trace_dict: Optional[Dict[str, object]]) -> List[object]:
    """Duration-free span shape of a serialized trace (see
    :meth:`TraceContext.structure`)."""
    if not trace_dict:
        return []

    def shape(span: Dict[str, object]) -> object:
        children = span.get("children")
        if not children:
            return span.get("name", "")
        return [span.get("name", ""), [shape(c) for c in children]]

    return [shape(s) for s in trace_dict.get("spans", ())]  # type: ignore[union-attr]


def counters_of(trace_dict: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Deterministic counters of a serialized trace, flattened as
    ``span-name.key`` (first occurrence wins on collisions)."""
    flat: Dict[str, object] = {}
    if not trace_dict:
        return flat
    for span in _iter_span_dicts(trace_dict):
        for key, value in (span.get("args") or {}).items():  # type: ignore[union-attr]
            flat.setdefault(f"{span.get('name', '')}.{key}", value)
    return flat


def numeric_counters_of(
    trace_dict: Optional[Dict[str, object]],
) -> Dict[str, int]:
    """The integer subset of :func:`counters_of` — the deterministic
    counts (ops, states, machines, lanes) a coverage signal may bucket.
    Bools and any non-integral values are dropped: counters are counts
    by contract, but a defensive filter keeps accidental floats (which
    could carry timing jitter) out of coverage identity."""
    flat: Dict[str, int] = {}
    for key, value in counters_of(trace_dict).items():
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        flat[key] = value
    return flat


def merge_phase_totals(
    traces: Sequence[Optional[Dict[str, object]]],
) -> Dict[str, float]:
    """Summed phase totals over many serialized traces (a matrix run)."""
    merged: Dict[str, float] = {}
    for trace_dict in traces:
        for phase, total in phase_totals_of(trace_dict).items():
            merged[phase] = merged.get(phase, 0.0) + total
    return merged


def sorted_phases(names) -> List[str]:
    """Phase names in canonical pipeline order (unknowns last, sorted)."""
    return sorted(names, key=_phase_sort_key)


__all__ = [
    "CAT_PHASE",
    "NO_TRACE",
    "NullTrace",
    "PHASE_ORDER",
    "Span",
    "TraceContext",
    "counters_of",
    "ensure_trace",
    "merge_phase_totals",
    "numeric_counters_of",
    "phase_totals_of",
    "sorted_phases",
    "structure_of",
]
