"""Hardware simulators: cycle-accurate FSMD systems, combinational
netlists, and asynchronous token dataflow."""

from .fsmd_sim import FSMDSimulator, SimResult, SimulationError, simulate

__all__ = ["FSMDSimulator", "SimResult", "SimulationError", "simulate"]
