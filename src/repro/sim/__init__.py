"""Hardware simulators: cycle-accurate FSMD systems, combinational
netlists, and asynchronous token dataflow.

FSMD systems have two interchangeable backends:

* ``interp`` — the reference interpreter (:mod:`fsmd_sim`): walks the op
  lists every cycle.  Authoritative, and the only backend that reports
  "read before being computed" for malformed machines.
* ``compiled`` — closure-compiled (:mod:`compiled`): specialises the
  system once into per-state Python closures with slot-resolved operands,
  then runs the same three-phase cycle.  Bit-identical results on every
  well-formed system, at a multiple of the interpreter's cycles/sec.

Select one with ``simulate(..., sim_backend="compiled")``; pass a
:class:`SimProfile` to either to get cycles/sec and the per-state visit
histogram.
"""

from typing import Dict, Optional, Sequence

from ..rtl.fsmd import FSMDSystem
from .compiled import SystemPlan, compile_system, simulate_compiled
from .fsmd_sim import FSMDSimulator, SimResult, SimulationError
from .fsmd_sim import simulate as simulate_interp
from .profile import SimProfile

BACKENDS = ("interp", "compiled")


def simulate(
    system: FSMDSystem,
    args: Sequence[int] = (),
    max_cycles: int = 2_000_000,
    process_args: Optional[Dict[str, Sequence[int]]] = None,
    sim_backend: str = "interp",
    profile: Optional[SimProfile] = None,
) -> SimResult:
    """Simulate ``system`` with the selected backend."""
    if sim_backend == "interp":
        return simulate_interp(
            system, args=args, max_cycles=max_cycles,
            process_args=process_args, profile=profile,
        )
    if sim_backend == "compiled":
        return simulate_compiled(
            system, args=args, max_cycles=max_cycles,
            process_args=process_args, profile=profile,
        )
    raise ValueError(
        f"unknown sim backend {sim_backend!r} (expected one of {BACKENDS})"
    )


__all__ = [
    "BACKENDS",
    "FSMDSimulator",
    "SimProfile",
    "SimResult",
    "SimulationError",
    "SystemPlan",
    "compile_system",
    "simulate",
    "simulate_compiled",
    "simulate_interp",
]
