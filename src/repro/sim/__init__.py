"""Hardware simulators: cycle-accurate FSMD systems, combinational
netlists, and asynchronous token dataflow.

FSMD systems have three interchangeable backends:

* ``interp`` — the reference interpreter (:mod:`fsmd_sim`): walks the op
  lists every cycle.  Authoritative, and the only backend that reports
  "read before being computed" for malformed machines.
* ``compiled`` — closure-compiled (:mod:`compiled`): specialises the
  system once into per-state Python closures with slot-resolved operands,
  then runs the same three-phase cycle.  Bit-identical results on every
  well-formed system, at a multiple of the interpreter's cycles/sec.
* ``batched`` — lockstep batch engine (:mod:`batched`): specialises once
  and steps N independent argument sets together, vectorized over NumPy
  lane arrays when available (pure-python lane fallback otherwise).  Use
  :func:`simulate_batched` for many inputs at once; as a scalar backend
  it is a one-lane batch.

Select one with ``simulate(..., sim_backend="compiled")``; pass a
:class:`SimProfile` to any of them to get cycles/sec and the per-state
visit histogram (plus per-lane cycle counts for batches).
"""

from typing import Dict, Optional, Sequence

from ..rtl.fsmd import FSMDSystem
from .batched import (
    BatchLane,
    BatchResult,
    HAVE_NUMPY,
    simulate_batched,
    simulate_one_batched,
)
from .compiled import SystemPlan, compile_system, simulate_compiled
from .fsmd_sim import FSMDSimulator, SimResult, SimulationError
from .fsmd_sim import simulate as simulate_interp
from .profile import SimProfile

BACKENDS = ("interp", "compiled", "batched")


def simulate(
    system: FSMDSystem,
    args: Sequence[int] = (),
    max_cycles: int = 2_000_000,
    process_args: Optional[Dict[str, Sequence[int]]] = None,
    sim_backend: str = "interp",
    profile: Optional[SimProfile] = None,
) -> SimResult:
    """Simulate ``system`` with the selected backend."""
    if sim_backend == "interp":
        return simulate_interp(
            system, args=args, max_cycles=max_cycles,
            process_args=process_args, profile=profile,
        )
    if sim_backend == "compiled":
        return simulate_compiled(
            system, args=args, max_cycles=max_cycles,
            process_args=process_args, profile=profile,
        )
    if sim_backend == "batched":
        return simulate_one_batched(
            system, args=args, max_cycles=max_cycles,
            process_args=process_args, profile=profile,
        )
    raise ValueError(
        f"unknown sim backend {sim_backend!r} (expected one of {BACKENDS})"
    )


__all__ = [
    "BACKENDS",
    "BatchLane",
    "BatchResult",
    "FSMDSimulator",
    "HAVE_NUMPY",
    "SimProfile",
    "SimResult",
    "SimulationError",
    "SystemPlan",
    "compile_system",
    "simulate",
    "simulate_batched",
    "simulate_compiled",
    "simulate_interp",
    "simulate_one_batched",
]
