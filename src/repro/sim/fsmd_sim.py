"""Cycle-accurate simulation of FSMD systems.

One simulated clock drives every machine.  Each cycle:

1. every running machine evaluates its current state's operations
   combinationally (loads are asynchronous reads, sends/receives *offer*);
2. rendezvous channels match one offering sender with one offering
   receiver; unmatched machines stall in place;
3. matched/ordinary machines latch their register writes and advance.

Register semantics match the CDFG executor exactly: architectural registers
hold their block-entry value throughout a block and latch on the final
state's exiting edge, so the validation chain interpreter == executor ==
FSMD holds value-for-value — and on top of it the FSMD gives exact cycle
counts, which are the currency of every timing experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.machine import eval_binary, eval_unary, wrap
from ..lang.errors import InterpError
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType
from ..ir.ops import Const, Operand, Operation, OpKind, VReg, VarRead
from ..rtl.fsmd import CondNext, Done, FSMD, FSMDSystem, NextState, State


class SimulationError(InterpError):
    """Deadlock, budget exhaustion, or a malformed machine."""


class _ValueNotReady(Exception):
    """An operand depends on a rendezvous that has not fired this cycle."""


@dataclass
class SimResult:
    value: Optional[int]
    cycles: int
    globals: Dict[str, object] = field(default_factory=dict)
    channel_log: Dict[str, List[int]] = field(default_factory=dict)
    per_process_cycles: Dict[str, int] = field(default_factory=dict)
    stall_cycles: int = 0

    def time_ns(self, clock_ns: float) -> float:
        return self.cycles * clock_ns


class _Machine:
    def __init__(self, fsmd: FSMD, simulator: "FSMDSimulator", args: Sequence[int]):
        self.fsmd = fsmd
        self.sim = simulator
        self.state_id = fsmd.entry
        self.done = False
        self.result: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.vregs: Dict[VReg, int] = {}
        self.registers: Dict[Symbol, int] = {}
        for symbol in fsmd.registers:
            if symbol.kind is not SymbolKind.GLOBAL:
                self.registers[symbol] = 0
        scalar_params = [
            p for p in fsmd.params if not isinstance(p.type, ArrayType)
        ]
        if len(args) != len(scalar_params):
            raise SimulationError(
                f"{fsmd.name} expects {len(scalar_params)} arguments,"
                f" got {len(args)}"
            )
        for symbol, value in zip(scalar_params, args):
            self.registers[symbol] = wrap(value, symbol.type)
        self.memories: Dict[Symbol, List[int]] = {}
        for array in fsmd.local_arrays():
            assert isinstance(array.type, ArrayType)
            size = array.type.size
            image = simulator.system.memory_images.get(array)
            self.memories[array] = (
                list(image) + [0] * (size - len(image)) if image is not None
                else [0] * size
            )

    # -- storage access ------------------------------------------------------

    def read_register(self, symbol: Symbol) -> int:
        if symbol.kind is SymbolKind.GLOBAL:
            return self.sim.global_registers.get(symbol, 0)
        return self.registers.get(symbol, 0)

    def memory_of(self, array: Symbol) -> List[int]:
        if array.kind is SymbolKind.GLOBAL:
            return self.sim.global_memories[array]
        return self.memories[array]

    def operand(self, operand: Operand) -> int:
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, VarRead):
            return self.read_register(operand.var)
        if operand not in self.vregs:
            raise _ValueNotReady(operand)
        return self.vregs[operand]

    # -- one state's combinational evaluation ---------------------------------

    def evaluate_state(
        self, state: State, offered: bool
    ) -> List[Tuple[Symbol, int, int]]:
        """Execute the state's non-channel ops.  Returns the stores —
        (array, index, value) triples applied at the clock edge.
        ``offered`` says whether the state contains a channel op (the
        caller already knows, from the state's memoized ``channel_op``).

        In a state that offers a rendezvous, logic chained off the incoming
        value cannot settle until the handshake fires: such ops are skipped
        here and computed by :meth:`reevaluate_after_match`.  A missing
        value in a non-offering state is a genuine compiler bug."""
        stores: List[Tuple[Symbol, int, int]] = []
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV):
                continue
            try:
                self._execute(op, stores)
            except _ValueNotReady as missing:
                if offered:
                    continue  # settles after the handshake this cycle
                raise SimulationError(
                    f"{self.fsmd.name}: {missing.args[0]} read before"
                    " being computed"
                )
        return stores

    def reevaluate_after_match(self, state: State) -> List[Tuple[Symbol, int, int]]:
        """After this state's rendezvous fired, settle the remaining
        combinational logic (which may read the received value)."""
        stores: List[Tuple[Symbol, int, int]] = []
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV):
                continue
            try:
                self._execute(op, stores)
            except _ValueNotReady as missing:
                raise SimulationError(
                    f"{self.fsmd.name}: {missing.args[0]} read before"
                    " being computed"
                )
        return stores

    def _execute(self, op: Operation, stores: List[Tuple[Symbol, int, int]]) -> None:
        if op.kind is OpKind.BINARY:
            assert op.dest is not None
            self.vregs[op.dest] = eval_binary(
                op.op, self.operand(op.operands[0]), self.operand(op.operands[1]),
                op.dest.type,
            )
        elif op.kind is OpKind.UNARY:
            assert op.dest is not None
            self.vregs[op.dest] = eval_unary(
                op.op, self.operand(op.operands[0]), op.dest.type
            )
        elif op.kind is OpKind.CAST:
            assert op.dest is not None
            self.vregs[op.dest] = wrap(self.operand(op.operands[0]), op.dest.type)
        elif op.kind is OpKind.SELECT:
            assert op.dest is not None
            chosen = (
                self.operand(op.operands[1])
                if self.operand(op.operands[0])
                else self.operand(op.operands[2])
            )
            self.vregs[op.dest] = wrap(chosen, op.dest.type)
        elif op.kind is OpKind.LOAD:
            assert op.dest is not None and op.array is not None
            memory = self.memory_of(op.array)
            index = self.operand(op.operands[0])
            if not 0 <= index < len(memory):
                if self.fsmd.tolerant_memory:
                    self.vregs[op.dest] = 0
                    return
                raise SimulationError(
                    f"{self.fsmd.name}: load {op.array.unique_name}[{index}]"
                    f" out of bounds (size {len(memory)})"
                )
            self.vregs[op.dest] = memory[index]
        elif op.kind is OpKind.STORE:
            assert op.array is not None
            memory = self.memory_of(op.array)
            index = self.operand(op.operands[0])
            if not 0 <= index < len(memory):
                if self.fsmd.tolerant_memory:
                    return  # speculative store off the end: dropped
                raise SimulationError(
                    f"{self.fsmd.name}: store {op.array.unique_name}[{index}]"
                    f" out of bounds (size {len(memory)})"
                )
            stores.append((op.array, index, self.operand(op.operands[1])))
        elif op.kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.NOP):
            pass
        else:
            raise SimulationError(f"FSMD cannot execute {op.kind}")

    # -- latch & advance -------------------------------------------------------

    def latch_and_advance(self, state: State) -> None:
        try:
            self._latch_and_advance(state)
        except _ValueNotReady as missing:
            raise SimulationError(
                f"{self.fsmd.name}: {missing.args[0]} read before being"
                " computed (latch/transition)"
            )

    def _latch_and_advance(self, state: State) -> None:
        # The next-state function and the return value are combinational:
        # they see pre-edge register values, so evaluate them before any
        # latch fires.
        transition: object = state.transition
        target: Optional[int] = None
        result_raw: Optional[int] = None
        is_done = False
        has_result = False
        # Walk the (possibly nested) decision tree combinationally.
        while True:
            if isinstance(transition, int):
                target = transition
                break
            if isinstance(transition, Done):
                is_done = True
                if transition.value is not None:
                    result_raw = self.operand(transition.value)
                    has_result = True
                break
            if isinstance(transition, NextState):
                target = transition.target
                break
            if isinstance(transition, CondNext):
                transition = (
                    transition.if_true
                    if self.operand(transition.cond)
                    else transition.if_false
                )
                continue
            raise SimulationError(f"state {state.label} has no transition")
        register_writes: List[Tuple[Symbol, int]] = []
        for symbol, value in state.latches.items():
            register_writes.append((symbol, self.operand(value)))
        for symbol, value in register_writes:
            if symbol.kind is SymbolKind.GLOBAL:
                self.sim.write_global(symbol, wrap(value, symbol.type), self)
            else:
                self.registers[symbol] = wrap(value, symbol.type)
        if is_done:
            self.done = True
            self.finish_cycle = self.sim.cycle + 1
            if has_result:
                self.result = (
                    wrap(result_raw, self.fsmd.return_type)
                    if self.fsmd.return_type is not None
                    and self.fsmd.return_type.bit_width > 0
                    else result_raw
                )
            return
        assert target is not None
        next_state = self.fsmd.state(target)
        if next_state.step_index == 0:
            # Entering a block afresh: block-local wires are invalid now.
            self.vregs = {}
        self.state_id = target


class FSMDSimulator:
    """Runs an :class:`FSMDSystem` to completion of its root machine."""

    def __init__(
        self,
        system: FSMDSystem,
        args: Sequence[int] = (),
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
    ):
        self.system = system
        self.max_cycles = max_cycles
        self.cycle = 0
        self.stall_cycles = 0
        self.global_registers: Dict[Symbol, int] = {}
        self.global_memories: Dict[Symbol, List[int]] = {}
        self.channel_log: Dict[str, List[int]] = {
            c.name: [] for c in system.channels
        }
        self._global_writes_this_cycle: Dict[Symbol, str] = {}
        for symbol in system.global_registers:
            init = system.global_inits.get(symbol.name, 0)
            self.global_registers[symbol] = (
                wrap(init, symbol.type) if isinstance(init, int) else 0
            )
        for symbol in system.global_arrays:
            assert isinstance(symbol.type, ArrayType)
            words = [0] * symbol.type.size
            init = system.global_inits.get(symbol.name)
            if isinstance(init, list):
                for i, v in enumerate(init):
                    words[i] = v
            self.global_memories[symbol] = words
        for symbol, image in system.memory_images.items():
            if symbol.kind is SymbolKind.GLOBAL:
                self.global_memories[symbol] = list(image)
        process_args = process_args or {}
        self.machines: List[_Machine] = []
        for index, fsmd in enumerate(system.fsmds):
            machine_args = args if index == 0 else process_args.get(fsmd.name, ())
            self.machines.append(_Machine(fsmd, self, machine_args))

    def write_global(self, symbol: Symbol, value: int, writer: _Machine) -> None:
        previous = self._global_writes_this_cycle.get(symbol)
        if previous is not None and previous != writer.fsmd.name:
            raise SimulationError(
                f"global {symbol.name!r} written by {previous} and"
                f" {writer.fsmd.name} in the same cycle"
            )
        self._global_writes_this_cycle[symbol] = writer.fsmd.name
        self.global_registers[symbol] = value

    # -- main loop ---------------------------------------------------------

    def run(self, profile=None) -> SimResult:
        root = self.machines[0]
        while not root.done:
            if self.cycle >= self.max_cycles:
                raise SimulationError(
                    f"cycle budget of {self.max_cycles} exhausted"
                )
            if profile is not None:
                for machine in self.machines:
                    if not machine.done:
                        state = machine.fsmd.state(machine.state_id)
                        profile.visit(
                            machine.fsmd.name, state.label or f"S{state.id}"
                        )
            self._step()
        if profile is not None:
            profile.backend = "interp"
            profile.cycles = (
                root.finish_cycle if root.finish_cycle is not None
                else self.cycle
            )
        result = SimResult(
            value=root.result,
            cycles=root.finish_cycle if root.finish_cycle is not None else self.cycle,
            stall_cycles=self.stall_cycles,
        )
        for symbol in self.system.global_registers:
            result.globals[symbol.name] = self.global_registers[symbol]
        for symbol in self.system.global_arrays:
            result.globals[symbol.name] = list(self.global_memories[symbol])
        result.channel_log = {
            name: list(values) for name, values in self.channel_log.items()
        }
        for machine in self.machines:
            result.per_process_cycles[machine.fsmd.name] = (
                machine.finish_cycle if machine.finish_cycle is not None else self.cycle
            )
        return result

    def _step(self) -> None:
        self._global_writes_this_cycle = {}
        # One pass over the machines builds everything the cycle needs:
        # each running machine's evaluation (state, stores, channel op) in
        # machine order, plus the per-channel offer lists.  Done machines
        # are skipped here once, not re-filtered per phase.
        evaluations: List[
            Tuple[_Machine, State, List[Tuple[Symbol, int, int]],
                  Optional[Operation]]
        ] = []
        senders: Dict[Symbol, List[Tuple[_Machine, Operation]]] = {}
        receivers: Dict[Symbol, List[Tuple[_Machine, Operation]]] = {}
        for machine in self.machines:
            if machine.done:
                continue
            state = machine.fsmd.state(machine.state_id)
            channel_op = state.channel_op()
            stores = machine.evaluate_state(state, channel_op is not None)
            evaluations.append((machine, state, stores, channel_op))
            if channel_op is not None:
                assert channel_op.channel is not None
                if channel_op.kind is OpKind.SEND:
                    senders.setdefault(channel_op.channel, []).append(
                        (machine, channel_op)
                    )
                else:
                    receivers.setdefault(channel_op.channel, []).append(
                        (machine, channel_op)
                    )
        # Rendezvous matching: one transfer per channel per cycle.
        matched: set = set()
        for channel, send_list in senders.items():
            recv_list = receivers.get(channel, [])
            if send_list and recv_list:
                sender, send_op = send_list[0]
                receiver, recv_op = recv_list[0]
                value = sender.operand(send_op.operands[0])
                assert recv_op.dest is not None
                receiver.vregs[recv_op.dest] = wrap(value, recv_op.dest.type)
                self.channel_log[channel.name].append(value)
                matched.add(id(sender))
                matched.add(id(receiver))
        advanced = False
        any_stalled = False
        for machine, state, stores, channel_op in evaluations:
            if channel_op is not None:
                if id(machine) not in matched:
                    any_stalled = True
                    continue  # stall: re-offer next cycle
                # The handshake fired: logic downstream of the received
                # value settles within the same cycle.
                stores = machine.reevaluate_after_match(state)
            for array, address, value in stores:
                machine.memory_of(array)[address] = value
            machine.latch_and_advance(state)
            advanced = True
        if not advanced:
            if any_stalled:
                blocked = [
                    machine.fsmd.name
                    for machine, _, _, channel_op in evaluations
                    if channel_op is not None
                ]
                raise SimulationError(
                    "rendezvous deadlock: " + ", ".join(sorted(blocked))
                )
            raise SimulationError("no machine could advance")
        if any_stalled:
            self.stall_cycles += 1
        self.cycle += 1


def simulate(
    system: FSMDSystem,
    args: Sequence[int] = (),
    max_cycles: int = 2_000_000,
    process_args: Optional[Dict[str, Sequence[int]]] = None,
    profile=None,
) -> SimResult:
    """Convenience wrapper: build the simulator and run it."""
    sim = FSMDSimulator(
        system, args=args, process_args=process_args, max_cycles=max_cycles
    )
    if profile is None:
        return sim.run()
    from time import perf_counter

    started = perf_counter()
    result = sim.run(profile)
    profile.execute_s = perf_counter() - started
    return result
